"""Extension: probing a two-level fat tree instead of a single switch.

The paper's methodology is scoped to one leaf switch, but nothing in the
probe design is single-switch specific.  This example builds a 2-leaf fat
tree, confines ring interference to the *second* leaf, and shows that probe
pairs on the quiet leaf see near-idle latencies while pairs on the loaded
leaf see the congestion — contention is local to the switch that carries
it, the locality the paper's related-work topology discussion anticipates.

Run:  python examples/fat_tree_probing.py
"""

from repro.cluster import ExplicitPlacement, Machine, PerSocketPlacement
from repro.config import MachineConfig, NodeConfig
from repro.core.measurement import LatencyCollector
from repro.mpi import MPIWorld
from repro.network import FatTreeTopology
from repro.network.graph import bisection_width, oversubscription_ratio
from repro.units import MS, US
from repro.workloads import CompressionB, CompressionConfig, ImpactB


def main() -> None:
    topology = FatTreeTopology(leaf_count=2, nodes_per_leaf=9, root_count=2)
    config = MachineConfig(node_count=18, node=NodeConfig(), seed=11)
    machine = Machine(config, topology)

    print(f"fat tree: {topology.leaf_count} leaves x {topology.nodes_per_leaf} nodes")
    print(f"  bisection width  : {bisection_width(topology)} links")
    print(f"  oversubscription : {oversubscription_ratio(topology):.1f}:1")

    # Probe everywhere: pairs form between node positions (0,1), (2,3), ...
    # so every pair's traffic stays on its own leaf.
    collector = LatencyCollector()
    probe = ImpactB(collector, interval=0.25 * MS)
    probe_world = MPIWorld.create(machine, PerSocketPlacement(1), name="impactb")
    probe_world.launch(probe)

    # Interference confined to the second leaf (nodes 9..17): pick one free
    # core per socket on exactly those nodes.
    cores = []
    for node in machine.nodes[9:]:
        for socket in range(config.node.sockets):
            cores.append(node.free_cores_on_socket(socket)[0])
    comp = CompressionB(CompressionConfig(4, 10, 2.5e5))
    comp_world = MPIWorld.create(machine, ExplicitPlacement(cores), name="comp")
    comp_world.launch(comp)

    machine.sim.run(until=0.03)

    quiet, loaded = [], []
    for latency, rank in zip(collector.values(), collector.ranks()):
        node = probe_world.node_of(int(rank))
        (quiet if node < 9 else loaded).append(latency)

    leaf0 = sum(quiet) / len(quiet) / US
    leaf1 = sum(loaded) / len(loaded) / US
    print("\nwith interference confined to leaf 1:")
    print(f"  probe latency, leaf-0 pairs: {leaf0:.2f}µs  (quiet)")
    print(f"  probe latency, leaf-1 pairs: {leaf1:.2f}µs  (loaded)")
    print(
        "  switch utilizations: "
        + ", ".join(
            f"s{i}={machine.network.true_utilization(i) * 100:.0f}%"
            for i in range(topology.switch_count)
        )
    )


if __name__ == "__main__":
    main()
