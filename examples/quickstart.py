"""Quickstart: probe a running application's switch utilization.

Builds a Cab-like 18-node cluster, calibrates the idle switch, then runs the
ImpactB probe while MILC executes and reports how much of the switch MILC
uses — the paper's §III-A measurement, in ~15 lines of API.

Run:  python examples/quickstart.py
"""

from repro import ImpactExperiment, MILC, cab_config, calibrate
from repro.units import MS


def main() -> None:
    config = cab_config(seed=42)

    print("calibrating the idle switch ...")
    calibration = calibrate(config, duration=0.03, probe_interval=0.25 * MS)
    print(
        f"  idle latency: mean={calibration.mean * 1e6:.2f}µs, "
        f"service rate µ={calibration.rate:.2e} pkt/s"
    )

    print("probing the switch while MILC runs ...")
    experiment = ImpactExperiment(config, calibration, probe_interval=0.25 * MS)
    result = experiment.measure(MILC(), duration=0.02)

    signature = result.signature
    print(f"  probe mean latency : {signature.mean * 1e6:.2f}µs")
    print(f"  probe std deviation: {signature.std * 1e6:.2f}µs")
    print(f"  samples            : {signature.count}")
    print(f"  switch utilization : {signature.utilization * 100:.1f}%  (P-K estimate)")
    print(f"  ground truth       : {result.true_utilization * 100:.1f}%  (simulator counters)")


if __name__ == "__main__":
    main()
