"""Fig. 3 in miniature: probe-latency distributions under each application.

Runs ImpactB on an idle switch and then against each of the six application
skeletons, printing the latency histograms the paper plots in Fig. 3.  Note
how FFTW shifts mass far right, Lulesh/MILC shift the mode, and MCB mostly
fattens the tail — while the idle distribution stays near ~1µs.

Run:  python examples/probe_applications.py
"""

from repro import ImpactExperiment, cab_config, calibrate, paper_applications
from repro.analysis import render_histogram
from repro.units import MS


def main() -> None:
    config = cab_config(seed=7)
    calibration = calibrate(config, duration=0.03, probe_interval=0.25 * MS)
    experiment = ImpactExperiment(config, calibration, probe_interval=0.25 * MS)

    idle = experiment.measure(None, duration=0.02)
    print(
        render_histogram(
            idle.signature.histogram.fractions,
            idle.signature.histogram.edges,
            title=f"No App (mean {idle.signature.mean * 1e6:.2f}µs)",
        )
    )

    for name, app in paper_applications().items():
        result = experiment.measure(app, duration=0.02)
        signature = result.signature
        print()
        print(
            render_histogram(
                signature.histogram.fractions,
                signature.histogram.edges,
                title=(
                    f"{name} (mean {signature.mean * 1e6:.2f}µs, "
                    f"utilization {signature.utilization * 100:.0f}%)"
                ),
            )
        )


if __name__ == "__main__":
    main()
