"""Future systems: predict performance on weaker networks two ways.

The paper's motivation (i): "predict how their applications will perform on
future systems with poorer network-to-node performance ratios".  This
example compares:

1. the direct route — actually simulate the weaker network (ground truth
   only a simulator can give), and
2. the paper's route — the *performance relativity* principle: probe the
   weaker network idle, find which utilization of the *current* network it
   impersonates, and read the application's degradation curve (built once
   from a CompressionB sweep) at that coordinate.

If the principle holds, the two columns agree — without route 2 ever
running the application on the future network.

Run:  python examples/future_systems.py   (~2-3 minutes)
"""

import numpy as np

from repro import (
    CompressionConfig,
    CompressionExperiment,
    FFTW,
    cab_config,
    calibrate,
)
from repro.core.experiments import equivalent_utilization, network_scaling_study
from repro.units import MS

CURVE_CONFIGS = [
    CompressionConfig(1, 1, 2.5e7),
    CompressionConfig(4, 1, 2.5e6),
    CompressionConfig(1, 10, 2.5e6),
    CompressionConfig(7, 1, 2.5e5),
    CompressionConfig(4, 1, 2.5e4),
]
FACTORS = (1.0, 2.0, 4.0)


def main() -> None:
    config = cab_config(seed=21)
    app = FFTW(iterations=1)

    print("calibrating and building the degradation curve (compression sweep) ...")
    calibration = calibrate(config, duration=0.03, probe_interval=0.25 * MS)
    experiment = CompressionExperiment(config, calibration, probe_interval=0.25 * MS)
    baseline = experiment.baseline(app)
    curve_x, curve_y = [], []
    for level in CURVE_CONFIGS:
        observation = experiment.signature_of(level, duration=0.02)
        degradation = experiment.degradation(app, level, baseline)
        curve_x.append(observation.utilization)
        curve_y.append(degradation)
    order = np.argsort(curve_x)
    curve_x = np.asarray(curve_x)[order]
    curve_y = np.asarray(curve_y)[order]

    print("running the application on actually-weakened networks ...")
    direct = network_scaling_study(config, app, factors=FACTORS)

    print(f"\n{app.name}: predicted vs actual slowdown on weaker networks")
    print(f"{'network':>10s}{'impersonates':>14s}{'predicted':>12s}{'actual':>10s}")
    for point in direct:
        rho = equivalent_utilization(
            config, point.factor, calibration, probe_interval=0.25 * MS, duration=0.02
        )
        predicted = float(np.interp(rho, curve_x, curve_y))
        print(
            f"{point.factor:9.0f}x{rho * 100:13.1f}%"
            f"{predicted:+11.1f}%{point.slowdown_percent:+9.1f}%"
        )

    print(
        "\nNote: the relativity route tracks the trend but under-predicts\n"
        "bandwidth-dominated slowdowns — the probe measures latency, and a\n"
        "halved-bandwidth network hurts a transpose-heavy code more than a\n"
        "latency-equivalent utilization does.  The paper only validates the\n"
        "principle for contention, not for hardware scaling; the simulator\n"
        "makes the gap measurable."
    )


if __name__ == "__main__":
    main()
