"""Capacity planning: how would my application run on a weaker network?

The paper's Compression methodology (§III-B): instead of simulating future
hardware, run the application against calibrated interference levels and
read off the degradation at the capability loss you expect.  Here we sweep
FFTW (network-hungry) and Lulesh (compute-bound) across five interference
levels and fit the Fig. 7 linear trend.

Run:  python examples/capacity_planning.py
"""

from repro import (
    CompressionConfig,
    CompressionExperiment,
    FFTW,
    Lulesh,
    cab_config,
    calibrate,
)
from repro.analysis import fit_degradation_trend
from repro.units import MS

LEVELS = [
    CompressionConfig(1, 1, 2.5e7),
    CompressionConfig(4, 1, 2.5e6),
    CompressionConfig(4, 10, 2.5e6),
    CompressionConfig(7, 1, 2.5e5),
    CompressionConfig(4, 1, 2.5e4),
]


def main() -> None:
    config = cab_config(seed=3)
    calibration = calibrate(config, duration=0.03, probe_interval=0.25 * MS)
    experiment = CompressionExperiment(config, calibration, probe_interval=0.25 * MS)

    for app in (FFTW(), Lulesh()):
        baseline = experiment.baseline(app)
        print(f"\n{app.name}: baseline {baseline * 1e3:.2f}ms")
        points = []
        for level in LEVELS:
            observation = experiment.signature_of(level, duration=0.02)
            degradation = experiment.degradation(app, level, baseline)
            points.append((observation.utilization, degradation))
            print(
                f"  {level.label:18s} utilization {observation.utilization * 100:5.1f}%"
                f"  ->  {degradation:+7.1f}% runtime"
            )
        fit = fit_degradation_trend(points)
        print(
            f"  trend: {fit.slope:.1f}% degradation per 100% utilization "
            f"(r²={fit.r_squared:.2f})"
        )


if __name__ == "__main__":
    main()
