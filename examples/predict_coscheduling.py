"""Predict co-scheduling slowdowns, then check against reality.

The paper's headline use case (§V): measure each application *alone*
(impact experiment + compression sweep), then predict how any pair will
interfere — and validate against an actual co-run.  This example uses the
quick 10-config catalog and two applications to keep the runtime short;
`repro report --profile paper` reproduces the full 36-pair evaluation.

Run:  python examples/predict_coscheduling.py
"""

from repro import PipelineSettings, ReproductionPipeline
from repro import FFTW, MILC
from repro.units import MS


def main() -> None:
    pipeline = ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            impact_duration=0.02,
            signature_duration=0.02,
            probe_interval=0.25 * MS,
        ),
        applications={"fftw": FFTW(), "milc": MILC()},
        verbose=True,
    )

    engine = pipeline.engine()
    for app, other in [("fftw", "milc"), ("milc", "fftw")]:
        measured = pipeline.pair_slowdown(app, other)
        print(f"\n{app} co-running with {other}:")
        print(f"  measured : {measured:+6.1f}%")
        for prediction in engine.predict_pair(app, other):
            error = abs(measured - prediction.predicted)
            print(
                f"  {prediction.model:16s} {prediction.predicted:+6.1f}%  "
                f"(|error| {error:.1f})"
            )


if __name__ == "__main__":
    main()
