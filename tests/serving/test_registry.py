"""The model registry: publish/promote/rollback semantics and paranoia."""

import json

import pytest

from repro.errors import ArtifactError, RegistryError
from repro.serving import (
    CURRENT_POINTER,
    ModelArtifact,
    ModelRegistry,
    load_artifact,
)

from .conftest import make_catalog


def _artifact(seed=0):
    observations, degradations, signatures, cal = make_catalog(seed=seed)
    return ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"engine": "test", "seed": seed},
    )


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


# ----------------------------------------------------------------------
# Publish
# ----------------------------------------------------------------------
def test_publish_auto_assigns_sequential_versions(registry):
    assert registry.publish(_artifact(0)) == "v0001"
    assert registry.publish(_artifact(1)) == "v0002"
    assert [e.version for e in registry.entries()] == ["v0001", "v0002"]
    assert all(not e.current for e in registry.entries())


def test_publish_accepts_named_versions(registry):
    assert registry.publish(_artifact(), version="canary") == "canary"
    assert registry.artifact_path("canary").exists()


def test_publish_refuses_overwriting_a_version(registry):
    registry.publish(_artifact(0), version="v0001")
    with pytest.raises(RegistryError, match="immutable"):
        registry.publish(_artifact(1), version="v0001")
    # The original artifact is untouched.
    assert load_artifact(registry.artifact_path("v0001")).metadata["seed"] == 0


@pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden", "a b"])
def test_publish_rejects_unsafe_version_names(registry, bad):
    with pytest.raises(RegistryError, match="invalid version name"):
        registry.publish(_artifact(), version=bad)


def test_published_artifact_round_trips(registry):
    registry.publish(_artifact(3), version="v1")
    loaded = registry.load("v1")
    assert loaded.metadata == {"engine": "test", "seed": 3}


# ----------------------------------------------------------------------
# Promote / rollback
# ----------------------------------------------------------------------
def test_promote_moves_current_and_records_previous(registry):
    registry.publish(_artifact(0), version="a")
    registry.publish(_artifact(1), version="b")
    assert registry.current_version() is None
    registry.promote("a")
    assert registry.current_version() == "a"
    assert registry.previous_version() is None
    registry.promote("b")
    assert registry.current_version() == "b"
    assert registry.previous_version() == "a"
    current = [e.version for e in registry.entries() if e.current]
    assert current == ["b"]


def test_promote_unknown_version_raises_and_keeps_pointer(registry):
    registry.publish(_artifact(), version="a")
    registry.promote("a")
    with pytest.raises(RegistryError, match="unknown version"):
        registry.promote("ghost")
    assert registry.current_version() == "a"


def test_promote_same_version_is_a_noop(registry):
    registry.publish(_artifact(), version="a")
    registry.promote("a")
    pointer_before = registry.pointer_path.read_bytes()
    registry.promote("a")
    assert registry.pointer_path.read_bytes() == pointer_before


def test_promote_refuses_corrupt_artifact(registry):
    registry.publish(_artifact(0), version="good")
    registry.publish(_artifact(1), version="bad")
    registry.promote("good")
    # Corrupt the candidate quietly (valid JSON, wrong checksum).
    path = registry.artifact_path("bad")
    document = json.loads(path.read_text())
    document["payload"]["metadata"]["seed"] = 999
    path.write_text(json.dumps(document))
    with pytest.raises(ArtifactError, match="checksum"):
        registry.promote("bad")
    # The pointer never moved: the good version still serves.
    assert registry.current_version() == "good"


def test_promote_refuses_truncated_artifact(registry):
    registry.publish(_artifact(), version="torn")
    path = registry.artifact_path("torn")
    path.write_bytes(path.read_bytes()[:100])
    with pytest.raises(ArtifactError):
        registry.promote("torn")
    assert registry.current_version() is None


def test_rollback_returns_to_previous_version(registry):
    registry.publish(_artifact(0), version="a")
    registry.publish(_artifact(1), version="b")
    registry.promote("a")
    registry.promote("b")
    version, artifact = registry.rollback()
    assert version == "a"
    assert artifact.metadata["seed"] == 0
    assert registry.current_version() == "a"
    # Roll-forward is possible: rollback records where we came from.
    assert registry.previous_version() == "b"
    version, _ = registry.rollback()
    assert version == "b"


def test_rollback_without_history_raises(registry):
    with pytest.raises(RegistryError, match="promoted"):
        registry.rollback()
    registry.publish(_artifact(), version="only")
    registry.promote("only")
    with pytest.raises(RegistryError, match="history"):
        registry.rollback()


def test_rollback_reverifies_the_old_artifact(registry):
    registry.publish(_artifact(0), version="a")
    registry.publish(_artifact(1), version="b")
    registry.promote("a")
    registry.promote("b")
    path = registry.artifact_path("a")
    path.write_bytes(path.read_bytes()[:80])  # damaged while out of service
    with pytest.raises(ArtifactError):
        registry.rollback()
    assert registry.current_version() == "b"  # pointer never moved


# ----------------------------------------------------------------------
# Pointer + reads
# ----------------------------------------------------------------------
def test_load_current_before_any_promotion_raises(registry):
    registry.publish(_artifact())
    with pytest.raises(RegistryError, match="promote"):
        registry.load_current()


def test_load_current_returns_verified_artifact(registry):
    registry.publish(_artifact(5), version="v1")
    registry.promote("v1")
    version, artifact = registry.load_current()
    assert version == "v1"
    assert artifact.metadata["seed"] == 5
    # The served predictions are bit-identical to the published artifact's.
    original, restored = _artifact(5).engine(), artifact.engine()
    for app in ("alpha", "beta"):
        for model in original.model_names:
            assert restored.predict(app, "beta", model) == original.predict(
                app, "beta", model
            )


def test_garbled_pointer_raises_registry_error(registry):
    registry.publish(_artifact(), version="v1")
    registry.promote("v1")
    registry.pointer_path.write_text("not json {")
    with pytest.raises(RegistryError, match="pointer"):
        registry.current_version()
    # entries() still lists versions despite the broken pointer.
    assert [e.version for e in registry.entries()] == ["v1"]


def test_pointer_update_is_atomic_rename(registry, tmp_path):
    registry.publish(_artifact(), version="v1")
    registry.promote("v1")
    # No temp droppings anywhere in the registry after a promotion.
    leftovers = [
        p for p in registry.root.rglob("*") if p.suffix == ".tmp"
    ]
    assert leftovers == []
    assert (registry.root / CURRENT_POINTER).exists()


def test_describe_is_json_ready(registry):
    registry.publish(_artifact(0), version="a")
    registry.publish(_artifact(1), version="b")
    registry.promote("b")
    document = registry.describe()
    json.dumps(document)  # must serialize
    assert document["current"] == "b"
    assert [row["version"] for row in document["versions"]] == ["a", "b"]
    assert [row["current"] for row in document["versions"]] == [False, True]
    assert all(len(row["sha256"]) == 64 for row in document["versions"])
