"""Hot reload: atomic engine swap on promotion, resilience, zero dropped load."""

import concurrent.futures
import json
import threading
import time
import urllib.request

import pytest

from repro import telemetry
from repro.serving import ModelArtifact, ModelRegistry, PredictionServer

from .conftest import make_catalog


def _artifact(seed):
    observations, degradations, signatures, cal = make_catalog(seed=seed)
    return ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"seed": seed},
    )


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def registry(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(_artifact(0), version="v1")
    registry.publish(_artifact(1), version="v2")
    registry.promote("v1")
    return registry


@pytest.fixture()
def server(registry):
    instance = PredictionServer(registry=registry, port=0, reload_interval=0.02)
    instance.serve_background()
    yield instance
    instance.shutdown()
    instance.server_close()


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


def _wait_for_version(server, version, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.state.version == version:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"server never flipped to {version!r}; still at {server.state.version!r}"
    )


# ----------------------------------------------------------------------
# Swap semantics
# ----------------------------------------------------------------------
def test_server_starts_on_the_promoted_version(server):
    health = _get(server, "/healthz")
    assert health["version"] == "v1"
    assert health["metadata"] == {"seed": 0}
    assert health["registry"] is not None


def test_server_requires_a_promotion_to_start(tmp_path):
    empty = ModelRegistry(tmp_path / "empty")
    empty.publish(_artifact(0), version="v1")  # published, never promoted
    from repro.errors import RegistryError

    with pytest.raises(RegistryError, match="promote"):
        PredictionServer(registry=empty, port=0)


def test_promotion_swaps_engine_and_healthz_version(server, registry):
    v1_prediction = _get(server, "/predict?app=alpha&other=beta")
    assert v1_prediction["version"] == "v1"
    registry.promote("v2")
    _wait_for_version(server, "v2")
    health = _get(server, "/healthz")
    assert health["version"] == "v2"
    assert health["reloads"] == 1
    assert health["metadata"] == {"seed": 1}
    # Predictions now come from the v2 artifact, bit-identically.
    v2_engine = registry.load("v2").engine()
    answered = _get(server, "/predict?app=alpha&other=beta")
    assert answered["version"] == "v2"
    for model, predicted in answered["predictions"].items():
        assert predicted == v2_engine.predict("alpha", "beta", model)
    # ... and differ from v1's (different seed -> different catalog).
    assert answered["predictions"] != v1_prediction["predictions"]


def test_rollback_swaps_back(server, registry):
    registry.promote("v2")
    _wait_for_version(server, "v2")
    registry.rollback()
    _wait_for_version(server, "v1")
    assert _get(server, "/healthz")["reloads"] == 2


def test_reload_now_is_synchronous(registry):
    instance = PredictionServer(
        registry=registry, port=0, reload_interval=3600.0
    )
    try:
        assert instance.reload_now() is False  # nothing changed
        registry.promote("v2")
        assert instance.reload_now() is True
        assert instance.state.version == "v2"
    finally:
        instance.server_close()


def test_damaged_promotion_target_keeps_old_engine(server, registry):
    # Bypass promote()'s verification by writing the pointer directly —
    # modelling an operator hand-editing CURRENT at a corrupt version.
    registry.publish(_artifact(2), version="v3")
    path = registry.artifact_path("v3")
    path.write_bytes(path.read_bytes()[:120])
    registry._write_pointer("v3", previous="v1")
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and server.reload_failures == 0:
        time.sleep(0.01)
    health = _get(server, "/healthz")
    assert health["version"] == "v1"  # old engine still serving
    assert health["reload_failures"] >= 1
    assert health["last_reload_error"]
    # Predictions keep flowing throughout.
    assert _get(server, "/predict?app=alpha&other=beta")["predictions"]
    # A good promotion afterwards heals the server.
    registry.promote("v2")
    _wait_for_version(server, "v2")
    assert _get(server, "/healthz")["last_reload_error"] is None


# ----------------------------------------------------------------------
# Reload under load
# ----------------------------------------------------------------------
def test_hot_reload_under_load_drops_nothing(server, registry):
    telemetry.enable()
    stop = threading.Event()
    failures = []
    versions_per_thread = []

    def client(index):
        seen = []
        while not stop.is_set():
            try:
                document = _get(server, "/predict?app=alpha&other=beta")
            except Exception as exc:  # noqa: BLE001 - recorded, asserted empty
                failures.append((index, repr(exc)))
                continue
            if not seen or seen[-1] != document["version"]:
                seen.append(document["version"])
        versions_per_thread.append(seen)

    with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
        workers = [pool.submit(client, i) for i in range(4)]
        time.sleep(0.2)
        registry.promote("v2")
        _wait_for_version(server, "v2")
        time.sleep(0.2)
        stop.set()
        for worker in workers:
            worker.result(timeout=10)

    assert failures == []
    # Each thread's request stream flips v1 -> v2 exactly once, never back:
    # the swap is one atomic reference assignment.
    for seen in versions_per_thread:
        assert seen in (["v1", "v2"], ["v2"], ["v1"])
    assert any(seen == ["v1", "v2"] for seen in versions_per_thread)
    assert _get(server, "/healthz")["reloads"] == 1
