"""Shared synthesis helpers for the serving tests.

Catalogs here are synthesized directly (no simulation runs): probe samples
are drawn so that their P–K inversion lands on a chosen utilization, the
same trick the queue-model unit tests use.  ``make_catalog`` returns the
full (observations, degradations, signatures, calibration) quadruple an
artifact or engine is built from.
"""

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import ProbeSignature
from repro.queueing import ServiceEstimate, sojourn_from_utilization
from repro.workloads import CompressionConfig

CAL = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=0.8e-6, sample_count=200)


def make_signature(rho, seed, spread=0.05, n=300):
    target_mean = sojourn_from_utilization(rho, CAL.rate, CAL.variance)
    rng = np.random.default_rng(seed)
    samples = rng.normal(target_mean, target_mean * spread, n).clip(1e-9)
    return ProbeSignature.from_samples(samples, CAL)


def make_observation(partners, rho, seed):
    return CompressionObservation(
        config=CompressionConfig(partners=partners, messages=1, sleep_cycles=2.5e5),
        impact=ImpactResult(
            signature=make_signature(rho, seed), true_utilization=rho, sim_time=0.01
        ),
    )


def make_catalog(apps=("alpha", "beta"), configs=5, seed=0):
    rhos = np.linspace(0.1, 0.85, configs)
    observations = [
        make_observation(i + 1, float(rho), seed=seed * 1000 + i)
        for i, rho in enumerate(rhos)
    ]
    rng = np.random.default_rng(seed + 77)
    degradations = {
        app: {
            obs.label: float(5.0 * (i + 1) + rng.uniform(-1, 1))
            for i, obs in enumerate(observations)
        }
        for app in apps
    }
    signatures = {
        app: make_signature(float(rng.uniform(0.1, 0.9)), seed=seed * 99 + j)
        for j, app in enumerate(apps)
    }
    return observations, degradations, signatures, CAL


@pytest.fixture()
def catalog():
    return make_catalog()
