"""Pre-forked SO_REUSEPORT sharding: one port, many processes, same answers."""

import concurrent.futures
import json
import time
import urllib.request

import pytest

from repro.serving import (
    ModelRegistry,
    ShardedPredictionServer,
    load_artifact,
    save_artifact,
)
from repro.errors import ModelError

from .conftest import make_catalog


def _artifact(seed=0):
    from repro.serving import ModelArtifact

    observations, degradations, signatures, cal = make_catalog(seed=seed)
    return ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"seed": seed},
    )


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return json.loads(response.read())


def test_requires_exactly_one_source(tmp_path):
    with pytest.raises(ModelError, match="exactly one"):
        ShardedPredictionServer()
    with pytest.raises(ModelError, match="exactly one"):
        ShardedPredictionServer(
            artifact_path=tmp_path / "a.json", registry_root=tmp_path / "r"
        )
    with pytest.raises(ModelError, match="workers"):
        ShardedPredictionServer(artifact_path=tmp_path / "a.json", workers=0)


def test_shards_share_one_port_and_agree(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    engine = load_artifact(path).engine()
    sharded = ShardedPredictionServer(artifact_path=path, workers=2)
    with sharded:
        assert sharded.alive() == 2

        def one(_):
            return _get(sharded.port, "/predict?app=alpha&other=beta")

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            documents = list(pool.map(one, range(48)))
        for document in documents:
            for model, predicted in document["predictions"].items():
                assert predicted == engine.predict("alpha", "beta", model)

        # The kernel hashes connections across both listeners; with 48
        # fresh connections the chance of single-shard routing is ~2^-47.
        pids = {_get(sharded.port, "/healthz")["pid"] for _ in range(48)}
        assert len(pids) == 2
    assert sharded.alive() == 0


def test_promotion_flips_every_shard(tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(_artifact(0), version="v1")
    registry.publish(_artifact(1), version="v2")
    registry.promote("v1")
    sharded = ShardedPredictionServer(
        registry_root=registry.root, workers=2, reload_interval=0.05
    )
    with sharded:
        versions = {_get(sharded.port, "/healthz")["version"] for _ in range(16)}
        assert versions == {"v1"}
        registry.promote("v2")
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            versions = {
                _get(sharded.port, "/healthz")["version"] for _ in range(16)
            }
            if versions == {"v2"}:
                break
            time.sleep(0.05)
        assert versions == {"v2"}, f"shards still serving {versions}"
