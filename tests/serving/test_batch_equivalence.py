"""Property: ``predict_batch`` is *exactly* the scalar path, for all models.

The vectorized batch implementations share the per-signature match
computation with the scalar path, so equality here is ``==``, not
``approx`` — any drift (a different BLAS reduction, a re-sorted curve)
is a bug, because batch serving must be a pure speedup.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import (
    AverageLT,
    AverageStDevLT,
    PDFLT,
    PredictionEngine,
    QueueModel,
    default_models,
)

from .conftest import make_catalog, make_signature

MODEL_FACTORIES = [
    AverageLT,
    AverageStDevLT,
    PDFLT,
    QueueModel,
    lambda: QueueModel(interpolate=False),
]


@st.composite
def catalog_and_targets(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    configs = draw(st.integers(min_value=1, max_value=8))
    app_count = draw(st.integers(min_value=1, max_value=4))
    apps = tuple(f"app{i}" for i in range(app_count))
    observations, degradations, signatures, _cal = make_catalog(
        apps=apps, configs=configs, seed=seed
    )
    target_count = draw(st.integers(min_value=1, max_value=5))
    rhos = draw(
        st.lists(
            st.floats(min_value=0.02, max_value=0.97),
            min_size=target_count,
            max_size=target_count,
        )
    )
    targets = [
        make_signature(rho, seed=seed * 31 + i) for i, rho in enumerate(rhos)
    ]
    return observations, degradations, list(apps), targets


@given(data=catalog_and_targets())
@settings(max_examples=40)
def test_batch_equals_scalar_for_every_model(data):
    observations, degradations, apps, targets = data
    for factory in MODEL_FACTORIES:
        model = factory().fit(observations, degradations)
        pairs = [(app, target) for app in apps for target in targets]
        # Repeat some pairs so the id()-dedup path is exercised.
        pairs = pairs + pairs[: len(pairs) // 2]
        batch = model.predict_batch(pairs)
        scalar = [model.predict(app, signature) for app, signature in pairs]
        assert batch == scalar


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20)
def test_engine_batch_matches_engine_scalar(seed):
    observations, degradations, signatures, _cal = make_catalog(
        apps=("a", "b", "c"), configs=6, seed=seed
    )
    engine = PredictionEngine(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        models=default_models(),
    )
    apps = sorted(signatures)
    requests = [
        (app, other, model)
        for app in apps
        for other in apps
        for model in engine.model_names
    ]
    batch = engine.predict_batch(requests)
    assert [p.predicted for p in batch] == [
        engine.predict(app, other, model) for app, other, model in requests
    ]
    assert [(p.app, p.other, p.model) for p in batch] == requests


def test_empty_batch_returns_empty():
    observations, degradations, signatures, _cal = make_catalog()
    for factory in MODEL_FACTORIES:
        model = factory().fit(observations, degradations)
        assert model.predict_batch([]) == []


def test_batch_handles_duplicate_signature_objects():
    observations, degradations, signatures, _cal = make_catalog()
    target = make_signature(0.5, seed=123)
    model = PDFLT().fit(observations, degradations)
    pairs = [("alpha", target)] * 4 + [("beta", target)] * 4
    batch = model.predict_batch(pairs)
    assert batch == [model.predict(app, sig) for app, sig in pairs]
    assert len(set(batch)) <= 2  # one value per app


def test_queue_batch_is_order_insensitive_to_pair_order():
    observations, degradations, signatures, _cal = make_catalog()
    targets = [make_signature(rho, seed=50 + i) for i, rho in enumerate([0.2, 0.6])]
    model = QueueModel().fit(observations, degradations)
    pairs = [(app, t) for app in ("alpha", "beta") for t in targets]
    forward = model.predict_batch(pairs)
    backward = model.predict_batch(pairs[::-1])
    assert forward == backward[::-1]
    assert all(isinstance(value, float) for value in forward)
    assert not any(np.isnan(forward))
