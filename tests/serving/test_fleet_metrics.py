"""Fleet-wide metric aggregation across pre-forked shards.

The acceptance property from the observability issue: under concurrent
load against a ≥2-shard :class:`ShardedPredictionServer`, a single
``/metrics/fleet`` scrape in Prometheus form passes the exposition linter
and its ``serving.requests`` counter for ``/predict`` equals *exactly* the
number of client requests issued.

Exactness without sleeps relies on the stats-dir protocol: a shard
publishes its own snapshot synchronously before answering ``/healthz`` or
``/metrics/fleet``.  So the recipe is: finish the load, poll ``/healthz``
until every worker pid has answered once (each answer refreshes that
shard's stats file), then take one fleet scrape.
"""

import concurrent.futures
import json
import time
import urllib.request

import pytest

from repro import telemetry
from repro.serving import (
    ShardedPredictionServer,
    read_shard_documents,
    save_artifact,
)
from repro.telemetry import lint_exposition, parse_exposition, render_prometheus

from .test_prefork import _artifact, _get

PREDICT_KEY = 'serving_requests_total{endpoint="/predict",status="200"}'


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    telemetry.enable()
    yield
    telemetry.disable()
    telemetry.reset()


def _get_text(port, path, accept="text/plain"):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers={"Accept": accept}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return dict(response.headers), response.read().decode("utf-8")


def _await_all_shards(port, expected, timeout=15.0):
    """Poll /healthz until `expected` distinct pids have answered.

    Each answer also forces that shard to publish a fresh stats snapshot,
    which is what makes the subsequent fleet scrape exact.
    """
    pids = set()
    deadline = time.monotonic() + timeout
    while len(pids) < expected and time.monotonic() < deadline:
        pids.add(_get(port, "/healthz")["pid"])
    assert len(pids) == expected, f"only shards {pids} answered within {timeout}s"
    return pids


def test_fleet_scrape_is_exact_under_concurrent_load(tmp_path):
    issued = 60
    path = save_artifact(_artifact(), tmp_path / "model.json")
    sharded = ShardedPredictionServer(artifact_path=path, workers=2)
    with sharded:

        def one(_):
            return _get(sharded.port, "/predict?app=alpha&other=beta")

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            documents = list(pool.map(one, range(issued)))
        assert len(documents) == issued

        pids = _await_all_shards(sharded.port, expected=2)

        headers, text = _get_text(sharded.port, "/metrics/fleet")
        assert headers["Content-Type"].startswith("text/plain")
        assert lint_exposition(text) == []
        samples = parse_exposition(text)
        assert samples[PREDICT_KEY] == issued

        # Property: the fleet counter is the sum of the per-shard scrapes.
        shard_documents = read_shard_documents(sharded.stats_dir)
        assert {doc["pid"] for doc in shard_documents} == pids
        per_shard = [
            parse_exposition(render_prometheus(doc["metrics"]))
            for doc in shard_documents
        ]
        assert sum(doc.get(PREDICT_KEY, 0) for doc in per_shard) == issued
        # Both shards actually took traffic (the kernel spreads 60 fresh
        # connections across two listeners with overwhelming probability).
        assert all(doc.get(PREDICT_KEY, 0) > 0 for doc in per_shard)

        # The JSON form of the same endpoint carries the shard roster.
        fleet = _get(sharded.port, "/metrics/fleet")
        assert fleet["shard_count"] == 2
        assert {shard["pid"] for shard in fleet["shards"]} == pids
        counters = fleet["metrics"]["counters"]
        predict = [
            value
            for key, value in counters.items()
            if "serving.requests" in key and "/predict" in key
        ]
        assert sum(predict) == issued


def test_healthz_reports_fleet_view(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    sharded = ShardedPredictionServer(artifact_path=path, workers=2)
    with sharded:
        for _ in range(8):
            _get(sharded.port, "/predict?app=alpha&other=beta")
        pids = _await_all_shards(sharded.port, expected=2)

        health = _get(sharded.port, "/healthz")
        assert "requests_served" not in health  # renamed per-shard
        assert health["shard_requests_served"] >= 0
        fleet = health["fleet"]
        assert fleet["shard_count"] == 2
        assert {shard["pid"] for shard in fleet["shards"]} == pids
        # Fleet total covers at least the predict load plus this health poll.
        assert fleet["requests_served"] >= 9
        for shard in fleet["shards"]:
            assert shard["version"] == "unversioned"
            assert shard["last_reload_error"] is None
            assert shard["shard_requests_served"] >= 0


def test_stats_dir_prunes_dead_shards(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    stats_dir = tmp_path / "stats"
    sharded = ShardedPredictionServer(
        artifact_path=path, workers=2, stats_dir=stats_dir
    )
    with sharded:
        _await_all_shards(sharded.port, expected=2)
        live = read_shard_documents(stats_dir)
        assert len(live) == 2

        # Forge a stats file from a pid that is not running: pruned on read.
        dead = dict(live[0])
        dead["pid"] = 2 ** 22 + 12345  # beyond any plausible live pid
        ghost = stats_dir / f"shard-{dead['pid']}.json"
        ghost.write_text(json.dumps(dead))
        after = read_shard_documents(stats_dir)
        assert {doc["pid"] for doc in after} == {doc["pid"] for doc in live}
        assert not ghost.exists()

        # The fleet endpoint never counts the ghost either.
        fleet = _get(sharded.port, "/metrics/fleet")
        assert fleet["shard_count"] == 2
