"""Fitted-model artifact: exact round-trips and paranoid loading."""

import json

import pytest

from repro.errors import ArtifactError
from repro.serving import (
    ARTIFACT_FORMAT,
    ModelArtifact,
    load_artifact,
    save_artifact,
)

from .conftest import make_catalog, make_signature


def _artifact(seed=0):
    observations, degradations, signatures, cal = make_catalog(seed=seed)
    return ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"engine": "test", "seed": seed},
    )


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
def test_round_trip_predictions_are_bit_identical(tmp_path):
    artifact = _artifact()
    path = save_artifact(artifact, tmp_path / "model.json")
    loaded = load_artifact(path)

    original = artifact.engine()
    restored = loaded.engine()
    apps = sorted(artifact.signatures)
    for app in apps:
        for other in apps:
            for model in original.model_names:
                assert restored.predict(app, other, model) == original.predict(
                    app, other, model
                )


def test_round_trip_preserves_products_and_metadata(tmp_path):
    artifact = _artifact(seed=3)
    loaded = load_artifact(save_artifact(artifact, tmp_path / "model.json"))
    assert loaded.metadata == {"engine": "test", "seed": 3}
    assert loaded.degradations == artifact.degradations
    assert sorted(obs.label for obs in loaded.observations) == sorted(
        obs.label for obs in artifact.observations
    )
    assert loaded.calibration is not None
    assert loaded.calibration.mean == artifact.calibration.mean
    for app, signature in artifact.signatures.items():
        assert loaded.signatures[app].mean == signature.mean
        assert loaded.signatures[app].utilization == signature.utilization


def test_save_is_atomic_and_leaves_no_temp_files(tmp_path):
    save_artifact(_artifact(), tmp_path / "model.json")
    save_artifact(_artifact(seed=1), tmp_path / "model.json")  # overwrite
    assert [p.name for p in tmp_path.iterdir()] == ["model.json"]


def test_document_carries_verifiable_checksum(tmp_path):
    import hashlib

    path = save_artifact(_artifact(), tmp_path / "model.json")
    document = json.loads(path.read_text())
    assert document["__artifact_format__"] == ARTIFACT_FORMAT
    expected = hashlib.sha256(
        json.dumps(document["payload"], sort_keys=True).encode()
    ).hexdigest()
    assert document["sha256"] == expected


def test_artifact_without_calibration_round_trips(tmp_path):
    artifact = _artifact()
    artifact.calibration = None
    loaded = load_artifact(save_artifact(artifact, tmp_path / "model.json"))
    assert loaded.calibration is None


# ----------------------------------------------------------------------
# Rejection of damaged artifacts
# ----------------------------------------------------------------------
def test_missing_file_raises(tmp_path):
    with pytest.raises(ArtifactError, match="cannot read"):
        load_artifact(tmp_path / "nope.json")


def test_truncated_artifact_raises(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(ArtifactError, match="truncated or corrupt"):
        load_artifact(path)


def test_bit_flip_fails_checksum(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    document = json.loads(path.read_text())
    # A quiet in-place corruption that keeps the JSON valid.
    document["payload"]["degradations"]["alpha"] = {
        label: value + 1.0
        for label, value in document["payload"]["degradations"]["alpha"].items()
    }
    path.write_text(json.dumps(document))
    with pytest.raises(ArtifactError, match="checksum"):
        load_artifact(path)


def test_unknown_format_version_raises(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    document = json.loads(path.read_text())
    document["__artifact_format__"] = ARTIFACT_FORMAT + 1
    path.write_text(json.dumps(document))
    with pytest.raises(ArtifactError, match="format"):
        load_artifact(path)


def test_non_object_document_raises(tmp_path):
    path = tmp_path / "model.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ArtifactError, match="JSON object"):
        load_artifact(path)


def test_missing_payload_section_raises(tmp_path):
    path = save_artifact(_artifact(), tmp_path / "model.json")
    document = json.loads(path.read_text())
    del document["payload"]["signatures"]
    # Re-checksum so only the schema check can catch it.
    import hashlib

    document["sha256"] = hashlib.sha256(
        json.dumps(document["payload"], sort_keys=True).encode()
    ).hexdigest()
    path.write_text(json.dumps(document))
    with pytest.raises(ArtifactError, match="signatures"):
        load_artifact(path)


def test_malformed_observation_raises():
    with pytest.raises(ArtifactError, match="malformed"):
        ModelArtifact.from_payload(
            {
                "observations": [{"partners": 1}],  # missing every other field
                "degradations": {},
                "signatures": {},
            }
        )


def test_from_payload_rejects_non_mapping():
    with pytest.raises(ArtifactError, match="mapping"):
        ModelArtifact.from_payload("not a dict")


def test_engine_accepts_signature_roundtrip_through_json():
    # JSON round-trips floats exactly; make sure a signature survives.
    signature = make_signature(0.4, seed=5)
    restored = type(signature).from_dict(json.loads(json.dumps(signature.to_dict())))
    assert restored.mean == signature.mean
    assert restored.std == signature.std
    assert restored.utilization == signature.utilization


# ----------------------------------------------------------------------
# Durability (registry promotion depends on these)
# ----------------------------------------------------------------------
def test_saved_artifact_honors_the_umask(tmp_path):
    import os
    import stat

    previous = os.umask(0o027)
    try:
        path = save_artifact(_artifact(), tmp_path / "model.json")
    finally:
        os.umask(previous)
    mode = stat.S_IMODE(path.stat().st_mode)
    # 0o666 & ~0o027 == 0o640 — not mkstemp's paranoid 0600.
    assert mode == 0o640


def test_save_fsyncs_file_and_directory_before_returning(tmp_path, monkeypatch):
    import os

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1])
    save_artifact(_artifact(), tmp_path / "model.json")
    # One fsync for the temp file's bytes, one for the directory entry.
    assert len(synced) >= 2
