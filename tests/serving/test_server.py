"""The prediction server: endpoint contract, errors, and serving metrics."""

import json
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.serving import ModelArtifact, PredictionServer

from .conftest import make_catalog


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def server():
    observations, degradations, signatures, cal = make_catalog(
        apps=("alpha", "beta"), configs=5
    )
    artifact = ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"engine": "test"},
    )
    instance = PredictionServer(artifact, port=0)
    instance.serve_background()
    yield instance
    instance.shutdown()
    instance.server_close()


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(server, path, document):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _error_of(exc):
    return json.loads(exc.read())["error"]


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------
def test_healthz_reports_models_and_metadata(server):
    status, document = _get(server, "/healthz")
    assert status == 200
    assert document["status"] == "ok"
    assert document["apps"] == ["alpha", "beta"]
    assert "Queue" in document["models"]
    assert document["metadata"] == {"engine": "test"}
    assert document["uptime_seconds"] >= 0


def test_models_endpoint(server):
    status, document = _get(server, "/models")
    assert status == 200
    assert document["models"] == ["AverageLT", "AverageStDevLT", "PDFLT", "Queue"]
    assert document["catalog_size"] == 5


def test_predict_get_all_models(server):
    status, document = _get(server, "/predict?app=alpha&other=beta")
    assert status == 200
    assert set(document["predictions"]) == set(server.engine.model_names)
    assert document["predictions"]["Queue"] == server.engine.predict(
        "alpha", "beta", "Queue"
    )


def test_predict_get_single_model(server):
    status, document = _get(server, "/predict?app=beta&other=alpha&model=PDFLT")
    assert status == 200
    assert list(document["predictions"]) == ["PDFLT"]


def test_predict_post(server):
    status, document = _post(
        server, "/predict", {"app": "alpha", "other": "beta", "model": "AverageLT"}
    )
    assert status == 200
    assert document["predictions"]["AverageLT"] == server.engine.predict(
        "alpha", "beta", "AverageLT"
    )


def test_predict_batch_matches_scalar(server):
    requests = [
        [app, other, model]
        for app in ("alpha", "beta")
        for other in ("alpha", "beta")
        for model in server.engine.model_names
    ]
    status, document = _post(server, "/predict/batch", {"requests": requests})
    assert status == 200
    assert len(document["predictions"]) == len(requests)
    for entry in document["predictions"]:
        assert entry["predicted"] == server.engine.predict(
            entry["app"], entry["other"], entry["model"]
        )


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
def test_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/nope")
    assert excinfo.value.code == 404
    assert "unknown path" in _error_of(excinfo.value)


def test_unknown_app_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=ghost&other=beta")
    assert excinfo.value.code == 400
    assert "ghost" in _error_of(excinfo.value)


def test_unknown_model_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=alpha&other=beta&model=Oracle")
    assert excinfo.value.code == 400
    assert "Oracle" in _error_of(excinfo.value)


def test_missing_fields_are_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=alpha")
    assert excinfo.value.code == 400


def test_batch_with_malformed_body_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/predict/batch", {"requests": [["alpha", "beta"]]})
    assert excinfo.value.code == 400
    assert "triple" in _error_of(excinfo.value)


def test_batch_with_non_json_body_is_400(server):
    url = f"http://127.0.0.1:{server.server_port}/predict/batch"
    request = urllib.request.Request(url, data=b"not json", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400


def test_server_survives_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError):
        _get(server, "/predict?app=ghost&other=beta")
    status, _ = _get(server, "/healthz")
    assert status == 200


# ----------------------------------------------------------------------
# Serving metrics
# ----------------------------------------------------------------------
def test_requests_are_counted_when_telemetry_enabled(server):
    telemetry.enable()
    _get(server, "/healthz")
    _get(server, "/predict?app=alpha&other=beta")
    _post(server, "/predict/batch", {"requests": [["alpha", "beta", "Queue"]]})
    registry = telemetry.registry()
    assert (
        registry.counter_value("serving.requests", endpoint="/healthz", status=200)
        == 1.0
    )
    assert (
        registry.counter_value("serving.requests", endpoint="/predict", status=200)
        == 1.0
    )
    assert (
        registry.counter_value(
            "serving.requests", endpoint="/predict/batch", status=200
        )
        == 1.0
    )
    assert registry.counter_value("serving.predictions") == 1.0
    histogram = registry.histogram_state(
        "serving.request_seconds", endpoint="/predict"
    )
    assert histogram["count"] == 1


def test_error_responses_are_counted_by_status(server):
    telemetry.enable()
    with pytest.raises(urllib.error.HTTPError):
        _get(server, "/predict?app=ghost&other=beta")
    assert (
        telemetry.registry().counter_value(
            "serving.requests", endpoint="/predict", status=400
        )
        == 1.0
    )


def test_metrics_endpoint_returns_snapshot(server):
    telemetry.enable()
    _get(server, "/healthz")
    status, document = _get(server, "/metrics")
    assert status == 200
    assert any("serving.requests" in key for key in document.get("counters", {}))


def test_no_metrics_recorded_when_disabled(server):
    _get(server, "/healthz")
    snapshot = telemetry.registry().snapshot()
    assert not any(
        "serving" in key for key in snapshot.get("counters", {})
    )
