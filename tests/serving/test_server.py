"""The prediction server: endpoint contract, errors, and serving metrics."""

import json
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.serving import ModelArtifact, PredictionServer

from .conftest import make_catalog


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


@pytest.fixture()
def server():
    observations, degradations, signatures, cal = make_catalog(
        apps=("alpha", "beta"), configs=5
    )
    artifact = ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
        metadata={"engine": "test"},
    )
    instance = PredictionServer(artifact, port=0)
    instance.serve_background()
    yield instance
    instance.shutdown()
    instance.server_close()


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(server, path, document):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _error_of(exc):
    return json.loads(exc.read())["error"]


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------
def test_healthz_reports_models_and_metadata(server):
    status, document = _get(server, "/healthz")
    assert status == 200
    assert document["status"] == "ok"
    assert document["apps"] == ["alpha", "beta"]
    assert "Queue" in document["models"]
    assert document["metadata"] == {"engine": "test"}
    assert document["uptime_seconds"] >= 0


def test_models_endpoint(server):
    status, document = _get(server, "/models")
    assert status == 200
    assert document["models"] == ["AverageLT", "AverageStDevLT", "PDFLT", "Queue"]
    assert document["catalog_size"] == 5


def test_predict_get_all_models(server):
    status, document = _get(server, "/predict?app=alpha&other=beta")
    assert status == 200
    assert set(document["predictions"]) == set(server.engine.model_names)
    assert document["predictions"]["Queue"] == server.engine.predict(
        "alpha", "beta", "Queue"
    )


def test_predict_get_single_model(server):
    status, document = _get(server, "/predict?app=beta&other=alpha&model=PDFLT")
    assert status == 200
    assert list(document["predictions"]) == ["PDFLT"]


def test_predict_post(server):
    status, document = _post(
        server, "/predict", {"app": "alpha", "other": "beta", "model": "AverageLT"}
    )
    assert status == 200
    assert document["predictions"]["AverageLT"] == server.engine.predict(
        "alpha", "beta", "AverageLT"
    )


def test_predict_batch_matches_scalar(server):
    requests = [
        [app, other, model]
        for app in ("alpha", "beta")
        for other in ("alpha", "beta")
        for model in server.engine.model_names
    ]
    status, document = _post(server, "/predict/batch", {"requests": requests})
    assert status == 200
    assert len(document["predictions"]) == len(requests)
    for entry in document["predictions"]:
        assert entry["predicted"] == server.engine.predict(
            entry["app"], entry["other"], entry["model"]
        )


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
def test_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/nope")
    assert excinfo.value.code == 404
    assert "unknown path" in _error_of(excinfo.value)


def test_unknown_app_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=ghost&other=beta")
    assert excinfo.value.code == 400
    assert "ghost" in _error_of(excinfo.value)


def test_unknown_model_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=alpha&other=beta&model=Oracle")
    assert excinfo.value.code == 400
    assert "Oracle" in _error_of(excinfo.value)


def test_missing_fields_are_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/predict?app=alpha")
    assert excinfo.value.code == 400


def test_batch_with_malformed_body_is_400(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/predict/batch", {"requests": [["alpha"]]})
    assert excinfo.value.code == 400
    assert "[app, other, model]" in _error_of(excinfo.value)


def test_batch_pair_entry_expands_to_all_models(server):
    # A 2-tuple (or null model) means "all models", like /predict.
    status, document = _post(server, "/predict/batch", {"requests": [["alpha", "beta"]]})
    assert status == 200
    answered = {(p["model"]): p["predicted"] for p in document["predictions"]}
    assert sorted(answered) == server.engine.model_names
    for model, predicted in answered.items():
        assert predicted == server.engine.predict("alpha", "beta", model)


def test_batch_null_model_matches_explicit_triples(server):
    status, with_null = _post(
        server, "/predict/batch", {"requests": [["beta", "alpha", None]]}
    )
    assert status == 200
    _, explicit = _post(
        server,
        "/predict/batch",
        {"requests": [["beta", "alpha", m] for m in server.engine.model_names]},
    )
    assert with_null["predictions"] == explicit["predictions"]


def test_malformed_content_length_is_400_not_crash(server):
    url = f"http://127.0.0.1:{server.server_port}/predict/batch"
    request = urllib.request.Request(
        url, data=b'{"requests": []}', method="POST"
    )
    # urllib would set a correct Content-Length; sabotage it post-hoc.
    request.add_unredirected_header("Content-Length", "not-a-number")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    assert "Content-Length" in _error_of(excinfo.value)
    # The handler thread survived; the server still answers.
    status, _ = _get(server, "/healthz")
    assert status == 200


def test_batch_with_non_json_body_is_400(server):
    url = f"http://127.0.0.1:{server.server_port}/predict/batch"
    request = urllib.request.Request(url, data=b"not json", method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400


def test_server_survives_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError):
        _get(server, "/predict?app=ghost&other=beta")
    status, _ = _get(server, "/healthz")
    assert status == 200


# ----------------------------------------------------------------------
# Serving metrics
# ----------------------------------------------------------------------
def test_requests_are_counted_when_telemetry_enabled(server):
    telemetry.enable()
    _get(server, "/healthz")
    _get(server, "/predict?app=alpha&other=beta")
    _post(server, "/predict/batch", {"requests": [["alpha", "beta", "Queue"]]})
    registry = telemetry.registry()
    assert (
        registry.counter_value("serving.requests", endpoint="/healthz", status=200)
        == 1.0
    )
    assert (
        registry.counter_value("serving.requests", endpoint="/predict", status=200)
        == 1.0
    )
    assert (
        registry.counter_value(
            "serving.requests", endpoint="/predict/batch", status=200
        )
        == 1.0
    )
    assert registry.counter_value("serving.predictions") == 1.0
    histogram = registry.histogram_state(
        "serving.request_seconds", endpoint="/predict"
    )
    assert histogram["count"] == 1


def test_error_responses_are_counted_by_status(server):
    telemetry.enable()
    with pytest.raises(urllib.error.HTTPError):
        _get(server, "/predict?app=ghost&other=beta")
    assert (
        telemetry.registry().counter_value(
            "serving.requests", endpoint="/predict", status=400
        )
        == 1.0
    )


def test_unknown_paths_collapse_to_one_endpoint_label(server):
    # Arbitrary client paths must not mint unbounded telemetry label
    # cardinality: every unmatched path lands on the fixed <unknown> label.
    telemetry.enable()
    for path in ("/nope", "/admin", "/predict/../../etc/passwd", "/x" * 50):
        with pytest.raises(urllib.error.HTTPError):
            _get(server, path)
    registry = telemetry.registry()
    assert (
        registry.counter_value(
            "serving.requests", endpoint="<unknown>", status=404
        )
        == 4.0
    )
    snapshot = registry.snapshot()
    labelled = [k for k in snapshot["counters"] if "serving.requests" in k]
    assert all("/nope" not in k and "/admin" not in k for k in labelled)


def test_healthz_counts_served_requests(server):
    before = _get(server, "/healthz")[1]["shard_requests_served"]
    _get(server, "/predict?app=alpha&other=beta")
    with pytest.raises(urllib.error.HTTPError):
        _get(server, "/nope")  # errors count too: it is a served response
    document = _get(server, "/healthz")[1]
    after = document["shard_requests_served"]
    # healthz snapshots *before* counting itself, so the delta covers the
    # first healthz, the predict, and the 404.
    assert after == before + 3
    assert server.requests_served >= after
    # Standalone server: the fleet view is a fleet of one, totalling the
    # same tally under the aggregated name.
    assert document["fleet"]["shard_count"] == 1
    assert document["fleet"]["requests_served"] == after
    assert document["fleet"]["shards"][0]["shard_requests_served"] == after


def test_metrics_endpoint_returns_snapshot(server):
    telemetry.enable()
    _get(server, "/healthz")
    status, document = _get(server, "/metrics")
    assert status == 200
    assert any("serving.requests" in key for key in document.get("counters", {}))


def test_no_metrics_recorded_when_disabled(server):
    _get(server, "/healthz")
    snapshot = telemetry.registry().snapshot()
    assert not any(
        "serving" in key for key in snapshot.get("counters", {})
    )


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
@pytest.fixture()
def batching_server():
    observations, degradations, signatures, cal = make_catalog(
        apps=("alpha", "beta"), configs=5
    )
    artifact = ModelArtifact(
        observations=observations,
        degradations=degradations,
        signatures=signatures,
        calibration=cal,
    )
    instance = PredictionServer(artifact, port=0, batch_window=0.02)
    instance.serve_background()
    yield instance
    instance.shutdown()
    instance.server_close()


def test_microbatched_predictions_match_direct_engine(batching_server):
    server = batching_server
    import concurrent.futures

    def one(pair):
        app, other = pair
        return _get(server, f"/predict?app={app}&other={other}")[1]

    pairs = [("alpha", "beta"), ("beta", "alpha"), ("alpha", "alpha")] * 4
    with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
        documents = list(pool.map(one, pairs))
    for (app, other), document in zip(pairs, documents):
        for model, predicted in document["predictions"].items():
            assert predicted == server.engine.predict(app, other, model)


def test_microbatch_coalesces_concurrent_requests(batching_server):
    server = batching_server
    telemetry.enable()
    import concurrent.futures

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        list(
            pool.map(
                lambda _: _get(server, "/predict?app=alpha&other=beta"),
                range(24),
            )
        )
    registry = telemetry.registry()
    flushes = registry.counter_value("serving.microbatch_flushes")
    sizes = registry.histogram_state("serving.microbatch_size")
    assert flushes >= 1 and sizes["count"] == flushes
    # 24 concurrent requests through a 20ms window must coalesce at least
    # once; requiring fewer flushes than requests keeps this un-flaky.
    assert flushes < 24


def test_microbatch_isolates_bad_requests(batching_server):
    server = batching_server
    import concurrent.futures

    def good():
        return _get(server, "/predict?app=alpha&other=beta")[0]

    def bad():
        try:
            _get(server, "/predict?app=ghost&other=beta")
            return 200
        except urllib.error.HTTPError as exc:
            return exc.code

    with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
        goods = [pool.submit(good) for _ in range(6)]
        bads = [pool.submit(bad) for _ in range(3)]
        assert [f.result() for f in goods] == [200] * 6
        assert [f.result() for f in bads] == [400] * 3


# ----------------------------------------------------------------------
# Request ids
# ----------------------------------------------------------------------
def _get_raw(server, path, headers=None):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def test_server_generates_request_id(server):
    _status, headers, _body = _get_raw(server, "/healthz")
    generated = headers.get("X-Request-Id")
    assert generated
    assert len(generated) == 32  # uuid4 hex
    assert all(ch in "0123456789abcdef" for ch in generated)


def test_client_request_id_is_echoed(server):
    _status, headers, _body = _get_raw(
        server, "/healthz", headers={"X-Request-Id": "trace-abc-123"}
    )
    assert headers.get("X-Request-Id") == "trace-abc-123"


def test_hostile_request_id_is_replaced(server):
    # Quotes, backslashes, and control characters would corrupt log lines
    # and headers; the server mints a fresh id instead of echoing them.
    _status, headers, _body = _get_raw(
        server, "/healthz", headers={"X-Request-Id": '"\\'}
    )
    echoed = headers.get("X-Request-Id")
    assert echoed
    assert '"' not in echoed and "\\" not in echoed


def test_error_responses_carry_request_id(server):
    try:
        _get_raw(server, "/nope", headers={"X-Request-Id": "err-1"})
    except urllib.error.HTTPError as exc:
        assert exc.headers.get("X-Request-Id") == "err-1"
    else:  # pragma: no cover
        raise AssertionError("expected a 404")


# ----------------------------------------------------------------------
# Content negotiation & fleet view
# ----------------------------------------------------------------------
def test_metrics_default_stays_json(server):
    telemetry.enable()
    _get(server, "/healthz")
    status, document = _get(server, "/metrics")  # no Accept preference
    assert status == 200
    assert isinstance(document, dict)
    assert "counters" in document


def test_metrics_negotiates_prometheus_text(server):
    from repro.telemetry import lint_exposition, parse_exposition

    telemetry.enable()
    _get(server, "/healthz")
    _get(server, "/predict?app=alpha&other=beta")
    status, headers, body = _get_raw(
        server, "/metrics", headers={"Accept": "text/plain"}
    )
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode("utf-8")
    assert lint_exposition(text) == []
    samples = parse_exposition(text)
    assert samples['serving_requests_total{endpoint="/predict",status="200"}'] == 1
    assert 'serving_request_seconds_count{endpoint="/predict"}' in samples


def test_metrics_fleet_single_server_is_fleet_of_one(server):
    telemetry.enable()
    _get(server, "/predict?app=alpha&other=beta")
    status, document = _get(server, "/metrics/fleet")
    assert status == 200
    assert document["shard_count"] == 1
    assert document["shards"][0]["version"] == "unversioned"
    counters = document["metrics"]["counters"]
    assert any("serving.requests" in key for key in counters)


def test_metrics_fleet_negotiates_prometheus_text(server):
    from repro.telemetry import lint_exposition

    telemetry.enable()
    _get(server, "/predict?app=alpha&other=beta")
    _status, headers, body = _get_raw(
        server, "/metrics/fleet", headers={"Accept": "text/plain"}
    )
    assert headers["Content-Type"].startswith("text/plain")
    assert lint_exposition(body.decode("utf-8")) == []
