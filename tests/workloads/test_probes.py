"""Tests for the ImpactB and CompressionB micro-benchmarks."""

import numpy as np
import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.core.measurement import LatencyCollector
from repro.errors import ConfigurationError
from repro.mpi import MPIWorld
from repro.units import MS, US
from repro.workloads import CompressionB, CompressionConfig, ImpactB


def _machine(nodes=4, seed=0):
    return Machine(small_test_config(seed=seed, node_count=nodes))


def _launch_probe(machine, collector, **kwargs):
    probe = ImpactB(collector, interval=0.2 * MS, **kwargs)
    world = MPIWorld.create(machine, probe.preferred_placement(machine.config), name="probe")
    world.launch(probe)
    return probe


def test_impactb_collects_samples_on_idle_switch():
    machine = _machine()
    collector = LatencyCollector()
    _launch_probe(machine, collector)
    machine.sim.run(until=0.02)
    assert collector.count > 50
    values = collector.values()
    # Idle latency should be around a microsecond, far below a millisecond.
    assert 0.2 * US < values.mean() < 5 * US


def test_impactb_only_initiators_record():
    machine = _machine()
    collector = LatencyCollector()
    _launch_probe(machine, collector)
    machine.sim.run(until=0.01)
    # 4 nodes -> 2 node pairs; initiators live on nodes 0 and 2.
    recording_nodes = {r // 2 for r in collector.ranks()}
    assert recording_nodes == {0, 2}


def test_impactb_odd_node_count_leaves_last_node_idle():
    machine = _machine(nodes=3)
    collector = LatencyCollector()
    _launch_probe(machine, collector)
    machine.sim.run(until=0.01)
    assert collector.count > 0
    recording_nodes = {r // 2 for r in collector.ranks()}
    assert recording_nodes == {0}


def test_impactb_probe_load_is_negligible():
    machine = _machine()
    collector = LatencyCollector()
    _launch_probe(machine, collector)
    machine.sim.run(until=0.02)
    assert machine.network.true_utilization() < 0.02


def test_impactb_deterministic_across_identical_runs():
    results = []
    for _ in range(2):
        machine = _machine(seed=3)
        collector = LatencyCollector()
        _launch_probe(machine, collector)
        machine.sim.run(until=0.01)
        results.append(tuple(collector.values()))
    assert results[0] == results[1]


def test_impactb_without_jitter_paces_regularly():
    machine = _machine()
    collector = LatencyCollector()
    _launch_probe(machine, collector, jitter=False, warmup=False)
    machine.sim.run(until=0.01)
    times = collector.times()
    one_rank = times[collector.ranks() == collector.ranks()[0]]
    gaps = np.diff(one_rank)
    assert np.allclose(gaps, 0.2 * MS, rtol=0.2)


def test_impactb_validation():
    with pytest.raises(ConfigurationError):
        ImpactB(LatencyCollector(), message_bytes=0)
    with pytest.raises(ConfigurationError):
        ImpactB(LatencyCollector(), interval=0.0)


# ----------------------------------------------------------------------
# CompressionB
# ----------------------------------------------------------------------
def test_compression_config_validation():
    with pytest.raises(ConfigurationError):
        CompressionConfig(0, 1, 1e4)
    with pytest.raises(ConfigurationError):
        CompressionConfig(1, 0, 1e4)
    with pytest.raises(ConfigurationError):
        CompressionConfig(1, 1, -1)
    with pytest.raises(ConfigurationError):
        CompressionConfig(1, 1, 1e4, message_bytes=0)


def test_compression_config_label():
    assert CompressionConfig(7, 10, 2.5e6).label == "P7xM10xB2.5e+06"


def test_compressionb_generates_switch_traffic():
    machine = _machine()
    comp = CompressionB(CompressionConfig(1, 1, 2.5e5))
    world = MPIWorld.create(machine, comp.preferred_placement(machine.config), name="comp")
    world.launch(comp)
    machine.sim.run(until=0.01)
    assert machine.network.switch(0).stats.arrivals > 0
    assert machine.network.true_utilization() > 0.0


def test_compressionb_shorter_sleep_means_more_load():
    utils = {}
    for cycles in [2.5e4, 2.5e6]:
        machine = _machine()
        comp = CompressionB(CompressionConfig(2, 1, cycles))
        world = MPIWorld.create(machine, comp.preferred_placement(machine.config), name="comp")
        world.launch(comp)
        machine.sim.run(until=0.02)
        utils[cycles] = machine.network.true_utilization()
    assert utils[2.5e4] > utils[2.5e6]


def test_compressionb_more_partners_means_more_load():
    utils = {}
    for partners in [1, 3]:
        machine = _machine()
        comp = CompressionB(CompressionConfig(partners, 1, 2.5e6))
        world = MPIWorld.create(machine, comp.preferred_placement(machine.config), name="comp")
        world.launch(comp)
        machine.sim.run(until=0.02)
        utils[partners] = machine.network.true_utilization()
    assert utils[3] > utils[1]


def test_compressionb_partner_count_clamped_to_ring():
    """P larger than the ring is clamped, not an error (paper used P=17
    on 18 nodes; our test machine has only 4)."""
    machine = _machine()
    comp = CompressionB(CompressionConfig(17, 1, 2.5e6))
    world = MPIWorld.create(machine, comp.preferred_placement(machine.config), name="comp")
    world.launch(comp)
    machine.sim.run(until=0.005)
    assert machine.network.switch(0).stats.arrivals > 0


def test_compressionb_single_node_degenerates_to_idle():
    machine = _machine(nodes=1)
    comp = CompressionB(CompressionConfig(1, 1, 2.5e5))
    world = MPIWorld.create(machine, comp.preferred_placement(machine.config), name="comp")
    world.launch(comp)
    machine.sim.run(until=0.005)
    assert machine.network.switch(0).stats.arrivals == 0


def test_compressionb_post_overhead_validation():
    with pytest.raises(ConfigurationError):
        CompressionB(CompressionConfig(1, 1, 1e4), post_overhead=-1.0)
