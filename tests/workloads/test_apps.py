"""Tests for the six application skeletons."""

import pytest

from repro.cluster import Machine, cab_config, small_test_config
from repro.errors import ConfigurationError
from repro.mpi import MPIWorld
from repro.workloads import AMG, FFTW, Lulesh, MCB, MILC, VPFFT, looped
from repro.workloads.base import cubic_rank_count, half_core_placement


SMALL_APPS = [
    FFTW(iterations=1, pack_compute=5e-5),
    VPFFT(iterations=1, stress_compute=1e-4),
    MILC(iterations=3, compute_per_iter=5e-5),
    Lulesh(iterations=3, compute_per_iter=1e-4),
    MCB(iterations=3, track_compute=1e-4),
    AMG(cycles=2, dense_compute=1e-4, sparse_iterations=2),
]


def _run(app, seed=0):
    machine = Machine(small_test_config(seed=seed))
    world = MPIWorld.create(machine, app.preferred_placement(machine.config), name=app.name)
    job = world.launch(app)
    machine.sim.run_until_event(job.done, max_events=5_000_000)
    return machine, world, job


@pytest.mark.parametrize("app", SMALL_APPS, ids=lambda a: a.name)
def test_app_completes_on_small_machine(app):
    machine, world, job = _run(app)
    assert job.finished
    assert job.elapsed > 0


@pytest.mark.parametrize("app", SMALL_APPS, ids=lambda a: a.name)
def test_app_generates_network_traffic(app):
    machine, world, job = _run(app)
    assert machine.network.switch(0).stats.arrivals > 0


@pytest.mark.parametrize("app", SMALL_APPS, ids=lambda a: a.name)
def test_app_runtime_reproducible(app):
    elapsed = []
    for _ in range(2):
        _, _, job = _run(app, seed=11)
        elapsed.append(job.elapsed)
    assert elapsed[0] == elapsed[1]


def test_apps_use_half_core_placement_on_cab():
    config = cab_config()
    for app in (FFTW(), VPFFT(), MILC(), MCB(), AMG()):
        machine = Machine(config)
        world = MPIWorld.create(machine, app.preferred_placement(config), name=app.name)
        assert world.size == 144  # 4/socket x 2 sockets x 18 nodes


def test_lulesh_uses_cubic_count_on_cab():
    config = cab_config()
    machine = Machine(config)
    app = Lulesh()
    world = MPIWorld.create(machine, app.preferred_placement(config), name="lulesh")
    assert world.size == 64  # 2/socket on 16 nodes, exactly the paper
    assert len(world.node_ids) == 16


def test_cubic_rank_count_on_cab():
    assert cubic_rank_count(cab_config()) == (4, 2, 16)


def test_cubic_rank_count_small():
    # 4 nodes x 2 sockets x 1 rank/socket = 8 = 2^3.
    assert cubic_rank_count(small_test_config()) == (2, 1, 4)


def test_half_core_placement_leaves_room_for_probes():
    """The paper's layouts: one app + both probes fit, or two apps exactly
    fill the sockets (the co-run configuration)."""
    from repro.cluster import PerSocketPlacement

    config = cab_config()
    machine = Machine(config)
    MPIWorld.create(machine, half_core_placement(config), name="app")
    MPIWorld.create(machine, PerSocketPlacement(1), name="impactb")
    MPIWorld.create(machine, PerSocketPlacement(1), name="compressionb")

    corun = Machine(config)
    MPIWorld.create(corun, half_core_placement(config), name="a")
    MPIWorld.create(corun, half_core_placement(config), name="b")


def test_looped_workload_repeats_forever():
    machine = Machine(small_test_config())
    app = MCB(iterations=1, track_compute=1e-4)
    world = MPIWorld.create(machine, app.preferred_placement(machine.config), name="loop")
    world.launch(looped(app))
    machine.sim.run(until=0.05)
    # One iteration takes ~0.1ms; after 50ms the loop must have cycled many
    # times (a finite job would long since have drained the event heap).
    assert machine.sim.events_executed > 1000


def test_app_parameter_validation():
    with pytest.raises(ConfigurationError):
        FFTW(iterations=0)
    with pytest.raises(ConfigurationError):
        VPFFT(bytes_per_pair=0)
    with pytest.raises(ConfigurationError):
        MILC(halo_bytes=0)
    with pytest.raises(ConfigurationError):
        Lulesh(iterations=0)
    with pytest.raises(ConfigurationError):
        MCB(census_every=0)
    with pytest.raises(ConfigurationError):
        AMG(cycles=0)


def test_fftw_more_iterations_run_longer():
    short = _run(FFTW(iterations=1, pack_compute=5e-5))[2].elapsed
    long = _run(FFTW(iterations=2, pack_compute=5e-5))[2].elapsed
    assert long > short


def test_network_sensitivity_ordering_on_cab():
    """FFTW devotes a far larger share of its time to the network than MCB —
    the root cause of the paper's Fig. 7 ordering."""
    shares = {}
    for app in (FFTW(iterations=1), MCB(iterations=3)):
        machine = Machine(cab_config())
        world = MPIWorld.create(machine, app.preferred_placement(machine.config), name=app.name)
        job = world.launch(app)
        machine.sim.run_until_event(job.done)
        stats = machine.network.switch(0).stats
        shares[app.name] = stats.busy_time / job.elapsed
    assert shares["fftw"] > 3 * shares["mcb"]
