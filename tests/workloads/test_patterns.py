"""Tests for grid decompositions and halo exchange."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.workloads import balanced_grid, grid_coords, grid_rank, torus_neighbors


def test_balanced_grid_cab_sizes():
    assert balanced_grid(144, 3) == (6, 6, 4)
    assert balanced_grid(144, 4) == (4, 4, 3, 3)
    assert balanced_grid(64, 3) == (4, 4, 4)


def test_balanced_grid_product_is_size():
    for size in [1, 2, 7, 12, 60, 144]:
        for dims in [1, 2, 3, 4]:
            shape = balanced_grid(size, dims)
            product = 1
            for extent in shape:
                product *= extent
            assert product == size
            assert len(shape) == dims


def test_balanced_grid_prime_size():
    assert balanced_grid(13, 3) == (13, 1, 1)


def test_balanced_grid_validation():
    with pytest.raises(ConfigurationError):
        balanced_grid(0, 3)
    with pytest.raises(ConfigurationError):
        balanced_grid(4, 0)


def test_grid_coords_roundtrip():
    shape = (3, 4, 5)
    for rank in range(60):
        assert grid_rank(grid_coords(rank, shape), shape) == rank


def test_grid_coords_out_of_range():
    with pytest.raises(ConfigurationError):
        grid_coords(60, (3, 4, 5))
    with pytest.raises(ConfigurationError):
        grid_rank((3, 0, 0), (3, 4, 5))


def test_torus_neighbors_3d_interior():
    shape = (4, 4, 4)
    neighbors = torus_neighbors(21, shape)  # (1, 1, 1)
    assert len(neighbors) == 6
    assert 21 not in neighbors


def test_torus_neighbors_wraparound():
    shape = (3, 1, 1)
    assert sorted(torus_neighbors(0, shape)) == [1, 2]


def test_torus_neighbors_degenerate_axes():
    # extent-1 axes contribute nothing; extent-2 axes contribute one neighbour.
    assert torus_neighbors(0, (2, 1, 1)) == [1]
    assert torus_neighbors(0, (1, 1, 1)) == []


def test_torus_neighbors_symmetric():
    """If b is a neighbour of a, then a is a neighbour of b."""
    shape = (3, 4, 2)
    for rank in range(24):
        for neighbor in torus_neighbors(rank, shape):
            assert rank in torus_neighbors(neighbor, shape)


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=4))
def test_property_neighbors_valid_and_self_free(size, dims):
    shape = balanced_grid(size, dims)
    for rank in range(0, size, max(1, size // 7)):
        neighbors = torus_neighbors(rank, shape)
        assert rank not in neighbors
        assert len(neighbors) == len(set(neighbors))
        assert all(0 <= n < size for n in neighbors)
