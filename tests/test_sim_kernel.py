"""Sim-kernel determinism tests: identical seeds must produce identical
event orderings, and cancelled :class:`ScheduledCall` s must never fire."""

import pytest

from repro.errors import SimulationError
from repro.sim import RandomStreams, Simulator
from repro.sim.kernel import ScheduledCall


def _random_cascade(seed: int, chains: int = 4, depth: int = 25):
    """Run a seeded cascade of self-rescheduling callbacks and record the
    exact (time, label) execution trace."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    trace = []

    def hop(label: str, remaining: int) -> None:
        trace.append((sim.now, label))
        if remaining > 0:
            delay = float(streams.stream(label).exponential(1e-3))
            sim.schedule(delay, hop, label, remaining - 1)

    for chain in range(chains):
        sim.schedule(0.0, hop, f"chain{chain}", depth)
    sim.run()
    return trace


class TestSeedDeterminism:
    def test_identical_seeds_identical_orderings(self):
        assert _random_cascade(seed=7) == _random_cascade(seed=7)

    def test_different_seeds_diverge(self):
        assert _random_cascade(seed=7) != _random_cascade(seed=8)

    def test_equal_times_run_in_insertion_order(self):
        sim = Simulator()
        hits = []
        for tag in ("a", "b", "c"):
            sim.schedule(1.0, hits.append, tag)
        sim.schedule(0.5, hits.append, "first")
        sim.run()
        assert hits == ["first", "a", "b", "c"]

    def test_events_executed_counts_every_callback(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestScheduledCall:
    def test_cancel_suppresses_callback(self):
        sim = Simulator()
        hits = []
        handle = sim.schedule_cancellable(1.0, hits.append, "never")
        sim.schedule(2.0, hits.append, "after")
        handle.cancel()
        sim.run()
        assert hits == ["after"]
        assert sim.now == 2.0  # the cancelled entry still advanced the heap

    def test_uncancelled_call_fires(self):
        sim = Simulator()
        hits = []
        sim.schedule_cancellable(0.5, hits.append, "yes")
        sim.run()
        assert hits == ["yes"]

    def test_cancel_is_idempotent_and_releases_references(self):
        handle = ScheduledCall(1.0, print, ("x",))
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        assert handle.fn is None
        assert handle.args == ()

    def test_cancel_mid_run_from_earlier_callback(self):
        # A callback scheduled before the target can revoke it in-flight —
        # the pattern NIC timeout paths rely on.
        sim = Simulator()
        hits = []
        target = sim.schedule_cancellable(2.0, hits.append, "target")
        sim.schedule(1.0, target.cancel)
        sim.run()
        assert hits == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_cancellable(-0.1, lambda: None)
