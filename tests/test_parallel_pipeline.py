"""Serial/parallel campaign equivalence and crash-safe resume tests.

The campaign must produce bit-identical products no matter how it is
executed (in-process, through a process pool, cold, or resumed from a
partially written sharded cache) — that is what makes the cache safe to
share between the CLI, the scripts, and the benchmark suite.
"""

import json
import shutil

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.errors import CampaignError, FailureRecord
from repro.parallel import map_experiments
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig, Workload


def _pipeline(cache_path=None, seed=0, applications=None, verbose=False):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=seed,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
        ),
        machine_config=small_test_config(seed=seed),
        applications=applications
        if applications is not None
        else {
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "mcb": MCB(iterations=2, track_compute=2e-4),
        },
        catalog=[
            CompressionConfig(1, 1, 2.5e6),
            CompressionConfig(2, 1, 2.5e5),
        ],
        cache_path=cache_path,
        verbose=verbose,
    )


def _signature(pipeline):
    """Canonical byte-level fingerprint of every cached product."""
    return json.dumps(pipeline._cache.snapshot(), sort_keys=True)


def _burn(x: float) -> float:
    """A picklable stand-in experiment with nontrivial float arithmetic."""
    total = 0.0
    for i in range(1, 200):
        total += (x * i) ** 0.5 / i
    return total


class _Boom(Workload):
    """A workload that always fails to launch (worker-failure injection)."""

    name = "boom"

    def build(self, ctx):
        raise RuntimeError("boom: this workload never runs")


# ----------------------------------------------------------------------
# map_experiments equivalence
# ----------------------------------------------------------------------
def test_map_experiments_pool_matches_serial_bitwise():
    items = [0.1 * i for i in range(12)]
    serial = map_experiments(_burn, items, workers=1)
    pooled = map_experiments(_burn, items, workers=2, chunksize=3)
    assert serial == pooled  # float equality: bit-identical results


def test_map_experiments_on_result_streams_in_order():
    landed = []
    results = map_experiments(_burn, [1.0, 2.0, 3.0], workers=2, on_result=landed.append)
    assert landed == results == [_burn(x) for x in [1.0, 2.0, 3.0]]
    landed.clear()
    map_experiments(_burn, [1.0, 2.0], workers=1, on_result=landed.append)
    assert landed == [_burn(1.0), _burn(2.0)]


# ----------------------------------------------------------------------
# Campaign equivalence
# ----------------------------------------------------------------------
def test_campaign_parallel_matches_serial(tmp_path):
    serial = _pipeline(tmp_path / "serial")
    stats = serial.ensure_all(workers=1)
    assert stats["executed"] == stats["total"] == len(serial.product_keys())

    pooled = _pipeline(tmp_path / "pooled")
    pooled.ensure_all(workers=2)
    assert _signature(serial) == _signature(pooled)


def test_campaign_results_identical_with_and_without_cache_warmup(tmp_path):
    cold = _pipeline()  # memory-only
    cold.ensure_all(workers=1)
    cold_errors = cold.prediction_errors()

    warm = _pipeline(tmp_path / "cache")
    warm.ensure_all(workers=1)
    resumed = _pipeline(tmp_path / "cache")  # fresh instance, warm shards
    assert resumed.pending_keys() == []
    assert resumed.prediction_errors() == cold_errors
    assert _signature(resumed) == _signature(cold)


def test_second_ensure_all_is_all_cache_hits(tmp_path):
    pipeline = _pipeline(tmp_path / "cache")
    first = pipeline.ensure_all(workers=1)
    second = _pipeline(tmp_path / "cache").ensure_all(workers=1)
    assert first["executed"] > 0
    assert second["executed"] == 0
    assert second["cached"] == second["total"]


# ----------------------------------------------------------------------
# Crash-safe sharding & resume
# ----------------------------------------------------------------------
def test_shards_land_per_product_group(tmp_path):
    pipeline = _pipeline(tmp_path / "cache")
    pipeline.ensure_all(workers=1)
    shards = {path.name for path in (tmp_path / "cache").glob("*.json")}
    assert shards == {
        "calibration.json",
        "impact.json",
        "comp_sig.json",
        "baseline.json",
        "degradation.json",
        "pair.json",
        "failure_report.json",  # reserved: the campaign's health record
    }


def test_resume_after_lost_shards_recomputes_only_those(tmp_path):
    pipeline = _pipeline(tmp_path / "cache")
    pipeline.ensure_all(workers=1)
    reference = _signature(pipeline)

    (tmp_path / "cache" / "degradation.json").unlink()
    (tmp_path / "cache" / "pair.json").unlink()

    resumed = _pipeline(tmp_path / "cache")
    pending = resumed.pending_keys()
    assert pending and all(
        key.startswith(("degradation/", "pair/")) for key in pending
    )
    resumed.ensure_all(workers=1)
    assert _signature(resumed) == reference


def test_resume_from_partial_stage_one_write(tmp_path):
    # Simulate a campaign killed mid-run: only the shards that completed
    # their atomic write survive.  The re-run must skip them entirely and
    # still converge to the same products.
    done = _pipeline(tmp_path / "full")
    done.ensure_all(workers=1)
    reference = _signature(done)

    partial = tmp_path / "partial"
    partial.mkdir()
    for survivor in ("calibration.json", "impact.json", "baseline.json"):
        shutil.copy(tmp_path / "full" / survivor, partial / survivor)
    (partial / "junk.tmp").write_text("interrupted mid-write")  # ignored

    resumed = _pipeline(partial)
    pending = set(resumed.pending_keys())
    assert not any(key.startswith(("impact/", "baseline/")) for key in pending)
    assert "calibration" not in pending
    resumed.ensure_all(workers=2)
    assert _signature(resumed) == reference


def test_parallel_resume_matches_serial_resume(tmp_path):
    full = _pipeline(tmp_path / "full")
    full.ensure_all(workers=1)
    for flavor in ("serial", "pooled"):
        target = tmp_path / flavor
        target.mkdir()
        shutil.copy(tmp_path / "full" / "calibration.json", target / "calibration.json")
        shutil.copy(tmp_path / "full" / "baseline.json", target / "baseline.json")
    serial = _pipeline(tmp_path / "serial")
    serial.ensure_all(workers=1)
    pooled = _pipeline(tmp_path / "pooled")
    pooled.ensure_all(workers=2)
    assert _signature(serial) == _signature(pooled) == _signature(full)


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def test_failing_experiment_exceeds_default_budget_and_raises(tmp_path):
    pipeline = _pipeline(
        tmp_path / "cache",
        applications={"boom": _Boom()},
    )
    with pytest.raises(CampaignError, match="failure budget") as excinfo:
        pipeline.ensure_all(workers=1)
    message = str(excinfo.value)
    assert "boom" in message
    records = excinfo.value.failures
    assert records and all(isinstance(r, FailureRecord) for r in records)
    # Every attempt was consumed before the task was declared a hole.
    attempted = [r for r in records if r.category == "exception"]
    assert attempted and all(r.attempts == 2 for r in attempted)
    # Pairs/degradations of the failed baseline were skipped, not attempted.
    assert any(r.category == "dependency" for r in records)
    # Products computed before the failure stayed cached for the next resume.
    assert "calibration" in pipeline._cache
    # The machine-readable report was written even though the run raised.
    report = json.loads((tmp_path / "cache" / "failure_report.json").read_text())
    assert report["failure_count"] == len(records)
    assert {row["key"] for row in report["failures"]} == {r.key for r in records}


def test_campaign_completes_with_holes_within_budget(tmp_path):
    pipeline = _pipeline(
        tmp_path / "cache",
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "boom": _Boom(),
        },
    )
    budget = 32  # boom's impact/baseline + every dependent degradation/pair
    stats = pipeline.ensure_all(workers=1, failure_budget=budget)
    assert stats["failed"] > 0
    assert stats["executed"] + stats["failed"] == stats["total"]
    failed_keys = {row["key"] for row in stats["failure_records"]}
    assert all("boom" in key for key in failed_keys)
    # The healthy application's products all landed despite the holes.
    assert pipeline.app_baseline("fftw") > 0
    assert pipeline.pair_slowdown("fftw", "fftw") is not None

    # A follow-up run with the faulty app replaced backfills only the holes.
    fixed = _pipeline(
        tmp_path / "cache",
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "boom": MCB(iterations=2, track_compute=2e-4),
        },
    )
    assert set(fixed.pending_keys()) == failed_keys
    stats2 = fixed.ensure_all(workers=1)
    assert stats2["failed"] == 0
    assert not fixed.pending_keys()
