"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in [
        "calibrate",
        "impact",
        "fig3",
        "fig6",
        "fig7",
        "table1",
        "fig8",
        "fig9",
        "report",
        "predict",
    ]:
        args = parser.parse_args(
            [command] + (["fftw"] if command == "impact" else [])
            + (["fftw", "mcb"] if command == "predict" else [])
        )
        assert args.command == command


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_profile_choices():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--profile", "huge", "calibrate"])


def test_cli_calibrate_runs(tmp_path, capsys):
    code = main(
        ["--profile", "quick", "--cache", str(tmp_path / "c.json"), "calibrate"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "idle service estimate" in out
    assert "µs" in out


def test_cli_profile_runs(tmp_path, capsys, monkeypatch):
    """Profile command traces a (shrunken) application on the Cab machine."""
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(["--cache", str(tmp_path / "c.json"), "profile", "mcb"])
    assert code == 0
    out = capsys.readouterr().out
    assert "compute" in out and "wait" in out


def test_cli_profile_unknown_app(tmp_path, capsys):
    code = main(["--cache", str(tmp_path / "c.json"), "profile", "nosuch"])
    assert code == 1
    assert "unknown application" in capsys.readouterr().out


def test_cli_calibrate_uses_cache(tmp_path, capsys):
    cache = str(tmp_path / "c.json")
    main(["--profile", "quick", "--cache", cache, "calibrate"])
    first = capsys.readouterr().out
    main(["--profile", "quick", "--cache", cache, "calibrate"])
    second = capsys.readouterr().out
    # Identical output, and the second run must not re-simulate (no
    # "[pipeline]" progress lines).
    assert first.splitlines()[-1] == second.splitlines()[-1]
    assert "[pipeline]" not in second


def test_cli_whatif_runs(tmp_path, capsys, monkeypatch):
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(
        ["--cache", str(tmp_path / "c.json"), "whatif", "mcb", "--factors", "1", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "weaker networks" in out
    assert "3.0x" in out


def test_cli_whatif_unknown_app(tmp_path, capsys):
    code = main(["--cache", str(tmp_path / "c.json"), "whatif", "nosuch"])
    assert code == 1
