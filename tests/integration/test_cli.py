"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in [
        "calibrate",
        "impact",
        "fig3",
        "fig6",
        "fig7",
        "table1",
        "fig8",
        "fig9",
        "report",
        "predict",
    ]:
        args = parser.parse_args(
            [command] + (["fftw"] if command == "impact" else [])
            + (["fftw", "mcb"] if command == "predict" else [])
        )
        assert args.command == command


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_profile_choices():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--profile", "huge", "calibrate"])


def _isolated(tmp_path, *argv):
    """CLI args pinned to a tmp cache, with legacy-cache migration off."""
    return ["--cache", str(tmp_path / "cache"), "--legacy-cache", "", *argv]


def test_options_before_subcommand_are_honored():
    # Regression: subparsers parse into a fresh namespace that overwrites
    # the outer one, so plain defaults on the shared options used to
    # clobber any value given before the subcommand.
    args = build_parser().parse_args(["--cache", "X", "--seed", "9", "calibrate"])
    assert args.cache == "X"
    assert args.seed == 9


def test_cli_calibrate_runs(tmp_path, capsys):
    code = main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    assert code == 0
    out = capsys.readouterr().out
    assert "idle service estimate" in out
    assert "µs" in out


def test_cli_leaves_repo_results_untouched(tmp_path, capsys, monkeypatch):
    # A --cache given before the subcommand must be respected: nothing may
    # land in the default results/ tree.
    monkeypatch.chdir(tmp_path)
    code = main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    assert code == 0
    assert not (tmp_path / "results").exists()
    assert (tmp_path / "cache" / "calibration.json").exists()


def test_cli_profile_runs(tmp_path, capsys, monkeypatch):
    """Profile command traces a (shrunken) application on the Cab machine."""
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(_isolated(tmp_path, "profile", "mcb"))
    assert code == 0
    out = capsys.readouterr().out
    assert "compute" in out and "wait" in out


def test_cli_profile_unknown_app(tmp_path, capsys):
    code = main(_isolated(tmp_path, "profile", "nosuch"))
    assert code == 1
    assert "unknown application" in capsys.readouterr().out


def test_cli_calibrate_uses_cache(tmp_path, capsys):
    main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    first = capsys.readouterr()
    main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    second = capsys.readouterr()
    # Identical estimate; the first run simulates, the second must hit the
    # shard ("[pipeline]" progress lines only appear on real runs — and on
    # stderr, keeping stdout machine-readable).
    assert first.out.splitlines()[-1] == second.out.splitlines()[-1]
    assert "[pipeline]" in first.err
    assert "[pipeline]" not in first.out
    assert "[pipeline]" not in second.err


def test_cli_whatif_runs(tmp_path, capsys, monkeypatch):
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(_isolated(tmp_path, "whatif", "mcb", "--factors", "1", "3"))
    assert code == 0
    out = capsys.readouterr().out
    assert "weaker networks" in out
    assert "3.0x" in out


def test_cli_whatif_unknown_app(tmp_path, capsys):
    code = main(_isolated(tmp_path, "whatif", "nosuch"))
    assert code == 1


@pytest.fixture
def _clean_telemetry():
    from repro import telemetry

    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def test_cli_campaign_json_round_trips(tmp_path, capsys, _clean_telemetry):
    import json

    code = main(
        _isolated(
            tmp_path,
            "--profile", "quick", "--engine", "analytic", "--workers", "1",
            "campaign", "--json",
        )
    )
    assert code == 0
    captured = capsys.readouterr()
    # stdout is pure JSON (progress and summaries live on stderr), so
    # `repro campaign --json | python -m json.tool` round-trips.
    stats = json.loads(captured.out)
    assert stats["failed"] == 0
    assert stats["executed"] > 0
    assert "campaign done" in captured.err
    assert "[pipeline]" in captured.err


def test_cli_telemetry_subcommand_renders_and_exports_trace(
    tmp_path, capsys, _clean_telemetry
):
    import json

    code = main(
        _isolated(
            tmp_path,
            "--profile", "quick", "--engine", "analytic", "--workers", "1",
            "campaign", "--telemetry",
        )
    )
    assert code == 0
    assert (tmp_path / "cache" / "telemetry.json").exists()
    capsys.readouterr()

    trace_path = tmp_path / "trace.json"
    code = main(_isolated(tmp_path, "telemetry", "--trace-out", str(trace_path)))
    assert code == 0
    out = capsys.readouterr().out
    assert "counters:" in out
    assert "pipeline.experiments_completed" in out
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]


def test_cli_telemetry_subcommand_without_report_fails(
    tmp_path, capsys, _clean_telemetry
):
    code = main(_isolated(tmp_path, "telemetry"))
    assert code == 1
    assert "no telemetry report" in capsys.readouterr().err


def test_cli_registry_usage_errors_are_friendly(tmp_path, capsys):
    # Operator mistakes print one-line errors and exit 1 — no tracebacks.
    registry = str(tmp_path / "registry")
    code = main(["registry", "rollback", "--registry", registry])
    assert code == 1
    err = capsys.readouterr().err
    assert "repro registry rollback:" in err and "promoted" in err

    code = main(["registry", "promote", "--registry", registry, "--version", "x"])
    assert code == 1
    assert "unknown version" in capsys.readouterr().err


def test_cli_serve_unpromoted_registry_is_friendly(tmp_path, capsys):
    code = main(
        ["serve", "--registry", str(tmp_path / "empty"), "--port", "0"]
    )
    assert code == 1
    assert "repro serve:" in capsys.readouterr().err
