"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in [
        "calibrate",
        "impact",
        "fig3",
        "fig6",
        "fig7",
        "table1",
        "fig8",
        "fig9",
        "report",
        "predict",
    ]:
        args = parser.parse_args(
            [command] + (["fftw"] if command == "impact" else [])
            + (["fftw", "mcb"] if command == "predict" else [])
        )
        assert args.command == command


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_profile_choices():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--profile", "huge", "calibrate"])


def _isolated(tmp_path, *argv):
    """CLI args pinned to a tmp cache, with legacy-cache migration off."""
    return ["--cache", str(tmp_path / "cache"), "--legacy-cache", "", *argv]


def test_options_before_subcommand_are_honored():
    # Regression: subparsers parse into a fresh namespace that overwrites
    # the outer one, so plain defaults on the shared options used to
    # clobber any value given before the subcommand.
    args = build_parser().parse_args(["--cache", "X", "--seed", "9", "calibrate"])
    assert args.cache == "X"
    assert args.seed == 9


def test_cli_calibrate_runs(tmp_path, capsys):
    code = main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    assert code == 0
    out = capsys.readouterr().out
    assert "idle service estimate" in out
    assert "µs" in out


def test_cli_leaves_repo_results_untouched(tmp_path, capsys, monkeypatch):
    # A --cache given before the subcommand must be respected: nothing may
    # land in the default results/ tree.
    monkeypatch.chdir(tmp_path)
    code = main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    assert code == 0
    assert not (tmp_path / "results").exists()
    assert (tmp_path / "cache" / "calibration.json").exists()


def test_cli_profile_runs(tmp_path, capsys, monkeypatch):
    """Profile command traces a (shrunken) application on the Cab machine."""
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(_isolated(tmp_path, "profile", "mcb"))
    assert code == 0
    out = capsys.readouterr().out
    assert "compute" in out and "wait" in out


def test_cli_profile_unknown_app(tmp_path, capsys):
    code = main(_isolated(tmp_path, "profile", "nosuch"))
    assert code == 1
    assert "unknown application" in capsys.readouterr().out


def test_cli_calibrate_uses_cache(tmp_path, capsys):
    main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    first = capsys.readouterr().out
    main(_isolated(tmp_path, "--profile", "quick", "calibrate"))
    second = capsys.readouterr().out
    # Identical estimate; the first run simulates, the second must hit the
    # shard ("[pipeline]" progress lines only appear on real runs).
    assert first.splitlines()[-1] == second.splitlines()[-1]
    assert "[pipeline]" in first
    assert "[pipeline]" not in second


def test_cli_whatif_runs(tmp_path, capsys, monkeypatch):
    import repro.core.experiments.catalog as catalog
    from repro.workloads import MCB

    monkeypatch.setattr(
        catalog,
        "paper_applications",
        lambda: {"mcb": MCB(iterations=1, track_compute=1e-4)},
    )
    code = main(_isolated(tmp_path, "whatif", "mcb", "--factors", "1", "3"))
    assert code == 0
    out = capsys.readouterr().out
    assert "weaker networks" in out
    assert "3.0x" in out


def test_cli_whatif_unknown_app(tmp_path, capsys):
    code = main(_isolated(tmp_path, "whatif", "nosuch"))
    assert code == 1
