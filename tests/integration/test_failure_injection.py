"""Failure injection: broken workloads must fail loudly, never hang."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.errors import ProcessFailure, SimulationError
from repro.mpi import MPIWorld


CFG = small_test_config()


def _launch(machine, factory):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="faulty")
    return world.launch(factory)


def test_exception_inside_collective_propagates():
    machine = Machine(CFG)

    def workload(ctx):
        if ctx.rank == 3:
            raise RuntimeError("rank 3 corrupted its lattice")
        yield from ctx.comm.allreduce(1, nbytes=8)

    job = _launch(machine, workload)
    with pytest.raises(ProcessFailure, match="faulty.r3"):
        machine.sim.run_until_event(job.done)


def test_deadlocked_receive_is_detected_not_hung():
    """A recv with no matching send drains the event heap: the kernel
    raises 'ran dry' instead of looping forever."""
    machine = Machine(CFG)

    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.recv(1, tag=99)  # nobody sends this
        return None
        yield

    job = _launch(machine, workload)
    with pytest.raises(SimulationError, match="dry"):
        machine.sim.run_until_event(job.done)


def test_mismatched_collective_order_deadlocks_detectably():
    """Half the ranks call barrier, half call allreduce: the world cannot
    complete and the kernel reports it."""
    machine = Machine(CFG)

    def workload(ctx):
        if ctx.rank % 2 == 0:
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.allreduce(1, nbytes=8)

    job = _launch(machine, workload)
    with pytest.raises(SimulationError, match="dry"):
        machine.sim.run_until_event(job.done)


def test_event_budget_stops_runaway_job():
    machine = Machine(CFG)

    def workload(ctx):
        while True:  # infinite ping storm
            yield from ctx.comm.sendrecv(ctx.rank ^ 1, 1024, ctx.rank ^ 1, tag=1)

    job = _launch(machine, workload)
    with pytest.raises(SimulationError, match="budget"):
        machine.sim.run_until_event(job.done, max_events=50_000)


def test_failure_message_names_the_rank():
    machine = Machine(CFG)

    def workload(ctx):
        yield from ctx.compute(1e-6)
        if ctx.rank == 5:
            raise ValueError("boom")

    job = _launch(machine, workload)
    with pytest.raises(ProcessFailure) as excinfo:
        machine.sim.run_until_event(job.done)
    assert "r5" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_machine_survives_for_postmortem_after_failure():
    """After a ProcessFailure the simulator state is still inspectable."""
    machine = Machine(CFG)

    def workload(ctx):
        yield from ctx.comm.send((ctx.rank + 1) % ctx.size, 4096, tag=1)
        if ctx.rank == 0:
            raise RuntimeError("fault")
        yield from ctx.comm.recv((ctx.rank - 1) % ctx.size, tag=1)

    job = _launch(machine, workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)
    # Post-mortem: traffic up to the fault is visible in the counters.
    assert machine.network.messages_sent > 0
    assert machine.sim.now >= 0
