"""End-to-end integration tests at reduced scale.

These exercise the complete stack — kernel → network → MPI → workloads →
experiments → models — the way the benchmark harness does, but on the small
test machine so they run in seconds.
"""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.core.experiments import (
    CompressionExperiment,
    ImpactExperiment,
    PipelineSettings,
    ReproductionPipeline,
    calibrate,
)
from repro.core.measurement import LatencyCollector
from repro.mpi import MPIWorld
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionB, CompressionConfig, ImpactB


CFG = small_test_config()


def _mini_pipeline(seed=0):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=seed,
            impact_duration=0.012,
            signature_duration=0.012,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
        ),
        machine_config=small_test_config(seed=seed),
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "mcb": MCB(iterations=2, track_compute=2e-4),
        },
        catalog=[
            CompressionConfig(1, 1, 2.5e6),
            CompressionConfig(2, 1, 2.5e5),
            CompressionConfig(3, 10, 2.5e4),
        ],
    )


def test_probe_and_app_and_interference_coexist():
    """All three job kinds share one machine without core conflicts.

    Needs 1 (probe) + 1 (interference) + 2 (app, half of 4) cores per
    socket, so this test uses a 4-core-socket machine.
    """
    from dataclasses import replace

    from repro.config import NodeConfig

    machine = Machine(
        replace(CFG, node=NodeConfig(sockets=2, cores_per_socket=4))
    )
    collector = LatencyCollector()
    probe_world = MPIWorld.create(machine, PerSocketPlacement(1), name="impactb")
    probe_world.launch(ImpactB(collector, interval=0.1 * MS))

    comp = CompressionB(CompressionConfig(1, 1, 2.5e6))
    comp_world = MPIWorld.create(machine, PerSocketPlacement(1), name="comp")
    comp_world.launch(comp)

    app = MCB(iterations=2, track_compute=1e-4)
    app_world = MPIWorld.create(machine, app.preferred_placement(CFG), name="mcb")
    job = app_world.launch(app)
    machine.sim.run_until_event(job.done)

    assert job.finished
    assert collector.count > 0


def test_full_methodology_produces_bounded_errors():
    """The complete paper methodology yields finite predictions for every
    pairing and error magnitudes of the same order as the slowdowns."""
    pipeline = _mini_pipeline()
    errors = pipeline.prediction_errors()
    measured = pipeline.measured_pairs()
    scale = max(abs(v) for v in measured.values()) + 5.0
    for model, table in errors.items():
        for pair, error in table.items():
            assert 0 <= error < 10 * scale, f"{model} {pair}: error {error}"


def test_methodology_is_deterministic_end_to_end():
    first = _mini_pipeline(seed=3).prediction_errors()
    second = _mini_pipeline(seed=3).prediction_errors()
    assert first == second


def test_different_seeds_give_different_but_sane_results():
    first = _mini_pipeline(seed=1).pair_slowdown("fftw", "fftw")
    second = _mini_pipeline(seed=2).pair_slowdown("fftw", "fftw")
    # Different RNG draws -> different exact numbers...
    assert first != second
    # ...but the same physics: both show real interference.
    assert first > 0 and second > 0


def test_compression_signature_reflects_in_degradation():
    """A config with a higher probe signature also causes more degradation
    for a communication-bound app (the correlation the models exploit)."""
    calibration = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    experiment = CompressionExperiment(CFG, calibration, probe_interval=0.1 * MS)
    app = FFTW(iterations=1, pack_compute=5e-5)
    baseline = experiment.baseline(app)

    light_cfg = CompressionConfig(1, 1, 2.5e6)
    heavy_cfg = CompressionConfig(3, 10, 2.5e4)
    light = experiment.signature_of(light_cfg, duration=0.012)
    heavy = experiment.signature_of(heavy_cfg, duration=0.012)
    assert heavy.utilization > light.utilization

    light_deg = experiment.degradation(app, light_cfg, baseline)
    heavy_deg = experiment.degradation(app, heavy_cfg, baseline)
    assert heavy_deg > light_deg
