"""Tests for the cached reproduction pipeline."""

import json

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.errors import ExperimentError
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig


def _pipeline(tmp_path=None, seed=0):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=seed,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
        ),
        machine_config=small_test_config(seed=seed),
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "mcb": MCB(iterations=2, track_compute=2e-4),
        },
        catalog=[
            CompressionConfig(1, 1, 2.5e6),
            CompressionConfig(2, 1, 2.5e5),
            CompressionConfig(3, 10, 2.5e4),
        ],
        cache_path=(tmp_path / "cache") if tmp_path else None,
    )


def test_settings_validate_profile():
    with pytest.raises(ExperimentError):
        PipelineSettings(profile="gigantic")


def test_app_names_order():
    pipeline = _pipeline()
    assert pipeline.app_names == ["fftw", "mcb"]


def test_unknown_app_raises():
    pipeline = _pipeline()
    with pytest.raises(ExperimentError, match="unknown application"):
        pipeline.app_baseline("nope")


def test_products_are_memoized_in_memory():
    pipeline = _pipeline()
    first = pipeline.app_baseline("mcb")
    second = pipeline.app_baseline("mcb")
    assert first == second
    assert pipeline._cache["baseline/mcb"] == first


def test_cache_persists_to_disk(tmp_path):
    pipeline = _pipeline(tmp_path)
    baseline = pipeline.app_baseline("mcb")
    calibration = pipeline.calibration()

    # Each product group lands in its own checksummed shard file.
    document = json.loads((tmp_path / "cache" / "baseline.json").read_text())
    assert document["__shard_format__"] == 2
    assert len(document["sha256"]) == 64
    assert document["products"]["baseline/mcb"] == baseline
    assert (tmp_path / "cache" / "calibration.json").exists()

    # A fresh pipeline reloads without re-simulating.
    reloaded = _pipeline(tmp_path)
    assert reloaded.app_baseline("mcb") == baseline
    assert reloaded.calibration().mean == calibration.mean


def test_legacy_monolithic_cache_migrates(tmp_path):
    pipeline = _pipeline(tmp_path)
    baseline = pipeline.app_baseline("mcb")

    # Re-pack the shards into a pre-sharding monolithic cache file.
    legacy = tmp_path / "paper_cache.json"
    legacy.write_text(json.dumps(pipeline._cache.snapshot()))

    migrated = ReproductionPipeline(
        settings=pipeline.settings,
        machine_config=pipeline.machine_config,
        applications=pipeline.applications,
        catalog=pipeline.catalog,
        cache_path=tmp_path / "fresh",
        legacy_cache=legacy,
    )
    assert migrated.app_baseline("mcb") == baseline
    assert (tmp_path / "fresh" / "baseline.json").exists()
    assert legacy.exists()  # migration never destroys the legacy file


def test_cache_path_pointing_at_legacy_file_migrates_beside_it(tmp_path):
    pipeline = _pipeline(tmp_path)
    baseline = pipeline.app_baseline("mcb")
    legacy = tmp_path / "old_cache.json"
    legacy.write_text(json.dumps(pipeline._cache.snapshot()))

    upgraded = ReproductionPipeline(
        settings=pipeline.settings,
        machine_config=pipeline.machine_config,
        applications=pipeline.applications,
        catalog=pipeline.catalog,
        cache_path=legacy,  # old-style invocation
    )
    assert upgraded.cache_path == tmp_path / "old_cache"
    assert upgraded.app_baseline("mcb") == baseline
    assert (tmp_path / "old_cache" / "baseline.json").exists()


def test_degradation_table_covers_catalog():
    pipeline = _pipeline()
    table = pipeline.degradation_table()
    assert set(table) == {"fftw", "mcb"}
    for per_config in table.values():
        assert len(per_config) == 3


def test_measured_pairs_covers_all_ordered_pairs():
    pipeline = _pipeline()
    pairs = pipeline.measured_pairs()
    assert set(pairs) == {
        ("fftw", "fftw"),
        ("fftw", "mcb"),
        ("mcb", "fftw"),
        ("mcb", "mcb"),
    }


def test_prediction_errors_shape():
    pipeline = _pipeline()
    errors = pipeline.prediction_errors()
    assert set(errors) == {"AverageLT", "AverageStDevLT", "PDFLT", "Queue"}
    for table in errors.values():
        assert len(table) == 4
        assert all(value >= 0 for value in table.values())


def test_pipeline_deterministic_across_instances():
    first = _pipeline(seed=7).pair_slowdown("fftw", "mcb")
    second = _pipeline(seed=7).pair_slowdown("fftw", "mcb")
    assert first == second


def test_engine_prediction_consistency():
    """The queue model predicts more slowdown next to the co-runner whose
    probe signature shows higher switch utilization — provided the app's
    own degradation curve is monotone over the catalog."""
    pipeline = _pipeline()
    engine = pipeline.engine()
    value = engine.predict("fftw", "mcb", "Queue")
    assert isinstance(value, float)
    utils = {name: engine.signature_of(name).utilization for name in ("fftw", "mcb")}
    heavy = max(utils, key=utils.get)
    light = min(utils, key=utils.get)
    curve = sorted(
        (obs.utilization, pipeline.degradation_table()["fftw"][obs.label])
        for obs in pipeline.compression_signatures()
    )
    degradations = [point[1] for point in curve]
    if degradations == sorted(degradations):  # only meaningful when monotone
        assert (
            engine.predict("fftw", heavy, "Queue")
            >= engine.predict("fftw", light, "Queue") - 1e-9
        )
