"""Integrity tests for the checksummed, quarantining ShardedCache."""

import json

import pytest

from repro.core.experiments.cache import ShardedCache, group_of
from repro.faults import FaultPlan, set_fault_plan


@pytest.fixture(autouse=True)
def _no_fault_plan():
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _populate(directory):
    cache = ShardedCache(directory)
    cache.put("impact/fftw", {"mean": 1.5})
    cache.put("impact/mcb", {"mean": 2.5})
    cache.put("baseline/fftw", 0.25)
    return cache


# ----------------------------------------------------------------------
# Checksummed format
# ----------------------------------------------------------------------
def test_shards_carry_verifiable_checksums(tmp_path):
    _populate(tmp_path)
    document = json.loads((tmp_path / "impact.json").read_text())
    assert document["__shard_format__"] == 2
    assert set(document["products"]) == {"impact/fftw", "impact/mcb"}
    import hashlib

    expected = hashlib.sha256(
        json.dumps(document["products"], sort_keys=True).encode()
    ).hexdigest()
    assert document["sha256"] == expected


def test_roundtrip_through_disk(tmp_path):
    original = _populate(tmp_path)
    reloaded = ShardedCache(tmp_path)
    assert reloaded.snapshot() == original.snapshot()
    assert reloaded.quarantined == []


def test_legacy_bare_mapping_shard_still_loads(tmp_path):
    (tmp_path / "impact.json").write_text(json.dumps({"impact/fftw": 7}))
    cache = ShardedCache(tmp_path)
    assert cache["impact/fftw"] == 7
    assert cache.quarantined == []
    # The next write of that group upgrades it to the checksummed format.
    cache.put("impact/mcb", 8)
    document = json.loads((tmp_path / "impact.json").read_text())
    assert document["__shard_format__"] == 2
    assert document["products"]["impact/fftw"] == 7


# ----------------------------------------------------------------------
# Quarantine instead of raising
# ----------------------------------------------------------------------
def test_truncated_shard_is_quarantined_not_raised(tmp_path):
    _populate(tmp_path)
    shard = tmp_path / "impact.json"
    shard.write_text(shard.read_text()[:20])  # torn write
    cache = ShardedCache(tmp_path)  # must not raise JSONDecodeError
    assert "impact/fftw" not in cache
    assert "baseline/fftw" in cache  # intact shards untouched
    assert [p.name for p in cache.quarantined] == ["impact.json.corrupt"]
    assert not shard.exists()  # the bad file was renamed aside, not deleted
    assert (tmp_path / "impact.json.corrupt").exists()


def test_checksum_mismatch_is_quarantined(tmp_path):
    _populate(tmp_path)
    shard = tmp_path / "impact.json"
    document = json.loads(shard.read_text())
    document["products"]["impact/fftw"] = {"mean": 999.0}  # bit-rot
    shard.write_text(json.dumps(document))
    cache = ShardedCache(tmp_path)
    assert "impact/fftw" not in cache
    assert len(cache.quarantined) == 1


def test_non_mapping_shard_is_quarantined(tmp_path):
    (tmp_path / "impact.json").write_text("[1, 2, 3]")
    cache = ShardedCache(tmp_path)
    assert len(cache) == 0
    assert len(cache.quarantined) == 1


def test_quarantine_names_never_collide(tmp_path):
    _populate(tmp_path)
    (tmp_path / "impact.json.corrupt").write_text("older corpse")
    (tmp_path / "impact.json").write_text("{broken")
    cache = ShardedCache(tmp_path)
    assert [p.name for p in cache.quarantined] == ["impact.json.corrupt1"]
    assert (tmp_path / "impact.json.corrupt").read_text() == "older corpse"


def test_quarantined_keys_recompute_and_rewrite_cleanly(tmp_path):
    _populate(tmp_path)
    (tmp_path / "impact.json").write_text("{broken")
    cache = ShardedCache(tmp_path)
    cache.put("impact/fftw", {"mean": 1.5})  # recomputed product
    healed = ShardedCache(tmp_path)
    assert healed["impact/fftw"] == {"mean": 1.5}
    assert healed.quarantined == []


def test_reserved_failure_report_is_not_a_shard(tmp_path):
    _populate(tmp_path)
    (tmp_path / "failure_report.json").write_text(json.dumps({"failures": []}))
    cache = ShardedCache(tmp_path)
    assert "failures" not in cache
    assert cache.quarantined == []
    assert (tmp_path / "failure_report.json").exists()


# ----------------------------------------------------------------------
# Stale temp-file sweep
# ----------------------------------------------------------------------
def test_stale_tmp_files_are_swept_on_load(tmp_path):
    _populate(tmp_path)
    orphan = tmp_path / "tmpabc123.tmp"
    orphan.write_text("crashed between mkstemp and os.replace")
    cache = ShardedCache(tmp_path)
    assert not orphan.exists()
    assert "impact/fftw" in cache  # sweep touches only *.tmp


def test_sweep_only_runs_with_a_directory():
    ShardedCache(None)  # memory-only: no directory to sweep, no crash


# ----------------------------------------------------------------------
# Injected corruption (the fault-plan hook)
# ----------------------------------------------------------------------
def test_fault_plan_corrupts_exactly_one_write(tmp_path):
    set_fault_plan(FaultPlan.from_dict({"corrupt_shards": ["impact"]}))
    cache = ShardedCache(tmp_path)
    cache.put("impact/fftw", {"mean": 1.5})  # this write gets garbled
    cache.put("baseline/fftw", 0.25)  # other groups stay clean
    cache.put("impact/mcb", {"mean": 2.5})  # consumed: clean again, heals shard
    set_fault_plan(None)

    reloaded = ShardedCache(tmp_path)
    # The healing rewrite contains the full group, so nothing is lost here;
    # what matters is the corruption really hit the disk once.
    assert reloaded.quarantined == []
    assert reloaded["impact/mcb"] == {"mean": 2.5}


def test_fault_plan_corruption_surfaces_as_quarantine(tmp_path):
    set_fault_plan(FaultPlan.from_dict({"corrupt_shards": ["impact"]}))
    cache = ShardedCache(tmp_path)
    cache.put("impact/fftw", {"mean": 1.5})
    cache.put("baseline/fftw", 0.25)
    set_fault_plan(None)

    reloaded = ShardedCache(tmp_path)
    assert "impact/fftw" not in reloaded  # quarantined → pending again
    assert "baseline/fftw" in reloaded
    assert len(reloaded.quarantined) == 1


def test_group_of_sanitizes():
    assert group_of("degradation/fftw/P1") == "degradation"
    assert group_of("weird key/x") == "weird_key"
