"""Tests for the ContentionAnalyzer facade."""

import pytest

from repro.cluster import small_test_config
from repro.core.analyzer import ContentionAnalyzer
from repro.errors import ExperimentError
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig


def _analyzer(tmp_path=None):
    analyzer = ContentionAnalyzer.quick(
        small_test_config(), cache_path=(tmp_path / "c.json") if tmp_path else None
    )
    # Shrink further for unit-test speed.
    analyzer.pipeline.catalog = [
        CompressionConfig(1, 1, 2.5e6),
        CompressionConfig(3, 10, 2.5e4),
    ]
    from dataclasses import replace

    analyzer.pipeline.settings = replace(
        analyzer.pipeline.settings, impact_duration=0.01, signature_duration=0.01
    )
    analyzer.register(FFTW(iterations=1, pack_compute=5e-5))
    analyzer.register(MCB(iterations=2, track_compute=2e-4))
    return analyzer


def test_register_and_list():
    analyzer = _analyzer()
    assert analyzer.applications == ["fftw", "mcb"]


def test_register_conflict_rejected():
    analyzer = _analyzer()
    with pytest.raises(ExperimentError, match="already registered"):
        analyzer.register(FFTW(iterations=2))


def test_reregistering_same_object_is_fine():
    analyzer = _analyzer()
    app = analyzer.pipeline.applications["fftw"]
    analyzer.register(app)  # no error


def test_fingerprint_returns_signature():
    analyzer = _analyzer()
    signature = analyzer.fingerprint("fftw")
    assert signature.count > 10
    assert signature.mean > 0


def test_degradation_curve_sorted_by_utilization():
    analyzer = _analyzer()
    curve = analyzer.degradation_curve("fftw")
    assert len(curve) == 2
    xs = [point[0] for point in curve]
    assert xs == sorted(xs)


def test_predict_returns_all_models():
    analyzer = _analyzer()
    predictions = analyzer.predict("fftw", "mcb")
    assert set(predictions) == {"AverageLT", "AverageStDevLT", "PDFLT", "Queue"}


def test_measure_ground_truth():
    analyzer = _analyzer()
    slowdown = analyzer.measure("fftw", "mcb")
    assert isinstance(slowdown, float)


def test_interference_matrix_shape():
    analyzer = _analyzer()
    matrix = analyzer.interference_matrix()
    assert len(matrix) == 4
    assert all(len(cell) == 4 for cell in matrix.values())


def test_registering_a_clashing_app_after_fitting_raises():
    analyzer = _analyzer()
    analyzer.predict("fftw", "mcb")  # fits the engine
    with pytest.raises(ExperimentError, match="already registered"):
        analyzer.register(MCB(iterations=1, track_compute=1e-4, census_every=2))
