"""Tests for the shared experiment runner."""

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import JobSpec, execute
from repro.errors import ExperimentError, SimulationError
from repro.workloads import MCB, CompressionB, CompressionConfig


def _app():
    return MCB(iterations=2, track_compute=1e-4)


def test_measured_job_elapsed_recorded():
    result = execute(small_test_config(), [JobSpec(_app(), "mcb")])
    assert result.elapsed_of("mcb") > 0
    assert result.sim_time >= result.elapsed["mcb"]
    assert result.events > 0


def test_daemon_only_requires_duration():
    comp = CompressionB(CompressionConfig(1, 1, 2.5e5))
    with pytest.raises(ExperimentError, match="duration"):
        execute(small_test_config(), [JobSpec(comp, "comp", daemon=True)])


def test_daemon_only_with_duration():
    comp = CompressionB(CompressionConfig(1, 1, 2.5e5))
    result = execute(
        small_test_config(), [JobSpec(comp, "comp", daemon=True)], duration=0.005
    )
    assert result.sim_time == pytest.approx(0.005)
    assert result.elapsed == {}
    assert result.true_utilization > 0


def test_daemon_plus_measured_runs_until_measured_done():
    comp = CompressionB(CompressionConfig(1, 1, 2.5e5))
    result = execute(
        small_test_config(),
        [JobSpec(comp, "comp", daemon=True), JobSpec(_app(), "mcb")],
    )
    assert result.elapsed_of("mcb") > 0


def test_empty_specs_rejected():
    with pytest.raises(ExperimentError):
        execute(small_test_config(), [])


def test_unknown_elapsed_name_raises():
    result = execute(small_test_config(), [JobSpec(_app(), "mcb")])
    with pytest.raises(ExperimentError):
        result.elapsed_of("nope")


def test_max_events_budget_enforced():
    with pytest.raises(SimulationError, match="budget"):
        execute(small_test_config(), [JobSpec(_app(), "mcb")], max_events=10)


def test_interference_slows_measured_job():
    alone = execute(small_test_config(), [JobSpec(_app(), "mcb")])
    heavy = CompressionB(CompressionConfig(3, 10, 2.5e4))
    loaded = execute(
        small_test_config(),
        [JobSpec(heavy, "comp", daemon=True), JobSpec(_app(), "mcb")],
    )
    assert loaded.elapsed_of("mcb") >= alone.elapsed_of("mcb")


def test_runs_are_deterministic():
    first = execute(small_test_config(seed=5), [JobSpec(_app(), "mcb")])
    second = execute(small_test_config(seed=5), [JobSpec(_app(), "mcb")])
    assert first.elapsed_of("mcb") == second.elapsed_of("mcb")
    assert first.events == second.events
