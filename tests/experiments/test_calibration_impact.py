"""Tests for calibration and impact experiments."""

import math

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import ImpactExperiment, calibrate
from repro.errors import ExperimentError
from repro.units import MS, US
from repro.workloads import MCB, CompressionB, CompressionConfig


CFG = small_test_config()


def test_calibration_is_idle_scale():
    estimate = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    assert 0.3 * US < estimate.mean < 4 * US
    assert estimate.variance >= 0
    assert estimate.minimum <= estimate.mean
    assert estimate.sample_count >= 50


def test_calibration_too_short_raises():
    with pytest.raises(ExperimentError, match="samples"):
        calibrate(CFG, duration=1e-4, probe_interval=1 * MS)


def test_calibration_deterministic():
    first = calibrate(small_test_config(seed=2), duration=0.02, probe_interval=0.1 * MS)
    second = calibrate(small_test_config(seed=2), duration=0.02, probe_interval=0.1 * MS)
    assert first.mean == second.mean
    assert first.variance == second.variance


def test_idle_impact_measures_low_utilization():
    calibration = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    experiment = ImpactExperiment(CFG, calibration, probe_interval=0.1 * MS)
    result = experiment.measure(None, duration=0.02)
    assert result.signature.utilization < 0.15
    assert result.true_utilization < 0.05


def test_loaded_impact_measures_higher_utilization():
    calibration = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    experiment = ImpactExperiment(CFG, calibration, probe_interval=0.1 * MS)
    idle = experiment.measure(None, duration=0.02)
    heavy = experiment.measure(
        CompressionB(CompressionConfig(3, 10, 2.5e4)), duration=0.02
    )
    assert heavy.signature.mean > idle.signature.mean
    assert heavy.signature.utilization > idle.signature.utilization
    assert heavy.true_utilization > idle.true_utilization


def test_impact_without_calibration_has_nan_utilization():
    experiment = ImpactExperiment(CFG, calibration=None, probe_interval=0.1 * MS)
    result = experiment.measure(None, duration=0.02)
    assert math.isnan(result.signature.utilization)


def test_impact_result_serialization_roundtrip():
    from repro.core.experiments import ImpactResult

    experiment = ImpactExperiment(CFG, probe_interval=0.1 * MS)
    result = experiment.measure(None, duration=0.02)
    restored = ImpactResult.from_dict(result.to_dict())
    assert restored.signature.mean == result.signature.mean
    assert restored.true_utilization == result.true_utilization


def test_impact_too_few_samples_raises():
    experiment = ImpactExperiment(CFG, probe_interval=10 * MS)
    with pytest.raises(ExperimentError, match="samples"):
        experiment.measure(None, duration=0.005)


def test_warmup_fraction_validation():
    with pytest.raises(ExperimentError):
        ImpactExperiment(CFG, warmup_fraction=1.0)


def test_impact_of_finite_app_is_looped():
    """Even a very short app keeps loading the switch for the whole window."""
    experiment = ImpactExperiment(CFG, probe_interval=0.1 * MS)
    app = MCB(iterations=1, track_compute=5e-5, migration_bytes=16 * 1024)
    result = experiment.measure(app, duration=0.02)
    # The app alone finishes in ~0.2ms; looping keeps true utilization > 0.
    assert result.true_utilization > 0.0
