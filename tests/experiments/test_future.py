"""Tests for the future-system scaling study."""

import pytest

from repro.cluster import small_test_config
from repro.config import NetworkConfig
from repro.core.experiments import network_scaling_study, scaled_network
from repro.errors import ExperimentError
from repro.network import (
    DeterministicService,
    ExponentialService,
    LognormalService,
    MixtureService,
)
from repro.workloads import FFTW, MCB


def test_scaled_network_halves_bandwidth_and_doubles_latency():
    base = NetworkConfig()
    slow = scaled_network(base, 2.0)
    assert slow.link_bandwidth == pytest.approx(base.link_bandwidth / 2)
    assert slow.link_latency == pytest.approx(base.link_latency * 2)
    assert slow.nic_overhead == pytest.approx(base.nic_overhead * 2)
    assert slow.port_overhead.mean == pytest.approx(base.port_overhead.mean * 2)


def test_scaled_network_factor_one_is_identity_timing():
    base = NetworkConfig()
    same = scaled_network(base, 1.0)
    assert same.link_bandwidth == base.link_bandwidth
    assert same.port_overhead.mean == pytest.approx(base.port_overhead.mean)


def test_scaled_network_invalid_factor():
    with pytest.raises(ExperimentError):
        scaled_network(NetworkConfig(), 0.0)


def test_scale_model_preserves_shape():
    from repro.core.experiments.future import _scale_model

    for model in (
        DeterministicService(1e-6),
        ExponentialService(1e-6),
        LognormalService(1e-6, 0.4),
        MixtureService([DeterministicService(1e-6), DeterministicService(3e-6)], [0.5, 0.5]),
    ):
        scaled = _scale_model(model, 3.0)
        assert scaled.mean == pytest.approx(model.mean * 3.0)
        assert scaled.scv == pytest.approx(model.scv, abs=1e-9)


def test_comm_bound_app_degrades_on_weaker_network():
    points = network_scaling_study(
        small_test_config(),
        FFTW(iterations=1, pack_compute=5e-5),
        factors=(1.0, 4.0),
    )
    assert points[0].slowdown_percent == 0.0
    assert points[1].slowdown_percent > 50.0
    assert points[1].elapsed > points[0].elapsed


def test_compute_bound_app_barely_notices():
    points = network_scaling_study(
        small_test_config(),
        MCB(iterations=2, track_compute=3e-4, migration_bytes=1024),
        factors=(1.0, 4.0),
    )
    assert abs(points[1].slowdown_percent) < 20.0


def test_slowdown_monotone_in_factor_for_comm_app():
    points = network_scaling_study(
        small_test_config(),
        FFTW(iterations=1, pack_compute=5e-5),
        factors=(1.0, 2.0, 4.0),
    )
    slowdowns = [p.slowdown_percent for p in points]
    assert slowdowns == sorted(slowdowns)


def test_empty_factors_rejected():
    with pytest.raises(ExperimentError):
        network_scaling_study(small_test_config(), MCB(iterations=1), factors=())


def test_equivalent_utilization_rises_with_factor():
    """The relativity principle: weaker networks impersonate higher
    utilizations of the original network."""
    from repro.core.experiments import calibrate, equivalent_utilization
    from repro.units import MS

    config = small_test_config()
    calibration = calibrate(config, duration=0.02, probe_interval=0.1 * MS)
    u2 = equivalent_utilization(config, 2.0, calibration, probe_interval=0.1 * MS, duration=0.02)
    u6 = equivalent_utilization(config, 6.0, calibration, probe_interval=0.1 * MS, duration=0.02)
    assert 0.0 < u2 < u6 < 1.0


def test_equivalent_utilization_of_factor_one_is_small():
    from repro.core.experiments import calibrate, equivalent_utilization
    from repro.units import MS

    config = small_test_config()
    calibration = calibrate(config, duration=0.02, probe_interval=0.1 * MS)
    u1 = equivalent_utilization(config, 1.0, calibration, probe_interval=0.1 * MS, duration=0.02)
    assert u1 < 0.2
