"""Campaign-progress ETA must use the current stage's own rate.

Regression for the ISSUE 10 satellite bug: the ETA was computed from the
cumulative campaign rate, so after a fast measurement stage the slow
pairwise stage inherited measurement-speed promises.  These tests drive
:class:`_CampaignProgress` with a fake clock and check that a stage
boundary resets the estimator.
"""

import pytest

import repro.core.experiments.pipeline as pipeline_mod
from repro.core.experiments.pipeline import _CampaignProgress


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(pipeline_mod.time, "time", fake)
    return fake


def _progress(total):
    return _CampaignProgress(total, verbose=False)


def test_no_estimate_before_any_completion(clock):
    progress = _progress(10)
    progress.begin_stage("measurements", 10)
    clock.tick(5.0)
    assert progress.eta() is None
    assert progress.progress_document()["eta"] is None


def test_eta_uses_stage_local_rate_after_stage_boundary(clock):
    # Fast stage: 8 products at 1 s each.
    progress = _progress(10)
    progress.begin_stage("measurements", 8)
    for _ in range(8):
        clock.tick(1.0)
        progress.done += 1
    progress.end_stage(failed=0, retried=0)

    # Slow stage: first pairwise product takes 30 s.  The cumulative rate
    # (~4.75 s/product) would promise ~4.75 s for the last product; the
    # stage-local rate honestly says 30 s.
    progress.begin_stage("pairwise", 2)
    clock.tick(30.0)
    progress.done += 1
    assert progress.eta() == pytest.approx(30.0)


def test_eta_falls_back_to_global_rate_before_first_stage_completion(clock):
    # Mid-stage with nothing completed yet in *this* stage, but history from
    # the previous one: the global rate is the only estimator available.
    progress = _progress(10)
    progress.begin_stage("measurements", 8)
    for _ in range(8):
        clock.tick(1.0)
        progress.done += 1
    progress.end_stage(failed=0, retried=0)

    progress.begin_stage("pairwise", 2)
    clock.tick(4.0)
    # 8 done in 12 s globally → 1.5 s/product × 2 remaining.
    assert progress.eta() == pytest.approx(3.0)


def test_eta_tracks_the_slow_stage_as_it_progresses(clock):
    progress = _progress(4)
    progress.begin_stage("measurements", 2)
    for _ in range(2):
        clock.tick(0.5)
        progress.done += 1
    progress.end_stage(failed=0, retried=0)

    progress.begin_stage("pairwise", 2)
    clock.tick(10.0)
    progress.done += 1
    clock.tick(10.0)
    progress.done += 1
    # Stage rate 10 s/product, nothing remaining.
    assert progress.eta() == pytest.approx(0.0)
