"""Tests for compression and co-run experiments."""

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import (
    CompressionExperiment,
    CompressionObservation,
    CoRunExperiment,
    calibrate,
    percent_slowdown,
)
from repro.errors import ExperimentError
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig


CFG = small_test_config()


def _comm_app():
    return FFTW(iterations=1, pack_compute=5e-5, bytes_per_pair=4096)


def _quiet_app():
    return MCB(iterations=2, track_compute=2e-4, migration_bytes=1024)


def test_percent_slowdown():
    assert percent_slowdown(1.5, 1.0) == pytest.approx(50.0)
    assert percent_slowdown(1.0, 1.0) == 0.0


def test_percent_slowdown_invalid_baseline():
    with pytest.raises(ExperimentError):
        percent_slowdown(1.0, 0.0)


def test_signature_of_config():
    calibration = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    experiment = CompressionExperiment(CFG, calibration, probe_interval=0.1 * MS)
    obs = experiment.signature_of(CompressionConfig(2, 1, 2.5e5), duration=0.02)
    assert 0.0 <= obs.utilization < 1.0
    assert obs.label == "P2xM1xB2.5e+05"


def test_observation_serialization_roundtrip():
    calibration = calibrate(CFG, duration=0.02, probe_interval=0.1 * MS)
    experiment = CompressionExperiment(CFG, calibration, probe_interval=0.1 * MS)
    obs = experiment.signature_of(CompressionConfig(2, 1, 2.5e5), duration=0.02)
    restored = CompressionObservation.from_dict(obs.to_dict())
    assert restored.label == obs.label
    assert restored.utilization == obs.utilization
    assert restored.config == obs.config


def test_degradation_of_comm_bound_app_is_positive():
    experiment = CompressionExperiment(CFG)
    app = _comm_app()
    baseline = experiment.baseline(app)
    degradation = experiment.degradation(app, CompressionConfig(3, 10, 2.5e4), baseline)
    assert degradation > 5.0


def test_degradation_monotone_in_interference():
    experiment = CompressionExperiment(CFG)
    app = _comm_app()
    baseline = experiment.baseline(app)
    light = experiment.degradation(app, CompressionConfig(1, 1, 2.5e7), baseline)
    heavy = experiment.degradation(app, CompressionConfig(3, 10, 2.5e4), baseline)
    assert heavy > light


def test_quiet_app_barely_degrades():
    experiment = CompressionExperiment(CFG)
    app = _quiet_app()
    degradation = experiment.degradation(app, CompressionConfig(3, 1, 2.5e5))
    assert degradation < 15.0


# ----------------------------------------------------------------------
# Co-run
# ----------------------------------------------------------------------
def test_corun_baseline_cached():
    experiment = CoRunExperiment(CFG)
    app = _quiet_app()
    first = experiment.baseline(app)
    second = experiment.baseline(app)
    assert first == second


def test_corun_slowdown_of_comm_app_next_to_itself():
    experiment = CoRunExperiment(CFG)
    slowdown = experiment.slowdown(_comm_app(), _comm_app())
    # Two all-to-all jobs on one switch must interfere measurably.
    assert slowdown > 1.0


def test_corun_quiet_pair_barely_interferes():
    experiment = CoRunExperiment(CFG)
    slowdown = experiment.slowdown(_quiet_app(), _quiet_app())
    assert abs(slowdown) < 10.0


def test_corun_asymmetry_comm_vs_quiet():
    """The quiet app hurts the comm app less than another comm app would."""
    experiment = CoRunExperiment(CFG)
    vs_quiet = experiment.slowdown(_comm_app(), _quiet_app())
    vs_comm = experiment.slowdown(_comm_app(), _comm_app())
    assert vs_comm > vs_quiet
