"""End-to-end fault-injection acceptance test.

One analytic campaign (all 6 apps → 36 co-run pairs) runs with three faults
injected through ``REPRO_FAULTS`` — a permanently poisoned pair experiment,
an impact experiment that hangs past the task timeout on its first attempt,
and a corrupted calibration shard — and must still complete end to end,
reporting exactly the injected damage.  A faults-disabled rerun then
backfills the holes from the intact shards and converges bit-for-bit to a
clean reference campaign.
"""

import json

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.faults import ENV_VAR, set_fault_plan
from repro.parallel import RetryPolicy
from repro.units import MS

POISONED_PAIR = "analytic:pair/fftw/mcb"
HUNG_IMPACT = "analytic:impact/mcb"
CORRUPTED_SHARD = "analytic_calibration"  # written exactly once per campaign

FAULT_PLAN = {
    "fail": {POISONED_PAIR: "*"},  # every attempt: a permanent hole
    "hang": {HUNG_IMPACT: [1]},  # first attempt only: killed, then retried
    "hang_seconds": 60.0,
    "corrupt_shards": [CORRUPTED_SHARD],
}


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _pipeline(cache_path, **kwargs):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=0,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
            engine="analytic",
        ),
        machine_config=small_test_config(seed=0),
        cache_path=cache_path,
        **kwargs,
    )


def _signature(pipeline):
    return json.dumps(pipeline._cache.snapshot(), sort_keys=True)


def test_faulted_campaign_survives_and_heals(tmp_path, monkeypatch):
    # Clean reference: what the campaign must eventually converge to.
    reference = _pipeline(tmp_path / "clean")
    assert reference.ensure_all(workers=2)["failed"] == 0
    assert len([k for k in reference.product_keys() if ":pair/" in k]) == 36

    # --- Campaign 1: all three faults active (workers inherit the env) ---
    monkeypatch.setenv(ENV_VAR, json.dumps(FAULT_PLAN))
    faulted = _pipeline(
        tmp_path / "faulted",
        retry=RetryPolicy(max_attempts=2, timeout=2.0, backoff_base=0.0),
        failure_budget=1,
    )
    stats = faulted.ensure_all(workers=2)

    # It finished end to end, with exactly the poisoned pair as a hole.
    assert stats["failed"] == 1
    assert [row["key"] for row in stats["failure_records"]] == [POISONED_PAIR]
    assert stats["failure_records"][0]["category"] == "exception"
    assert stats["failure_records"][0]["attempts"] == 2
    assert stats["executed"] == stats["total"] - 1

    # The hang was killed at the timeout and healed by its retry.
    report = json.loads(
        (tmp_path / "faulted" / "failure_report.json").read_text()
    )
    assert report["failure_count"] == 1
    assert report["failures"][0]["key"] == POISONED_PAIR
    timeouts = [
        row for row in report["transients"] if row["category"] == "timeout"
    ]
    assert [row["key"] for row in timeouts] == [HUNG_IMPACT]
    assert HUNG_IMPACT not in {row["key"] for row in report["failures"]}

    # The corruption really reached the disk: the calibration shard no
    # longer parses as a healthy checksummed document.
    shard = tmp_path / "faulted" / f"{CORRUPTED_SHARD}.json"
    try:
        healthy = json.loads(shard.read_text()).get("__shard_format__") == 2
    except json.JSONDecodeError:
        healthy = False
    assert not healthy

    # --- Campaign 2: faults disabled; backfill from the intact shards ---
    monkeypatch.delenv(ENV_VAR)
    healed = _pipeline(tmp_path / "faulted")
    pending = set(healed.pending_keys())
    # Exactly the damage is pending: the hole plus the quarantined shard.
    assert pending == {POISONED_PAIR, "analytic:calibration"}
    assert [p.name for p in healed._cache.quarantined] == [
        f"{CORRUPTED_SHARD}.json.corrupt"
    ]

    stats2 = healed.ensure_all(workers=2)
    assert stats2["failed"] == 0
    assert stats2["executed"] == 2
    assert healed.pending_keys() == []
    assert _signature(healed) == _signature(reference)

    # The healed cache's failure report is clean again.
    report2 = json.loads(
        (tmp_path / "faulted" / "failure_report.json").read_text()
    )
    assert report2["failure_count"] == 0
    assert report2["quarantined_shards"] == [
        str(tmp_path / "faulted" / f"{CORRUPTED_SHARD}.json.corrupt")
    ]
