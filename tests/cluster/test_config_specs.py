"""Tests for configuration dataclasses and named machine specs."""

import pytest

from repro.cluster import cab_config, small_test_config
from repro.config import MachineConfig, NetworkConfig, NodeConfig, Scale
from repro.errors import ConfigurationError
from repro.units import GB, US


# ----------------------------------------------------------------------
# NetworkConfig
# ----------------------------------------------------------------------
def test_network_defaults_are_cab_like():
    config = NetworkConfig()
    assert config.link_bandwidth == pytest.approx(5 * GB)
    assert config.switch_mode == "output_queued"
    assert config.mtu >= 1024


def test_network_validation():
    with pytest.raises(ConfigurationError):
        NetworkConfig(link_bandwidth=0)
    with pytest.raises(ConfigurationError):
        NetworkConfig(link_latency=-1e-9)
    with pytest.raises(ConfigurationError):
        NetworkConfig(mtu=0)
    with pytest.raises(ConfigurationError):
        NetworkConfig(switch_mode="magic")
    with pytest.raises(ConfigurationError):
        NetworkConfig(fabric_servers=0)
    with pytest.raises(ConfigurationError):
        NetworkConfig(local_bandwidth=-1)


# ----------------------------------------------------------------------
# NodeConfig / MachineConfig
# ----------------------------------------------------------------------
def test_node_cores_property():
    node = NodeConfig(sockets=2, cores_per_socket=8)
    assert node.cores == 16


def test_node_validation():
    with pytest.raises(ConfigurationError):
        NodeConfig(sockets=0)
    with pytest.raises(ConfigurationError):
        NodeConfig(clock_hz=0)


def test_machine_totals_and_seed():
    config = MachineConfig(node_count=4)
    assert config.total_cores == 4 * config.node.cores
    reseeded = config.with_seed(99)
    assert reseeded.seed == 99
    assert reseeded.node_count == config.node_count


def test_machine_validation():
    with pytest.raises(ConfigurationError):
        MachineConfig(node_count=0)


# ----------------------------------------------------------------------
# Scale
# ----------------------------------------------------------------------
def test_scale_period_and_iterations():
    scale = Scale(time_factor=0.01, work_factor=0.5)
    assert scale.period(0.1) == pytest.approx(1e-3)
    assert scale.iterations(10) == 5
    assert scale.iterations(1) == 1  # never below one


def test_scale_validation():
    with pytest.raises(ConfigurationError):
        Scale(time_factor=0)
    with pytest.raises(ConfigurationError):
        Scale(work_factor=-1)
    with pytest.raises(ConfigurationError):
        Scale().period(-1.0)
    with pytest.raises(ConfigurationError):
        Scale().iterations(0)


# ----------------------------------------------------------------------
# Named specs
# ----------------------------------------------------------------------
def test_cab_config_matches_paper():
    config = cab_config()
    assert config.node_count == 18
    assert config.node.sockets == 2
    assert config.node.cores_per_socket == 8
    assert config.node.clock_hz == pytest.approx(2.6e9)
    assert config.network.link_bandwidth == pytest.approx(5 * GB)


def test_cab_config_seed_and_node_overrides():
    config = cab_config(seed=5, node_count=6)
    assert config.seed == 5
    assert config.node_count == 6


def test_small_test_config_is_small():
    config = small_test_config()
    assert config.total_cores <= 32
