"""Tests for nodes, cores, and placement policies."""

import pytest

from repro.cluster import (
    BlockPlacement,
    ExplicitPlacement,
    Machine,
    PerSocketPlacement,
    RoundRobinPlacement,
    small_test_config,
)
from repro.cluster.node import Core, Node
from repro.config import NodeConfig
from repro.errors import ConfigurationError


def _node(node_id=0, sockets=2, cores=4):
    return Node(node_id, NodeConfig(sockets=sockets, cores_per_socket=cores))


# ----------------------------------------------------------------------
# Node / Core
# ----------------------------------------------------------------------
def test_node_core_layout():
    node = _node(cores=3)
    assert len(node.cores) == 6
    assert node.cores[0] == Core(0, 0, 0)
    assert node.cores[3] == Core(0, 1, 0)


def test_allocate_and_release():
    node = _node()
    core = node.cores[0]
    node.allocate(core, "job1")
    assert node.occupant(core) == "job1"
    assert core not in node.free_cores
    node.release(core)
    assert node.occupant(core) is None


def test_double_allocate_rejected():
    node = _node()
    core = node.cores[0]
    node.allocate(core, "a")
    with pytest.raises(ConfigurationError, match="occupied"):
        node.allocate(core, "b")


def test_release_unallocated_rejected():
    node = _node()
    with pytest.raises(ConfigurationError):
        node.release(node.cores[0])


def test_free_cores_on_socket():
    node = _node(sockets=2, cores=2)
    node.allocate(Core(0, 0, 0), "x")
    assert node.free_cores_on_socket(0) == [Core(0, 0, 1)]
    assert len(node.free_cores_on_socket(1)) == 2
    with pytest.raises(ConfigurationError):
        node.free_cores_on_socket(5)


# ----------------------------------------------------------------------
# Placements
# ----------------------------------------------------------------------
def _nodes(count=3, sockets=2, cores=2):
    return [Node(i, NodeConfig(sockets=sockets, cores_per_socket=cores)) for i in range(count)]


def test_per_socket_placement_rank_order_is_node_major():
    nodes = _nodes(2)
    cores = PerSocketPlacement(1).select(nodes)
    assert [(c.node_id, c.socket) for c in cores] == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_per_socket_placement_limited_nodes():
    nodes = _nodes(3)
    cores = PerSocketPlacement(1, node_count=2).select(nodes)
    assert {c.node_id for c in cores} == {0, 1}


def test_per_socket_placement_skips_occupied():
    nodes = _nodes(1)
    nodes[0].allocate(Core(0, 0, 0), "other")
    cores = PerSocketPlacement(1).select(nodes)
    assert cores[0] == Core(0, 0, 1)


def test_per_socket_placement_insufficient_cores():
    nodes = _nodes(1, cores=1)
    with pytest.raises(ConfigurationError, match="free"):
        PerSocketPlacement(2).select(nodes)


def test_per_socket_placement_too_many_nodes():
    with pytest.raises(ConfigurationError, match="nodes"):
        PerSocketPlacement(1, node_count=5).select(_nodes(3))


def test_block_placement_fills_first_node_first():
    cores = BlockPlacement(5).select(_nodes(2))
    assert [c.node_id for c in cores] == [0, 0, 0, 0, 1]


def test_block_placement_exhausted():
    with pytest.raises(ConfigurationError):
        BlockPlacement(100).select(_nodes(2))


def test_round_robin_placement_deals_across_nodes():
    cores = RoundRobinPlacement(4).select(_nodes(2))
    assert [c.node_id for c in cores] == [0, 1, 0, 1]


def test_round_robin_exhausted():
    with pytest.raises(ConfigurationError):
        RoundRobinPlacement(100).select(_nodes(2))


def test_explicit_placement_roundtrip():
    nodes = _nodes(1)
    wanted = [Core(0, 1, 1), Core(0, 0, 0)]
    assert ExplicitPlacement(wanted).select(nodes) == wanted


def test_explicit_placement_rejects_unknown_node():
    with pytest.raises(ConfigurationError, match="unknown node"):
        ExplicitPlacement([Core(9, 0, 0)]).select(_nodes(1))


def test_explicit_placement_rejects_occupied():
    nodes = _nodes(1)
    nodes[0].allocate(Core(0, 0, 0), "x")
    with pytest.raises(ConfigurationError, match="occupied"):
        ExplicitPlacement([Core(0, 0, 0)]).select(nodes)


def test_placement_validation():
    with pytest.raises(ConfigurationError):
        PerSocketPlacement(0)
    with pytest.raises(ConfigurationError):
        BlockPlacement(0)
    with pytest.raises(ConfigurationError):
        RoundRobinPlacement(0)
    with pytest.raises(ConfigurationError):
        ExplicitPlacement([])


# ----------------------------------------------------------------------
# Machine
# ----------------------------------------------------------------------
def test_machine_allocate_tracks_occupancy():
    machine = Machine(small_test_config())
    total = machine.free_core_count()
    cores = machine.allocate(PerSocketPlacement(1), "job")
    assert machine.free_core_count() == total - len(cores)
    machine.release(cores)
    assert machine.free_core_count() == total


def test_machine_rejects_mismatched_topology():
    from repro.network import SingleSwitchTopology

    with pytest.raises(ConfigurationError, match="topology"):
        Machine(small_test_config(node_count=4), SingleSwitchTopology(5))


def test_machine_node_count():
    machine = Machine(small_test_config(node_count=3))
    assert machine.node_count == 3
    assert len(machine.nodes) == 3
