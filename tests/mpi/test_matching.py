"""Tests for the receive-matching engine."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, MatchingEngine
from repro.sim import Simulator


def _env(src=0, tag=0, nbytes=100, payload=None):
    return Envelope(src=src, dst=1, tag=tag, nbytes=nbytes, payload=payload)


def test_posted_recv_matches_arriving_message():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=0, tag=7)
    assert not request.complete
    engine.deliver(_env(src=0, tag=7, payload="hi"))
    assert request.complete
    assert request.envelope.payload == "hi"
    assert request.status.source == 0
    assert request.status.tag == 7


def test_unexpected_message_matched_by_later_recv():
    engine = MatchingEngine(Simulator(), rank=1)
    engine.deliver(_env(src=3, tag=9, payload="early"))
    assert engine.unexpected_count == 1
    request = engine.post(source=3, tag=9)
    assert request.complete
    assert request.envelope.payload == "early"
    assert engine.unexpected_count == 0


def test_wrong_source_does_not_match():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=2, tag=0)
    engine.deliver(_env(src=3, tag=0))
    assert not request.complete
    assert engine.unexpected_count == 1


def test_wrong_tag_does_not_match():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=0, tag=1)
    engine.deliver(_env(src=0, tag=2))
    assert not request.complete


def test_any_source_wildcard():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=ANY_SOURCE, tag=4)
    engine.deliver(_env(src=9, tag=4))
    assert request.complete
    assert request.status.source == 9


def test_any_tag_wildcard():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=5, tag=ANY_TAG)
    engine.deliver(_env(src=5, tag=77))
    assert request.complete
    assert request.status.tag == 77


def test_full_wildcard():
    engine = MatchingEngine(Simulator(), rank=1)
    request = engine.post(source=ANY_SOURCE, tag=ANY_TAG)
    engine.deliver(_env(src=2, tag=3))
    assert request.complete


def test_fifo_matching_of_posted_receives():
    """Two identical posts match in post order."""
    engine = MatchingEngine(Simulator(), rank=1)
    first = engine.post(source=0, tag=0)
    second = engine.post(source=0, tag=0)
    engine.deliver(_env(src=0, tag=0, payload="a"))
    engine.deliver(_env(src=0, tag=0, payload="b"))
    assert first.envelope.payload == "a"
    assert second.envelope.payload == "b"


def test_fifo_matching_of_unexpected_messages():
    """A wildcard recv takes the oldest matching unexpected message."""
    engine = MatchingEngine(Simulator(), rank=1)
    engine.deliver(_env(src=0, tag=0, payload="old"))
    engine.deliver(_env(src=0, tag=0, payload="new"))
    request = engine.post(source=ANY_SOURCE, tag=ANY_TAG)
    assert request.envelope.payload == "old"


def test_selective_match_skips_nonmatching_unexpected():
    engine = MatchingEngine(Simulator(), rank=1)
    engine.deliver(_env(src=0, tag=1, payload="skip"))
    engine.deliver(_env(src=0, tag=2, payload="take"))
    request = engine.post(source=0, tag=2)
    assert request.envelope.payload == "take"
    assert engine.unexpected_count == 1


def test_counters():
    engine = MatchingEngine(Simulator(), rank=1)
    engine.post(source=0, tag=0)
    engine.post(source=0, tag=1)
    assert engine.posted_count == 2
    engine.deliver(_env(src=0, tag=0))
    assert engine.posted_count == 1


def test_delivery_timestamps_envelope():
    sim = Simulator()
    sim.schedule(3.0, lambda: None)
    sim.run()
    engine = MatchingEngine(sim, rank=1)
    envelope = _env()
    engine.deliver(envelope)
    assert envelope.delivered_at == 3.0


def test_request_kind_validation():
    from repro.mpi import Request

    with pytest.raises(ValueError):
        Request(Simulator().event(), "bogus")
