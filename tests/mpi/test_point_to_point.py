"""Tests for point-to-point messaging through the full stack."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.errors import MPIError, ProcessFailure
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIWorld
from repro.units import KB, US


@pytest.fixture()
def machine():
    return Machine(small_test_config())


@pytest.fixture()
def world(machine):
    return MPIWorld.create(machine, PerSocketPlacement(1), name="t")


def _run(machine, world, factory):
    job = world.launch(factory)
    machine.sim.run_until_event(job.done)
    return job


def test_blocking_send_recv_payload(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1 * KB, tag=3, payload={"x": 42})
            return None
        if ctx.rank == 1:
            data = yield from ctx.comm.recv(0, tag=3)
            return data
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[1] == {"x": 42}


def test_isend_completes_locally_before_delivery(machine, world):
    observations = {}

    def workload(ctx):
        # rank 2 lives on node 1, so the message crosses the fabric.
        if ctx.rank == 0:
            request = ctx.comm.isend(2, 64 * KB, tag=0)
            yield from ctx.comm.wait(request)
            observations["sent_at"] = ctx.now
        elif ctx.rank == 2:
            yield from ctx.comm.recv(0, tag=0)
            observations["recv_at"] = ctx.now
        return None
        yield

    _run(machine, world, workload)
    assert observations["sent_at"] < observations["recv_at"]


def test_message_latency_is_cab_scale(machine, world):
    """A 1KB one-way message crosses the idle switch in roughly 1-3 µs."""
    times = {}

    def workload(ctx):
        if ctx.rank == 0:
            start = ctx.now
            yield from ctx.comm.send(2, 1 * KB, tag=0)  # rank 2 is on node 1
        elif ctx.rank == 2:
            yield from ctx.comm.recv(0, tag=0)
            times["arrival"] = ctx.now
        return None
        yield

    _run(machine, world, workload)
    assert 0.5 * US < times["arrival"] < 5 * US


def test_sendrecv_exchanges_without_deadlock(machine, world):
    def workload(ctx):
        partner = ctx.rank ^ 1
        got = yield from ctx.comm.sendrecv(
            partner, 1 * KB, partner, tag=2, payload=ctx.rank
        )
        return got

    job = _run(machine, world, workload)
    assert job.results() == [1, 0, 3, 2, 5, 4, 7, 6]


def test_messages_nonovertaking_same_pair(machine, world):
    """Two same-pair messages with the same tag arrive in send order."""

    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, 1 * KB, tag=0, payload="first")
            yield from ctx.comm.send(1, 1 * KB, tag=0, payload="second")
            return None
        if ctx.rank == 1:
            a = yield from ctx.comm.recv(0, tag=0)
            b = yield from ctx.comm.recv(0, tag=0)
            return (a, b)
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[1] == ("first", "second")


def test_wildcard_receive_in_workload(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(3, 1 * KB, tag=11, payload="zero")
            return None
        if ctx.rank == 3:
            data = yield from ctx.comm.recv(ANY_SOURCE, ANY_TAG)
            return data
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[3] == "zero"


def test_waitall_mixed_requests(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            reqs = [
                ctx.comm.isend(1, 1 * KB, tag=1, payload="a"),
                ctx.comm.isend(1, 1 * KB, tag=2, payload="b"),
            ]
            yield from ctx.comm.waitall(reqs)
            return None
        if ctx.rank == 1:
            reqs = [ctx.comm.irecv(0, tag=2), ctx.comm.irecv(0, tag=1)]
            values = yield from ctx.comm.waitall(reqs)
            return values
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[1] == ["b", "a"]


def test_send_to_invalid_rank_raises(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(99, 1 * KB)
        return None
        yield

    job = world.launch(workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)


def test_self_message_rejected_by_default(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(0, 1 * KB)
        return None
        yield

    job = world.launch(workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)


def test_self_message_allowed_when_opted_in(machine):
    world = MPIWorld(
        machine,
        machine.allocate(PerSocketPlacement(1), "selfy"),
        name="selfy",
        allow_self_messages=True,
    )

    def workload(ctx):
        if ctx.rank == 0:
            request = ctx.comm.irecv(0, tag=0)
            yield from ctx.comm.send(0, 1 * KB, tag=0, payload="loop")
            value = yield from ctx.comm.wait(request)
            return value
        return None
        yield

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert job.results()[0] == "loop"


def test_negative_tag_rejected(machine, world):
    def workload(ctx):
        if ctx.rank == 0:
            ctx.comm.isend(1, 1 * KB, tag=-5)
        return None
        yield

    job = world.launch(workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)


def test_intra_node_faster_than_inter_node(machine):
    """Ranks 0,1 share node 0; rank 2 is on node 1."""
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="lat")
    times = {}

    def workload(ctx):
        if ctx.rank == 0:
            start = ctx.now
            yield from ctx.comm.send(1, 1 * KB, tag=1)  # same node
            yield from ctx.comm.recv(1, tag=2)
            times["intra"] = ctx.now - start
            start = ctx.now
            yield from ctx.comm.send(2, 1 * KB, tag=3)  # other node
            yield from ctx.comm.recv(2, tag=4)
            times["inter"] = ctx.now - start
        elif ctx.rank == 1:
            yield from ctx.comm.recv(0, tag=1)
            yield from ctx.comm.send(0, 1 * KB, tag=2)
        elif ctx.rank == 2:
            yield from ctx.comm.recv(0, tag=3)
            yield from ctx.comm.send(0, 1 * KB, tag=4)
        return None
        yield

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert times["intra"] < times["inter"]
