"""Tests for MPIWorld, RankContext, and Job bookkeeping."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.errors import ConfigurationError, MPIError
from repro.mpi import MPIWorld


@pytest.fixture()
def machine():
    return Machine(small_test_config())


def test_world_size_and_node_mapping(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(2), name="w")
    # 4 nodes x 2 sockets x 2 ranks/socket = 16 ranks
    assert world.size == 16
    assert world.node_of(0) == 0
    assert world.node_of(4) == 1
    assert world.node_ids == [0, 1, 2, 3]
    assert world.ranks_on_node(0) == [0, 1, 2, 3]


def test_local_index(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")
    # 2 ranks per node: local indices alternate 0, 1.
    assert [world.local_index_of(r) for r in range(4)] == [0, 1, 0, 1]


def test_two_worlds_do_not_share_cores(machine):
    MPIWorld.create(machine, PerSocketPlacement(1), name="first")
    second = MPIWorld.create(machine, PerSocketPlacement(1), name="second")
    assert second.size == 8
    # 2 cores/socket, both now full:
    with pytest.raises(ConfigurationError):
        MPIWorld.create(machine, PerSocketPlacement(1), name="third")


def test_empty_world_rejected(machine):
    with pytest.raises(ConfigurationError):
        MPIWorld(machine, [], name="empty")


def test_job_elapsed_and_results(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")

    def workload(ctx):
        yield from ctx.compute(1e-3 * (ctx.rank + 1))
        return ctx.rank * 2

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert job.finished
    assert job.elapsed == pytest.approx(8e-3)  # slowest of 8 ranks
    assert job.results() == [r * 2 for r in range(8)]


def test_job_results_before_finish_raise(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")

    def workload(ctx):
        yield from ctx.compute(1.0)

    job = world.launch(workload)
    with pytest.raises(MPIError):
        job.results()


def test_rank_context_properties(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")
    seen = {}

    def workload(ctx):
        if ctx.rank == 3:
            seen["node"] = ctx.node_id
            seen["local"] = ctx.local_index
            seen["clock"] = ctx.clock_hz
            seen["size"] = ctx.size
        return None
        yield

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert seen == {"node": 1, "local": 1, "clock": 2.6e9, "size": 8}


def test_compute_jitter_is_reproducible(machine):
    durations = []
    for _ in range(2):
        m = Machine(small_test_config(seed=5))
        world = MPIWorld.create(m, PerSocketPlacement(1), name="w")

        def workload(ctx):
            yield from ctx.compute(1e-3, jitter=0.1)
            return ctx.now

        job = world.launch(workload)
        m.sim.run_until_event(job.done)
        durations.append(tuple(job.results()))
    assert durations[0] == durations[1]
    assert len(set(durations[0])) > 1  # ranks draw different jitter


def test_sleep_cycles_uses_node_clock(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")

    def workload(ctx):
        yield from ctx.sleep_cycles(2.6e6)  # 1 ms at 2.6 GHz
        return ctx.now

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert job.results()[0] == pytest.approx(1e-3)


def test_negative_compute_rejected(machine):
    from repro.errors import ProcessFailure

    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")

    def workload(ctx):
        yield from ctx.compute(-1.0)

    job = world.launch(workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)


def test_zero_compute_and_sleep_are_instant(machine):
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w")

    def workload(ctx):
        yield from ctx.compute(0.0)
        yield from ctx.sleep(0.0)
        return ctx.now

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert all(t == 0.0 for t in job.results())
