"""Property-based tests for collective algorithms.

Random world sizes, roots, payload sizes, and operators — the algorithms
must produce MPI-semantics results for all of them.
"""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import BlockPlacement, Machine
from repro.config import MachineConfig, NetworkConfig, NodeConfig
from repro.mpi import MPIWorld


def _run(size, factory):
    config = MachineConfig(
        node_count=max(2, (size + 3) // 4),
        node=NodeConfig(sockets=2, cores_per_socket=2),
        network=NetworkConfig(),
    )
    machine = Machine(config)
    world = MPIWorld.create(machine, BlockPlacement(size), name="prop")
    job = world.launch(factory)
    machine.sim.run_until_event(job.done, max_events=3_000_000)
    return job.results()


@settings(max_examples=12, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=12),
    root=st.data(),
    nbytes=st.sampled_from([8, 1024, 10_000]),
)
def test_property_bcast_any_size_root_bytes(size, root, nbytes):
    root_rank = root.draw(st.integers(min_value=0, max_value=size - 1))

    def workload(ctx):
        value = "payload" if ctx.rank == root_rank else None
        result = yield from ctx.comm.bcast(value, root_rank, nbytes)
        return result

    assert _run(size, workload) == ["payload"] * size


@settings(max_examples=12, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=12),
    op=st.sampled_from([operator.add, min, max]),
)
def test_property_allreduce_matches_python_reduce(size, op):
    import functools

    def workload(ctx):
        result = yield from ctx.comm.allreduce((ctx.rank * 13) % 7, nbytes=8, op=op)
        return result

    expected = functools.reduce(op, [(r * 13) % 7 for r in range(size)])
    assert _run(size, workload) == [expected] * size


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=1, max_value=10))
def test_property_alltoall_is_a_transpose(size):
    def workload(ctx):
        outgoing = [(ctx.rank, dest) for dest in range(ctx.size)]
        result = yield from ctx.comm.alltoall(outgoing, nbytes_per_pair=64)
        return result

    results = _run(size, workload)
    for receiver, received in enumerate(results):
        assert received == [(source, receiver) for source in range(size)]


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=10),
    root=st.data(),
)
def test_property_gather_scatter_roundtrip(size, root):
    root_rank = root.draw(st.integers(min_value=0, max_value=size - 1))

    def workload(ctx):
        gathered = yield from ctx.comm.gather(ctx.rank * 3, root_rank, nbytes=8)
        scattered = yield from ctx.comm.scatter(gathered, root_rank, nbytes=8)
        return scattered

    # gather collects rank*3 at root; scatter hands rank i its own value back.
    assert _run(size, workload) == [r * 3 for r in range(size)]


@settings(max_examples=10, deadline=None)
@given(size=st.integers(min_value=1, max_value=12))
def test_property_barrier_terminates_and_synchronizes(size):
    def workload(ctx):
        yield from ctx.compute(1e-5 * (ctx.rank + 1))
        yield from ctx.comm.barrier()
        return ctx.now

    times = _run(size, workload)
    slowest_entry = 1e-5 * size
    assert all(t >= slowest_entry - 1e-12 for t in times)
