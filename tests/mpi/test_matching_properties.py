"""Model-based property test: MatchingEngine vs a reference oracle.

Random interleavings of posted receives and delivered messages (with
wildcards) must produce exactly the matches a straightforward reference
implementation of the MPI matching rules produces.
"""

from hypothesis import given, strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, MatchingEngine
from repro.sim import Simulator


def _reference_match(posted, unexpected, source, tag):
    """Oracle: first unexpected envelope matching (source, tag), else None."""
    for index, envelope in enumerate(unexpected):
        if (source in (ANY_SOURCE, envelope[0])) and (tag in (ANY_TAG, envelope[1])):
            return index
    return None


operations = st.lists(
    st.one_of(
        # post(source, tag): source in {ANY, 0, 1}, tag in {ANY, 0, 1}
        st.tuples(
            st.just("post"),
            st.sampled_from([ANY_SOURCE, 0, 1]),
            st.sampled_from([ANY_TAG, 0, 1]),
        ),
        # deliver(src, tag, payload-id)
        st.tuples(
            st.just("deliver"),
            st.sampled_from([0, 1]),
            st.sampled_from([0, 1]),
        ),
    ),
    max_size=40,
)


@given(operations)
def test_property_matching_agrees_with_oracle(ops):
    engine = MatchingEngine(Simulator(), rank=9)

    # Oracle state: lists of (source, tag, id).
    oracle_posted = []  # (source, tag, request_id)
    oracle_unexpected = []  # (src, tag, message_id)
    oracle_matches = {}  # request_id -> message_id

    requests = {}
    next_message = 0

    for op in ops:
        if op[0] == "post":
            _kind, source, tag = op
            request_id = len(requests)
            request = engine.post(source, tag)
            requests[request_id] = request

            index = _reference_match(None, oracle_unexpected, source, tag)
            if index is not None:
                oracle_matches[request_id] = oracle_unexpected.pop(index)[2]
            else:
                oracle_posted.append((source, tag, request_id))
        else:
            _kind, src, tag = op
            message_id = next_message
            next_message += 1
            engine.deliver(Envelope(src=src, dst=9, tag=tag, nbytes=8, payload=message_id))

            matched = None
            for index, (want_source, want_tag, request_id) in enumerate(oracle_posted):
                if (want_source in (ANY_SOURCE, src)) and (want_tag in (ANY_TAG, tag)):
                    matched = index
                    break
            if matched is not None:
                _s, _t, request_id = oracle_posted.pop(matched)
                oracle_matches[request_id] = message_id
            else:
                oracle_unexpected.append((src, tag, message_id))

    # Every oracle match is realized with the same message, and no extras.
    for request_id, request in requests.items():
        if request_id in oracle_matches:
            assert request.complete, f"request {request_id} should have matched"
            assert request.envelope.payload == oracle_matches[request_id]
        else:
            assert not request.complete, f"request {request_id} matched unexpectedly"

    assert engine.posted_count == len(oracle_posted)
    assert engine.unexpected_count == len(oracle_unexpected)
