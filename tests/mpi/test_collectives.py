"""Correctness tests for collective algorithms (values, not just timing)."""

import operator

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import BlockPlacement, Machine, small_test_config
from repro.config import MachineConfig, NetworkConfig, NodeConfig
from repro.mpi import MPIWorld


def _machine(nodes=4, cores=4):
    config = MachineConfig(
        node_count=nodes,
        node=NodeConfig(sockets=1, cores_per_socket=cores),
        network=NetworkConfig(),
    )
    return Machine(config)


def _run_collective(size, factory, nodes=None):
    machine = _machine(nodes=nodes or max(2, (size + 1) // 2), cores=max(2, size))
    world = MPIWorld.create(machine, BlockPlacement(size), name="coll")
    job = world.launch(factory)
    machine.sim.run_until_event(job.done)
    return job.results()


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8, 13])
def test_barrier_completes_for_any_size(size):
    def workload(ctx):
        yield from ctx.comm.barrier()
        return ctx.now

    results = _run_collective(size, workload)
    assert len(results) == size


def test_barrier_synchronizes_laggards():
    """Ranks reaching the barrier early wait for the slowest."""

    def workload(ctx):
        yield from ctx.compute(1e-3 * (1 + ctx.rank))  # rank 3 slowest
        yield from ctx.comm.barrier()
        return ctx.now

    results = _run_collective(4, workload)
    slowest_entry = 4e-3
    assert all(t >= slowest_entry for t in results)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 9])
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_root_value(size, root):
    root_rank = size - 1 if root == "last" else 0

    def workload(ctx):
        value = f"payload-{ctx.rank}" if ctx.rank == root_rank else None
        result = yield from ctx.comm.bcast(value, root_rank, nbytes=256)
        return result

    results = _run_collective(size, workload)
    assert results == [f"payload-{root_rank}"] * size


@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 8, 11])
def test_reduce_sums_to_root(size):
    def workload(ctx):
        result = yield from ctx.comm.reduce(ctx.rank + 1, root=0, nbytes=8)
        return result

    results = _run_collective(size, workload)
    assert results[0] == size * (size + 1) // 2
    assert all(value is None for value in results[1:])


def test_reduce_nonzero_root():
    def workload(ctx):
        result = yield from ctx.comm.reduce(ctx.rank, root=2, nbytes=8)
        return result

    results = _run_collective(5, workload)
    assert results[2] == 10
    assert results[0] is None


def test_reduce_custom_op_max():
    def workload(ctx):
        result = yield from ctx.comm.reduce(
            (ctx.rank * 7) % 5, root=0, nbytes=8, op=max
        )
        return result

    results = _run_collective(5, workload)
    assert results[0] == max((r * 7) % 5 for r in range(5))


def test_reduce_deterministic_order_for_noncommutative_op():
    """String concatenation exposes combination order; it must be stable."""

    def workload(ctx):
        result = yield from ctx.comm.reduce(str(ctx.rank), root=0, nbytes=8, op=operator.add)
        return result

    first = _run_collective(6, workload)[0]
    second = _run_collective(6, workload)[0]
    assert first == second
    assert sorted(first) == list("012345")


@pytest.mark.parametrize("size", [1, 2, 4, 5, 8])
def test_allreduce_everyone_gets_sum(size):
    def workload(ctx):
        result = yield from ctx.comm.allreduce(ctx.rank, nbytes=8)
        return result

    results = _run_collective(size, workload)
    assert results == [size * (size - 1) // 2] * size


@pytest.mark.parametrize("size", [1, 2, 3, 6, 9])
def test_allgather_collects_everything_in_rank_order(size):
    def workload(ctx):
        result = yield from ctx.comm.allgather(ctx.rank * 100, nbytes=64)
        return result

    results = _run_collective(size, workload)
    expected = [r * 100 for r in range(size)]
    assert results == [expected] * size


@pytest.mark.parametrize("size", [1, 2, 3, 4, 6, 8])
def test_alltoall_personalizes_exchange(size):
    def workload(ctx):
        outgoing = [f"{ctx.rank}->{dest}" for dest in range(ctx.size)]
        result = yield from ctx.comm.alltoall(outgoing, nbytes_per_pair=128)
        return result

    results = _run_collective(size, workload)
    for receiver, received in enumerate(results):
        assert received == [f"{source}->{receiver}" for source in range(size)]


def test_alltoall_timing_only_traffic():
    def workload(ctx):
        result = yield from ctx.comm.alltoall(None, nbytes_per_pair=1024)
        return result

    results = _run_collective(4, workload)
    assert all(value == [None] * 4 for value in results)


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_gather_to_root(size):
    def workload(ctx):
        result = yield from ctx.comm.gather(ctx.rank**2, root=0, nbytes=16)
        return result

    results = _run_collective(size, workload)
    assert results[0] == [r**2 for r in range(size)]
    assert all(value is None for value in results[1:])


@pytest.mark.parametrize("size", [1, 2, 4, 7])
def test_scatter_from_root(size):
    def workload(ctx):
        values = [f"chunk{i}" for i in range(ctx.size)] if ctx.rank == 1 % ctx.size else None
        result = yield from ctx.comm.scatter(values, root=1 % ctx.size, nbytes=32)
        return result

    results = _run_collective(size, workload)
    assert results == [f"chunk{i}" for i in range(size)]


def test_scatter_requires_correct_value_count():
    from repro.errors import ProcessFailure

    machine = _machine(nodes=2, cores=2)
    world = MPIWorld.create(machine, BlockPlacement(4), name="bad")

    def workload(ctx):
        values = ["a"] if ctx.rank == 0 else None
        yield from ctx.comm.scatter(values, root=0, nbytes=8)

    job = world.launch(workload)
    with pytest.raises(ProcessFailure):
        machine.sim.run_until_event(job.done)


def test_back_to_back_collectives_do_not_crossmatch():
    """Consecutive collectives with identical shapes must not interfere."""

    def workload(ctx):
        first = yield from ctx.comm.allreduce(1, nbytes=8)
        second = yield from ctx.comm.allreduce(10, nbytes=8)
        third = yield from ctx.comm.allgather(ctx.rank, nbytes=8)
        return (first, second, third)

    results = _run_collective(6, workload)
    for first, second, third in results:
        assert first == 6
        assert second == 60
        assert third == list(range(6))


def test_collectives_across_multiple_iterations():
    def workload(ctx):
        total = 0
        for _ in range(5):
            total = yield from ctx.comm.allreduce(total + 1, nbytes=8)
        return total

    results = _run_collective(3, workload)
    # x_{k+1} = 3*(x_k + 1): 3, 12, 39, 120, 363
    assert results == [363, 363, 363]
