"""Tests for the rendezvous protocol (large-message eager threshold)."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.errors import ConfigurationError
from repro.mpi import MPIWorld
from repro.units import KB


def _world(machine, threshold):
    return MPIWorld.create(
        machine, PerSocketPlacement(1), name="rdv", eager_threshold=threshold
    )


def _run(machine, world, factory):
    job = world.launch(factory)
    machine.sim.run_until_event(job.done)
    return job


def test_large_payload_survives_rendezvous():
    machine = Machine(small_test_config())
    world = _world(machine, threshold=16 * KB)

    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(2, 64 * KB, tag=1, payload={"big": True})
            return None
        if ctx.rank == 2:
            data = yield from ctx.comm.recv(0, tag=1)
            return data
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[2] == {"big": True}


def test_small_messages_stay_eager():
    """Below the threshold the sender completes without a posted receive."""
    machine = Machine(small_test_config())
    world = _world(machine, threshold=16 * KB)
    sent_at = {}

    def workload(ctx):
        if ctx.rank == 0:
            request = ctx.comm.isend(2, 1 * KB, tag=1)
            yield from ctx.comm.wait(request)
            sent_at["time"] = ctx.now
        elif ctx.rank == 2:
            yield from ctx.compute(1e-3)  # receive posted very late
            yield from ctx.comm.recv(0, tag=1)
        return None
        yield

    _run(machine, world, workload)
    assert sent_at["time"] < 1e-4  # completed long before the recv was posted


def test_rendezvous_send_waits_for_receiver():
    """Above the threshold the send cannot complete until the receiver
    posts a matching receive (synchronous-send semantics)."""
    machine = Machine(small_test_config())
    world = _world(machine, threshold=16 * KB)
    times = {}

    def workload(ctx):
        if ctx.rank == 0:
            request = ctx.comm.isend(2, 64 * KB, tag=1)
            yield from ctx.comm.wait(request)
            times["send_done"] = ctx.now
        elif ctx.rank == 2:
            yield from ctx.compute(1e-3)
            yield from ctx.comm.recv(0, tag=1)
            times["recv_done"] = ctx.now
        return None
        yield

    _run(machine, world, workload)
    assert times["send_done"] > 1e-3  # blocked on the late receiver
    assert times["recv_done"] >= times["send_done"] - 1e-9


def test_rendezvous_with_pre_posted_receive_adds_one_roundtrip():
    """When the receive is already posted, rendezvous costs ~one control
    round-trip more than eager for the same payload."""

    def run(threshold):
        machine = Machine(small_test_config())
        world = _world(machine, threshold)
        done = {}

        def workload(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(2, 64 * KB, tag=1)
            elif ctx.rank == 2:
                yield from ctx.comm.recv(0, tag=1)
                done["at"] = ctx.now
            return None
            yield

        _run(machine, world, workload)
        return done["at"]

    eager = run(threshold=None)
    rendezvous = run(threshold=16 * KB)
    assert rendezvous > eager
    assert rendezvous < eager + 50e-6  # a handful of µs, not a stall


def test_rendezvous_messages_do_not_crossmatch_eager():
    """Mixed traffic: small eager and large rendezvous messages with the
    same tag arrive in order with correct payloads."""
    machine = Machine(small_test_config())
    world = _world(machine, threshold=16 * KB)

    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(2, 1 * KB, tag=1, payload="small")
            yield from ctx.comm.send(2, 64 * KB, tag=1, payload="large")
            return None
        if ctx.rank == 2:
            first = yield from ctx.comm.recv(0, tag=1)
            second = yield from ctx.comm.recv(0, tag=1)
            return (first, second)
        return None
        yield

    job = _run(machine, world, workload)
    assert job.results()[2] == ("small", "large")


def test_collectives_work_over_rendezvous():
    machine = Machine(small_test_config())
    world = _world(machine, threshold=1 * KB)  # everything above 1KB rendezvous

    def workload(ctx):
        values = yield from ctx.comm.allgather(ctx.rank, nbytes=8 * KB)
        return values

    job = _run(machine, world, workload)
    assert all(result == list(range(8)) for result in job.results())


def test_negative_threshold_rejected():
    machine = Machine(small_test_config())
    with pytest.raises(ConfigurationError):
        MPIWorld.create(
            machine, PerSocketPlacement(1), name="bad", eager_threshold=-1
        )
