"""Planned-campaign integration: budget, cache resume, refusals, determinism.

These are ISSUE 10's satellite-4 scenarios: the planner and the runner
must agree on what a budget means — cached products are free, admission is
deterministic, refusals are refunded — and two identical planned campaigns
must produce bit-identical plans and cache shards.
"""

import json

import pytest

import repro.core.experiments.pipeline as pipeline_mod
from repro.errors import AnalyticModelError, CampaignError
from repro.planner import CostModel, PlannedCampaign, get_planner

from .conftest import make_pipeline


def _campaign(pipeline, budget=None, planner="uncertainty", **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("max_rounds", 4)
    return PlannedCampaign(
        pipeline, get_planner(planner), measurement_budget=budget, **kwargs
    )


def test_unbudgeted_campaign_completes_and_tracks_costs(pipeline):
    result = _campaign(pipeline).run()
    assert result.stop_reason in (
        "stabilized",
        "nothing-to-propose",
        "max-rounds",
    )
    assert result.executed > 0
    assert result.skipped == 0
    assert result.budget_spent > 0  # informational even without a budget
    assert result.final_error is not None
    # This tiny fixture can be exhausted, but never overrun: requesting a
    # product twice must hit the cache, not the engine.  (The "fewer
    # experiments than exhaustive" claim is the benchmark's to prove, on
    # the paper-sized catalog.)
    assert result.executed <= result.total_products


def test_budget_exhaustion_mid_round(pipeline):
    # Enough for the bootstrap sweep plus a little: some later round must
    # hit admission and stop the campaign.
    model = CostModel.from_settings(pipeline.settings)
    sweep_cost = sum(
        model.cost_of(k)
        for k in ["calibration", "impact/idle"]
        + [f"impact/{a}" for a in pipeline.app_names]
        + [f"comp_sig/{c.label}" for c in pipeline.catalog]
        + [f"baseline/{a}" for a in pipeline.app_names]
    )
    budget = sweep_cost + 3 * model.cost_of("degradation/x/y")
    result = _campaign(pipeline, budget=budget).run()
    assert result.stop_reason == "budget-exhausted"
    assert result.skipped > 0
    assert result.budget_spent <= budget + 1e-6
    # Skipped keys are holes in the plan, not failures.
    assert result.failed == 0


def test_resume_from_cache_costs_zero_budget(tmp_path):
    cache = tmp_path / "cache"
    first = _campaign(make_pipeline(cache_path=cache)).run()
    assert first.executed > 0

    # Fresh pipeline over the same shards: every product the planner asks
    # for is already there, so nothing executes and nothing is charged.
    resumed = _campaign(make_pipeline(cache_path=cache)).run()
    assert resumed.executed == 0
    assert resumed.budget_spent == 0.0
    assert resumed.cached > 0
    assert resumed.stop_reason in ("stabilized", "nothing-to-propose", "max-rounds")


def test_deterministic_plans_and_shards_across_runs(tmp_path):
    def run(directory, workers):
        pipeline = make_pipeline(cache_path=directory)
        result = _campaign(pipeline, budget=2.0, workers=workers).run()
        trace = json.dumps(result.trace_document(), sort_keys=True)
        shards = {
            path.name: path.read_bytes()
            for path in sorted(directory.glob("*.json"))
            if path.name not in ("failure_report.json", "telemetry.json")
        }
        return trace, shards

    trace_one, shards_one = run(tmp_path / "one", workers=1)
    trace_two, shards_two = run(tmp_path / "two", workers=2)
    assert trace_one == trace_two  # bit-identical plan, even across workers
    assert shards_one == shards_two  # bit-identical shards


def test_unsupported_refusals_are_refunded_and_exempt(pipeline, monkeypatch):
    real = pipeline_mod.run_experiment

    def refuse_mcb_baseline(descriptor):
        if descriptor.key.endswith("baseline/mcb"):
            raise AnalyticModelError("mcb drives utilization past the ceiling")
        return real(descriptor)

    monkeypatch.setattr(pipeline_mod, "run_experiment", refuse_mcb_baseline)
    model = CostModel.from_settings(pipeline.settings)
    result = _campaign(pipeline, budget=50.0).run()  # ample budget

    # The refusal and its dependents are unsupported holes, not failures —
    # the campaign completes despite failure_budget=0.
    assert result.unsupported > 0
    assert result.failed == result.unsupported
    # The baseline's cost came back; dependents were never charged.
    assert result.budget_refunded == pytest.approx(
        model.cost_of("baseline/mcb")
    )
    # Refused keys are never re-proposed in later rounds.
    proposed = [key for entry in result.rounds for key in entry["requested"]]
    assert proposed.count("baseline/mcb") == 1
    # mcb drops out of planning: no degradation of mcb was ever executed.
    assert not any(
        key.startswith("degradation/mcb/") and key not in entry["skipped"]
        for entry in result.rounds
        for key in entry["requested"]
        if pipeline.has_product(key)
    )


def test_real_failures_still_enforce_the_failure_budget(pipeline, monkeypatch):
    real = pipeline_mod.run_experiment

    def flaky_baseline(descriptor):
        if descriptor.key.endswith("baseline/mcb"):
            raise ValueError("infrastructure blew up")
        return real(descriptor)

    monkeypatch.setattr(pipeline_mod, "run_experiment", flaky_baseline)
    with pytest.raises(CampaignError):
        _campaign(pipeline).run()


def test_plan_trace_has_no_wallclock_fields(pipeline):
    result = _campaign(pipeline, budget=2.0).run()
    document = result.trace_document()
    assert "elapsed" not in document
    assert all("elapsed" not in entry for entry in document["rounds"])
    # to_dict is the observational superset.
    assert "elapsed" in result.to_dict()


def test_greedy_strategy_also_runs_to_completion(pipeline):
    result = _campaign(pipeline, planner="greedy").run()
    assert result.planner == "greedy"
    assert result.executed > 0
    assert result.final_error is not None
