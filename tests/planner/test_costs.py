"""Cost-model estimates: deterministic, settings-derived, calibratable."""

import json

import pytest

from repro.core.experiments import PipelineSettings
from repro.errors import ConfigurationError
from repro.planner import PRODUCT_KINDS, CostModel


def test_from_settings_covers_every_kind_and_is_deterministic():
    settings = PipelineSettings(profile="quick", impact_duration=0.01)
    one = CostModel.from_settings(settings)
    two = CostModel.from_settings(settings)
    assert dict(one.per_kind) == dict(two.per_kind)
    assert set(one.per_kind) == set(PRODUCT_KINDS)
    assert one.source == "settings"


def test_stage_two_kinds_cost_more_than_solo_runs():
    model = CostModel.from_settings(PipelineSettings(profile="quick"))
    assert model.cost_of("degradation/fftw/P1xM1xB2.5e+06") > model.cost_of(
        "impact/fftw"
    )
    assert model.cost_of("pair/fftw/mcb") > model.cost_of("baseline/fftw")


def test_costs_for_aligns_with_key_order():
    model = CostModel.from_settings(PipelineSettings(profile="quick"))
    keys = ["calibration", "pair/a/b", "impact/x"]
    assert model.costs_for(keys) == [model.cost_of(k) for k in keys]


def test_unknown_kind_raises():
    model = CostModel.from_settings(PipelineSettings(profile="quick"))
    with pytest.raises(ConfigurationError):
        model.cost_of("mystery/thing")


def test_missing_kind_rejected():
    with pytest.raises(ConfigurationError):
        CostModel(per_kind={"impact": 1.0})


def test_from_telemetry_report_uses_observed_task_means(tmp_path):
    report = {
        "version": 1,
        "spans": {
            "records": [
                {"name": "task:analytic:pair/fftw/mcb", "dur": 2.0},
                {"name": "task:analytic:pair/mcb/fftw", "dur": 4.0},
                {"name": "task:impact/fftw", "dur": 0.5},
                {"name": "stage:measurements", "dur": 99.0},  # not a task
            ]
        },
    }
    path = tmp_path / "telemetry.json"
    path.write_text(json.dumps(report))
    settings = PipelineSettings(profile="quick")
    model = CostModel.from_telemetry_report(path, settings)
    assert model.cost_of("pair/a/b") == pytest.approx(3.0)  # mean of 2 and 4
    assert model.cost_of("impact/x") == pytest.approx(0.5)
    # Kinds the report never ran fall back to the settings estimate.
    fallback = CostModel.from_settings(settings)
    assert model.cost_of("calibration") == fallback.cost_of("calibration")
    assert model.source == str(path)


def test_from_telemetry_report_without_tasks_needs_settings(tmp_path):
    path = tmp_path / "telemetry.json"
    path.write_text(json.dumps({"version": 1, "spans": {"records": []}}))
    with pytest.raises(ConfigurationError):
        CostModel.from_telemetry_report(path)
