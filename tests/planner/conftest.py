"""Shared fixtures for planner tests: a small, fast analytic pipeline.

The analytic engine makes every experiment a closed-form evaluation, so
planned-campaign tests run whole multi-round campaigns in well under a
second while staying bit-deterministic.
"""

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig


#: Six configs spanning the utilization axis (distinct sleep cycles and
#: partner counts → distinct measured utilizations).
CATALOG = [
    CompressionConfig(1, 1, 2.5e7),
    CompressionConfig(1, 1, 2.5e6),
    CompressionConfig(2, 1, 2.5e6),
    CompressionConfig(2, 1, 2.5e5),
    CompressionConfig(3, 1, 2.5e5),
    CompressionConfig(3, 2, 2.5e5),
]


def make_pipeline(cache_path=None, seed=0):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=seed,
            impact_duration=0.005,
            signature_duration=0.005,
            calibration_duration=0.005,
            probe_interval=0.1 * MS,
            engine="analytic",
        ),
        machine_config=small_test_config(seed=seed),
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "mcb": MCB(iterations=2, track_compute=2e-4),
        },
        catalog=list(CATALOG),
        cache_path=cache_path,
    )


@pytest.fixture
def pipeline(tmp_path):
    return make_pipeline(cache_path=tmp_path / "cache")
