"""Strategy unit tests: deterministic, uncertainty-guided, cost-aware."""

import math

from repro.analysis.degradation import fit_degradation_trend
from repro.planner import (
    CostModel,
    GreedyCostPlanner,
    PlanContext,
    UncertaintyPlanner,
    available_planners,
    get_planner,
    holdout_schedule,
)
from repro.core.experiments import PipelineSettings


def _context(fits, degradations, utilization, apps=("a", "b"), refused=()):
    labels = tuple(sorted(utilization))
    complete = tuple(
        label
        for label in labels
        if all(label in degradations.get(app, {}) for app in apps)
    )
    return PlanContext(
        round_index=1,
        app_names=tuple(apps),
        catalog_labels=labels,
        utilization=utilization,
        degradations=degradations,
        complete_labels=complete,
        fits=fits,
        refused=frozenset(refused),
        cost_model=CostModel.from_settings(PipelineSettings(profile="quick")),
        seed=0,
    )


def _noisy_fit(xs, noise):
    # Points on y = 10x with alternating residuals of the given magnitude.
    points = [
        (x, 10.0 * x + (noise if i % 2 else -noise)) for i, x in enumerate(xs)
    ]
    return fit_degradation_trend(points)


def test_registry_exposes_both_strategies():
    assert available_planners() == ("greedy", "uncertainty")
    assert get_planner("uncertainty").name == "uncertainty"
    assert get_planner("greedy").name == "greedy"


def test_holdout_schedule_is_seed_deterministic_and_complete():
    apps = ("a", "b", "c")
    one = holdout_schedule(apps, seed=7)
    two = holdout_schedule(apps, seed=7)
    other = holdout_schedule(apps, seed=8)
    assert one == two
    assert sorted(one) == sorted((x, y) for x in apps for y in apps)
    assert one != other  # different seed, different order


def test_uncertainty_targets_the_widest_confidence_band():
    # Fit measured at U ∈ {0.1, 0.2, 0.3}: candidates far from the measured
    # mass (U=0.9) have the widest band and must win over interior ones.
    fit = _noisy_fit([0.1, 0.2, 0.3], noise=1.0)
    measured = {"L1": 1.0, "L2": 2.0, "L3": 3.0}
    degradations = {"a": dict(measured), "b": dict(measured)}
    utilization = {
        "L1": 0.1,
        "L2": 0.2,
        "L3": 0.3,
        "far": 0.9,
        "near": 0.25,
    }
    context = _context({"a": fit, "b": fit}, degradations, utilization)
    proposal = UncertaintyPlanner(labels_per_round=1).propose(context, None)
    assert proposal.labels == ("far",)
    assert set(proposal.keys) == {"degradation/a/far", "degradation/b/far"}


def test_uncertainty_prefers_unfit_apps_first():
    # App "b" has no fit at all → infinite stderr everywhere → any label
    # completing b's curve outranks a finite band; ties break by label.
    fit = _noisy_fit([0.1, 0.5, 0.9], noise=0.01)
    degradations = {
        "a": {"L1": 1.0, "L2": 5.0, "L3": 9.0},
        "b": {},
    }
    utilization = {"L1": 0.1, "L2": 0.5, "L3": 0.9}
    context = _context({"a": fit}, degradations, utilization)
    proposal = UncertaintyPlanner(labels_per_round=2).propose(context, None)
    assert proposal.labels == ("L1", "L2")  # inf scores, label tie-break


def test_refused_keys_are_never_proposed():
    degradations = {"a": {}, "b": {}}
    utilization = {"L1": 0.2}
    context = _context(
        {}, degradations, utilization, refused={"degradation/a/L1"}
    )
    proposal = UncertaintyPlanner().propose(context, None)
    assert proposal.keys == ("degradation/b/L1",)


def test_empty_proposal_when_everything_measured():
    degradations = {"a": {"L1": 1.0}, "b": {"L1": 2.0}}
    context = _context({}, degradations, {"L1": 0.2})
    assert not UncertaintyPlanner().propose(context, None)
    assert not GreedyCostPlanner().propose(context, None)


def test_greedy_fills_the_largest_utilization_gap():
    # Measured coverage at U ∈ {0.1, 0.2}; candidates at 0.25 and 0.8 with
    # equal cost → the 0.8 candidate fills a far larger gap.
    measured = {"L1": 1.0, "L2": 2.0}
    degradations = {"a": dict(measured), "b": dict(measured)}
    utilization = {"L1": 0.1, "L2": 0.2, "mid": 0.25, "far": 0.8}
    context = _context({}, degradations, utilization)
    proposal = GreedyCostPlanner(labels_per_round=1).propose(context, None)
    assert proposal.labels == ("far",)


def test_greedy_recomputes_coverage_after_each_pick():
    measured = {"L1": 1.0}
    degradations = {"a": dict(measured), "b": dict(measured)}
    utilization = {"L1": 0.5, "lo": 0.1, "hi": 0.9, "lo2": 0.12}
    context = _context({}, degradations, utilization)
    proposal = GreedyCostPlanner(labels_per_round=2).propose(context, None)
    # After picking one extreme, the *other* extreme is the biggest gap —
    # not the near-duplicate of the first pick.
    assert set(proposal.labels) == {"lo", "hi"}


def test_proposals_are_deterministic():
    fit = _noisy_fit([0.1, 0.5, 0.9], noise=0.5)
    measured = {"L1": 1.0, "L2": 5.0, "L3": 9.0}
    degradations = {"a": dict(measured), "b": dict(measured)}
    utilization = {"L1": 0.1, "L2": 0.5, "L3": 0.9, "c1": 0.3, "c2": 0.7}
    for planner in (UncertaintyPlanner(), GreedyCostPlanner()):
        context = _context({"a": fit, "b": fit}, degradations, utilization)
        first = planner.propose(context, None)
        second = planner.propose(context, None)
        assert first.keys == second.keys
        assert first.labels == second.labels
