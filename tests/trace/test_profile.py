"""Tests for workload profiling through the tracer."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.mpi import MPIWorld
from repro.trace import StateTracer
from repro.trace.profile import profile_workload, render_profile
from repro.workloads import FFTW, MCB, Workload

CFG = small_test_config()


class _Noop(Workload):
    """A zero-length workload: every rank finishes without doing anything."""

    name = "noop"

    def build(self, ctx):
        return None
        yield  # pragma: no cover - makes build a generator function


def test_mcb_profile_is_compute_dominated():
    profile = profile_workload(CFG, MCB(iterations=3, track_compute=3e-4))
    assert profile.compute_fraction > 0.7
    assert not profile.comm_bound
    assert profile.rank_count == 8
    assert profile.elapsed > 0


def test_fftw_profile_is_wait_dominated():
    profile = profile_workload(CFG, FFTW(iterations=1, pack_compute=1e-5))
    assert profile.comm_bound
    assert profile.wait_fraction > 0.5


def test_profile_per_rank_breakdown():
    profile = profile_workload(CFG, MCB(iterations=2, track_compute=2e-4))
    assert set(profile.per_rank_wait) == set(range(8))
    assert all(0 <= value <= 1 for value in profile.per_rank_wait.values())


def test_tracer_disabled_by_default_records_nothing():
    machine = Machine(CFG)
    app = MCB(iterations=1, track_compute=1e-4)
    world = MPIWorld.create(machine, app.preferred_placement(CFG), name="x")
    job = world.launch(app)
    machine.sim.run_until_event(job.done)
    assert world.tracer is None  # nothing was traced, no overhead


def test_blocking_wait_intervals_recorded():
    machine = Machine(CFG)
    tracer = StateTracer()
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="w", tracer=tracer)

    def workload(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(1e-4)
            yield from ctx.comm.send(2, 1024, tag=1)
        elif ctx.rank == 2:
            yield from ctx.comm.recv(0, tag=1)  # blocks ~1e-4 s
        return None
        yield

    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    assert tracer.totals(rank=2)["wait"] == pytest.approx(1e-4, rel=0.2)
    assert tracer.totals(rank=0)["compute"] == pytest.approx(1e-4, rel=0.01)


def test_render_profile_text():
    profile = profile_workload(CFG, MCB(iterations=2, track_compute=2e-4))
    text = render_profile(profile)
    assert "mcb" in text
    assert "compute" in text and "wait" in text
    assert "%" in text


def test_zero_length_run_yields_degenerate_profile():
    # Regression: a run with no traced intervals used to raise instead of
    # returning a well-formed (zeroed) profile.
    profile = profile_workload(CFG, _Noop())
    assert profile.degenerate
    assert profile.compute_fraction == 0.0
    assert profile.wait_fraction == 0.0
    assert profile.sleep_fraction == 0.0
    assert profile.per_rank_wait == {}
    assert not profile.comm_bound
    assert "degenerate" in render_profile(profile)


def test_normal_profile_is_not_degenerate():
    profile = profile_workload(CFG, MCB(iterations=1, track_compute=1e-4))
    assert not profile.degenerate
    assert "degenerate" not in render_profile(profile)
