"""Tests for the state tracer."""

import pytest

from repro.errors import ExperimentError
from repro.trace import COMPUTE, SLEEP, WAIT, StateTracer


def test_record_and_totals():
    tracer = StateTracer()
    tracer.record(0, COMPUTE, 0.0, 2.0)
    tracer.record(0, WAIT, 2.0, 3.0)
    tracer.record(1, COMPUTE, 0.0, 1.0)
    totals = tracer.totals()
    assert totals[COMPUTE] == pytest.approx(3.0)
    assert totals[WAIT] == pytest.approx(1.0)
    assert totals[SLEEP] == 0.0


def test_per_rank_totals():
    tracer = StateTracer()
    tracer.record(0, COMPUTE, 0.0, 2.0)
    tracer.record(1, WAIT, 0.0, 4.0)
    assert tracer.totals(rank=0)[COMPUTE] == 2.0
    assert tracer.totals(rank=0)[WAIT] == 0.0
    assert tracer.totals(rank=1)[WAIT] == 4.0


def test_fractions_normalized():
    tracer = StateTracer()
    tracer.record(0, COMPUTE, 0.0, 3.0)
    tracer.record(0, WAIT, 3.0, 4.0)
    fractions = tracer.fractions()
    assert fractions[COMPUTE] == pytest.approx(0.75)
    assert fractions[WAIT] == pytest.approx(0.25)
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fractions_of_empty_tracer_are_zero():
    fractions = StateTracer().fractions()
    assert all(value == 0.0 for value in fractions.values())


def test_wait_fraction():
    tracer = StateTracer()
    tracer.record(0, WAIT, 0.0, 1.0)
    tracer.record(0, COMPUTE, 1.0, 2.0)
    assert tracer.wait_fraction() == pytest.approx(0.5)


def test_invalid_state_rejected():
    with pytest.raises(ExperimentError, match="unknown"):
        StateTracer().record(0, "daydreaming", 0.0, 1.0)


def test_backwards_interval_rejected():
    with pytest.raises(ExperimentError, match="before"):
        StateTracer().record(0, COMPUTE, 2.0, 1.0)


def test_zero_length_interval_allowed():
    tracer = StateTracer()
    tracer.record(0, WAIT, 1.0, 1.0)
    assert tracer.interval_count == 1


def test_intervals_filter_and_ranks():
    tracer = StateTracer()
    tracer.record(3, COMPUTE, 0.0, 1.0)
    tracer.record(1, COMPUTE, 0.0, 1.0)
    tracer.record(3, WAIT, 1.0, 2.0)
    assert len(tracer.intervals(rank=3)) == 2
    assert tracer.ranks() == [1, 3]


def test_clear():
    tracer = StateTracer()
    tracer.record(0, COMPUTE, 0.0, 1.0)
    tracer.clear()
    assert tracer.interval_count == 0
