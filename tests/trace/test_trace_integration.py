"""Integration of the tracer with probes and the prediction engine."""

import pytest

from repro.cluster import Machine, PerSocketPlacement, small_test_config
from repro.core.measurement import LatencyCollector
from repro.mpi import MPIWorld
from repro.trace import SLEEP, WAIT, StateTracer
from repro.units import MS
from repro.workloads import ImpactB

CFG = small_test_config()


def test_traced_probe_records_sleep_and_wait():
    machine = Machine(CFG)
    tracer = StateTracer()
    collector = LatencyCollector()
    probe = ImpactB(collector, interval=0.1 * MS)
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="probe", tracer=tracer)
    world.launch(probe)
    machine.sim.run(until=0.01)

    totals = tracer.totals()
    # Initiators sleep between exchanges; responders block in recv.
    assert totals[SLEEP] > 0
    assert totals[WAIT] > 0
    # The probe spends almost all its time idle or blocked, not computing.
    fractions = tracer.fractions()
    assert fractions["compute"] < 0.05


def test_responders_wait_initiators_sleep():
    machine = Machine(CFG)
    tracer = StateTracer()
    collector = LatencyCollector()
    probe = ImpactB(collector, interval=0.1 * MS, jitter=False, warmup=False)
    world = MPIWorld.create(machine, PerSocketPlacement(1), name="probe", tracer=tracer)
    world.launch(probe)
    machine.sim.run(until=0.01)

    # Node pairs: (0,1), (2,3); ranks 0,1 on node 0 are initiators, ranks
    # 2,3 on node 1 are responders (and so on).
    initiator_rank, responder_rank = 0, 2
    assert tracer.totals(initiator_rank)[SLEEP] > tracer.totals(responder_rank)[SLEEP]
    assert tracer.totals(responder_rank)[WAIT] > tracer.totals(initiator_rank)[WAIT]


def test_extended_models_fit_through_engine():
    """The prediction engine accepts the extended model list."""
    import numpy as np

    from repro.core.experiments import CompressionObservation
    from repro.core.experiments.impact import ImpactResult
    from repro.core.measurement import ProbeSignature
    from repro.core.models import PredictionEngine, extended_models
    from repro.queueing import ServiceEstimate, sojourn_from_utilization
    from repro.workloads import CompressionConfig

    calibration = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=8e-7, sample_count=50)
    rng = np.random.default_rng(0)

    def signature(rho, seed):
        mean = sojourn_from_utilization(rho, calibration.rate, calibration.variance)
        samples = np.random.default_rng(seed).normal(mean, mean * 0.02, 200).clip(1e-9)
        return ProbeSignature.from_samples(samples, calibration)

    observations, degradations = [], {"app": {}}
    for index, rho in enumerate((0.2, 0.6)):
        obs = CompressionObservation(
            config=CompressionConfig(index + 1, 1, 2.5e5),
            impact=ImpactResult(signature(rho, index), rho, 0.01),
        )
        observations.append(obs)
        degradations["app"][obs.label] = 10.0 * (index + 1)

    engine = PredictionEngine(
        observations,
        degradations,
        {"app": signature(0.4, 9)},
        models=extended_models(calibration),
    )
    assert "PhaseAwareQueue" in engine.model_names
    assert len(engine.model_names) == 5
    value = engine.predict("app", "app", "PhaseAwareQueue")
    assert 5.0 <= value <= 25.0
