"""Tests for :mod:`repro.analysis.errors` (the Fig. 8/9 statistics):
pairing completeness, hand-computed quartiles, and threshold boundaries."""

import pytest

from repro.analysis import ErrorSummary, absolute_errors, fraction_within, summarize_errors
from repro.errors import ExperimentError


class TestAbsoluteErrors:
    def test_absolute_differences(self):
        measured = {("a", "b"): 10.0, ("b", "a"): 4.0}
        predicted = {("a", "b"): 7.5, ("b", "a"): 9.0}
        assert absolute_errors(measured, predicted) == {
            ("a", "b"): 2.5,
            ("b", "a"): 5.0,
        }

    def test_missing_pairing_raises(self):
        measured = {("a", "b"): 10.0, ("b", "a"): 4.0}
        predicted = {("a", "b"): 7.5}
        with pytest.raises(ExperimentError, match="missing"):
            absolute_errors(measured, predicted)

    def test_extra_predictions_are_ignored(self):
        measured = {("a", "b"): 1.0}
        predicted = {("a", "b"): 0.0, ("z", "z"): 99.0}
        assert absolute_errors(measured, predicted) == {("a", "b"): 1.0}

    def test_empty_measurements_give_empty_errors(self):
        assert absolute_errors({}, {("a", "b"): 1.0}) == {}


class TestSummarizeErrors:
    def test_exact_quartiles_on_five_points(self):
        # Quartile positions land exactly on samples: no interpolation.
        summary = summarize_errors([0.0, 10.0, 20.0, 30.0, 40.0])
        assert summary == ErrorSummary(
            minimum=0.0, q1=10.0, median=20.0, q3=30.0, maximum=40.0,
            mean=20.0, count=5,
        )
        assert summary.iqr == 20.0

    def test_interpolated_quartiles_on_four_points(self):
        # numpy's linear interpolation, hand-computed for [1, 2, 3, 4]:
        # q1 at index 0.75 → 1.75; median at 1.5 → 2.5; q3 at 2.25 → 3.25.
        summary = summarize_errors([4.0, 1.0, 3.0, 2.0])  # order must not matter
        assert summary.q1 == pytest.approx(1.75)
        assert summary.median == pytest.approx(2.5)
        assert summary.q3 == pytest.approx(3.25)
        assert summary.mean == pytest.approx(2.5)
        assert summary.count == 4

    def test_even_count_median_is_midpoint(self):
        # The bug the pipeline script had: values[n//2] picks the *upper*
        # of the two middle samples; the true median is their midpoint.
        values = [1.0, 2.0, 10.0, 20.0]
        summary = summarize_errors(values)
        assert summary.median == pytest.approx(6.0)
        assert summary.median != sorted(values)[len(values) // 2]

    def test_single_value_collapses_all_statistics(self):
        summary = summarize_errors([3.5])
        assert (
            summary.minimum == summary.q1 == summary.median
            == summary.q3 == summary.maximum == summary.mean == 3.5
        )
        assert summary.count == 1
        assert summary.iqr == 0.0

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            summarize_errors([])

    def test_negative_errors_rejected(self):
        with pytest.raises(ExperimentError, match="negative"):
            summarize_errors([1.0, -0.5])


class TestFractionWithin:
    def test_threshold_boundary_is_inclusive(self):
        # The paper quotes "error lower than 10%"; the implementation counts
        # errors *at or below* the threshold.
        errors = [1.0, 2.0, 3.0]
        assert fraction_within(errors, 2.0) == pytest.approx(2.0 / 3.0)
        assert fraction_within(errors, 1.9999) == pytest.approx(1.0 / 3.0)

    def test_all_and_none(self):
        errors = [1.0, 2.0, 3.0]
        assert fraction_within(errors, 3.0) == 1.0
        assert fraction_within(errors, 0.5) == 0.0

    def test_zero_threshold_counts_exact_zeros(self):
        assert fraction_within([0.0, 0.0, 1.0], 0.0) == pytest.approx(2.0 / 3.0)

    def test_empty_raises(self):
        with pytest.raises(ExperimentError):
            fraction_within([], 1.0)
