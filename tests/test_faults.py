"""Tests for the deterministic fault-injection plan (repro.faults)."""

import json

import pytest

from repro.errors import ConfigurationError, InjectedFault
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    active_fault_plan,
    current_attempt,
    set_current_attempt,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def _clean_activation(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_fault_plan(None)
    yield
    set_fault_plan(None)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def test_parse_full_plan():
    plan = FaultPlan.from_json(
        json.dumps(
            {
                "fail": {"pair/a/b": "*", "impact/a": [1, 3]},
                "crash": {"baseline/a": [1]},
                "hang": {"comp_sig/x": [2]},
                "hang_seconds": 7.5,
                "corrupt_shards": ["degradation"],
            }
        )
    )
    assert plan.fail["pair/a/b"] is None  # every attempt
    assert plan.fail["impact/a"] == frozenset({1, 3})
    assert plan.crash["baseline/a"] == frozenset({1})
    assert plan.hang_seconds == 7.5
    assert plan.corrupt_shards == ("degradation",)
    assert not plan.is_empty()


def test_parse_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown field"):
        FaultPlan.from_dict({"explode": {}})


def test_parse_rejects_bad_attempts():
    with pytest.raises(ConfigurationError, match="attempts"):
        FaultPlan.from_dict({"fail": {"k": "sometimes"}})


def test_parse_rejects_non_json():
    with pytest.raises(ConfigurationError, match="not valid JSON"):
        FaultPlan.from_json("{nope")


def test_parse_rejects_non_object():
    with pytest.raises(ConfigurationError, match="must be an object"):
        FaultPlan.from_json("[1, 2]")


# ----------------------------------------------------------------------
# Injection behavior
# ----------------------------------------------------------------------
def test_fail_fires_only_on_listed_attempts():
    plan = FaultPlan.from_dict({"fail": {"impact/a": [1]}})
    with pytest.raises(InjectedFault, match="impact/a"):
        plan.on_experiment("impact/a", 1)
    plan.on_experiment("impact/a", 2)  # retry attempt passes clean
    plan.on_experiment("impact/b", 1)  # other keys untouched


def test_fail_star_fires_on_every_attempt():
    plan = FaultPlan.from_dict({"fail": {"pair/a/b": "*"}})
    for attempt in (1, 2, 5):
        with pytest.raises(InjectedFault):
            plan.on_experiment("pair/a/b", attempt)


def test_shard_corruption_is_consumed_once_per_group():
    plan = FaultPlan.from_dict({"corrupt_shards": ["degradation", "pair"]})
    assert plan.take_shard_corruption("degradation")
    assert not plan.take_shard_corruption("degradation")
    assert not plan.take_shard_corruption("impact")
    assert plan.take_shard_corruption("pair")


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
def test_no_plan_by_default():
    assert active_fault_plan() is None


def test_env_var_inline_json(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps({"fail": {"k": [1]}}))
    plan = active_fault_plan()
    assert plan is not None and plan.fail["k"] == frozenset({1})
    # Cached: same env value returns the same (stateful) instance.
    assert active_fault_plan() is plan


def test_env_var_file_reference(monkeypatch, tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"corrupt_shards": ["impact"]}))
    monkeypatch.setenv(ENV_VAR, f"@{path}")
    plan = active_fault_plan()
    assert plan is not None and plan.corrupt_shards == ("impact",)


def test_empty_env_plan_is_no_plan(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "{}")
    assert active_fault_plan() is None


def test_programmatic_override_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps({"fail": {"env": "*"}}))
    override = FaultPlan.from_dict({"fail": {"override": "*"}})
    set_fault_plan(override)
    assert active_fault_plan() is override
    set_fault_plan(None)
    assert active_fault_plan().fail == {"env": None}


# ----------------------------------------------------------------------
# Attempt context
# ----------------------------------------------------------------------
def test_attempt_context_defaults_to_one():
    assert current_attempt() == 1


def test_attempt_context_roundtrip():
    set_current_attempt(3)
    assert current_attempt() == 3
    set_current_attempt(1)
