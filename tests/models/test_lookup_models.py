"""Tests for the three look-up-table models using synthetic signatures."""

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation, ImpactExperiment
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import ProbeSignature
from repro.core.models import AverageLT, AverageStDevLT, PDFLT
from repro.errors import ModelError
from repro.units import US
from repro.workloads import CompressionConfig


def _signature(mean_us, spread_us=0.3, n=400, seed=0):
    rng = np.random.default_rng(seed)
    samples = rng.normal(mean_us * US, spread_us * US, n).clip(0.05 * US)
    return ProbeSignature.from_samples(samples)


def _observation(label_p, mean_us, spread_us=0.3, seed=0):
    config = CompressionConfig(partners=label_p, messages=1, sleep_cycles=2.5e5)
    impact = ImpactResult(
        signature=_signature(mean_us, spread_us, seed=seed),
        true_utilization=0.0,
        sim_time=0.01,
    )
    return CompressionObservation(config=config, impact=impact)


@pytest.fixture()
def observations():
    # Three configs with well-separated mean latencies: 1µs, 3µs, 6µs.
    return [
        _observation(1, 1.0, seed=1),
        _observation(4, 3.0, seed=2),
        _observation(7, 6.0, seed=3),
    ]


@pytest.fixture()
def degradations(observations):
    labels = [obs.label for obs in observations]
    return {
        "appx": {labels[0]: 5.0, labels[1]: 20.0, labels[2]: 60.0},
        "appy": {labels[0]: 1.0, labels[1]: 2.0, labels[2]: 4.0},
    }


def test_average_lt_picks_closest_mean(observations, degradations):
    model = AverageLT().fit(observations, degradations)
    assert model.predict("appx", _signature(1.1, seed=9)) == 5.0
    assert model.predict("appx", _signature(2.8, seed=9)) == 20.0
    assert model.predict("appx", _signature(9.0, seed=9)) == 60.0
    assert model.predict("appy", _signature(5.5, seed=9)) == 4.0


def test_avgstddev_lt_uses_interval_overlap(observations, degradations):
    model = AverageStDevLT().fit(observations, degradations)
    # A wide signature centred at 3µs overlaps the middle config most.
    assert model.predict("appx", _signature(3.0, spread_us=0.5, seed=9)) == 20.0


def test_avgstddev_lt_falls_back_when_no_overlap(observations, degradations):
    model = AverageStDevLT().fit(observations, degradations)
    # Far beyond every interval: falls back to closest mean (the 6µs config).
    assert model.predict("appx", _signature(50.0, spread_us=0.01, seed=9)) == 60.0


def test_pdf_lt_matches_distribution(observations, degradations):
    model = PDFLT().fit(observations, degradations)
    assert model.predict("appx", _signature(6.0, seed=9)) == 60.0
    assert model.predict("appx", _signature(1.0, seed=9)) == 5.0


def test_pdf_lt_falls_back_when_mass_out_of_range(observations, degradations):
    model = PDFLT().fit(observations, degradations)
    # All mass beyond the shared bins -> zero affinity everywhere -> fallback.
    assert model.predict("appx", _signature(500.0, spread_us=0.01, seed=9)) == 60.0


def test_unfitted_model_raises(observations):
    with pytest.raises(ModelError, match="not been fitted"):
        AverageLT().predict("appx", _signature(1.0))


def test_fit_validates_missing_degradations(observations):
    with pytest.raises(ModelError, match="lacks degradation"):
        AverageLT().fit(observations, {"appx": {observations[0].label: 1.0}})


def test_fit_rejects_empty_observations():
    with pytest.raises(ModelError, match="empty"):
        AverageLT().fit([], {})


def test_fit_rejects_duplicate_labels(observations, degradations):
    with pytest.raises(ModelError, match="duplicate"):
        AverageLT().fit([observations[0], observations[0]], degradations)


def test_unknown_app_raises(observations, degradations):
    model = AverageLT().fit(observations, degradations)
    with pytest.raises(ModelError):
        model.predict("nosuchapp", _signature(1.0, seed=9))
