"""Tests for the phase-aware queue model extension."""

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import LatencyHistogram, ProbeSignature, paper_bin_edges
from repro.core.models import PhaseAwareQueueModel, QueueModel, split_phases
from repro.queueing import ServiceEstimate, sojourn_from_utilization
from repro.workloads import CompressionConfig

CAL = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=0.8e-6, sample_count=200)


def _samples_at_utilization(rho, n, rng):
    mean = sojourn_from_utilization(rho, CAL.rate, CAL.variance)
    return rng.normal(mean, mean * 0.02, n).clip(1e-9)


def _signature(samples):
    return ProbeSignature.from_samples(samples, CAL)


def _observation(p, rho, seed):
    rng = np.random.default_rng(seed)
    config = CompressionConfig(partners=p, messages=1, sleep_cycles=2.5e5)
    return CompressionObservation(
        config=config,
        impact=ImpactResult(
            signature=_signature(_samples_at_utilization(rho, 400, rng)),
            true_utilization=rho,
            sim_time=0.01,
        ),
    )


@pytest.fixture()
def fitted_pair():
    observations = [
        _observation(1, 0.1, seed=1),
        _observation(4, 0.5, seed=2),
        _observation(7, 0.9, seed=3),
    ]
    labels = [obs.label for obs in observations]
    # A convex degradation curve (like FFTW's in Fig. 7).
    degradations = {"app": {labels[0]: 2.0, labels[1]: 30.0, labels[2]: 200.0}}
    plain = QueueModel().fit(observations, degradations)
    aware = PhaseAwareQueueModel(CAL).fit(observations, degradations)
    return plain, aware


# ----------------------------------------------------------------------
# split_phases
# ----------------------------------------------------------------------
def test_split_unimodal_returns_single_phase():
    rng = np.random.default_rng(0)
    hist = LatencyHistogram.from_values(
        rng.normal(2e-6, 0.1e-6, 5000).clip(1e-9), paper_bin_edges()
    )
    phases = split_phases(hist)
    assert len(phases) == 1
    weight, mean = phases[0]
    assert weight == pytest.approx(1.0)
    assert mean == pytest.approx(2e-6, rel=0.15)


def test_split_bimodal_finds_both_modes():
    rng = np.random.default_rng(1)
    low = rng.normal(1e-6, 0.1e-6, 7000)
    high = rng.normal(8e-6, 0.3e-6, 3000)
    hist = LatencyHistogram.from_values(
        np.concatenate([low, high]).clip(1e-9), paper_bin_edges()
    )
    phases = split_phases(hist)
    assert len(phases) == 2
    (w_low, m_low), (w_high, m_high) = phases
    assert w_low == pytest.approx(0.7, abs=0.05)
    assert w_high == pytest.approx(0.3, abs=0.05)
    assert m_low == pytest.approx(1e-6, rel=0.3)
    assert m_high == pytest.approx(8e-6, rel=0.15)


def test_split_weights_sum_to_one():
    rng = np.random.default_rng(2)
    hist = LatencyHistogram.from_values(
        rng.exponential(3e-6, 2000).clip(1e-9), paper_bin_edges()
    )
    phases = split_phases(hist)
    assert sum(weight for weight, _mean in phases) == pytest.approx(1.0)


def test_split_handles_overflow_mass():
    hist = LatencyHistogram.from_values([1e-6] * 50 + [50e-6] * 50, paper_bin_edges())
    phases = split_phases(hist)
    assert len(phases) == 2
    assert phases[1][1] > 12e-6  # slow phase sits beyond the last edge


# ----------------------------------------------------------------------
# PhaseAwareQueueModel
# ----------------------------------------------------------------------
def test_reduces_to_queue_model_for_steady_corunner(fitted_pair):
    plain, aware = fitted_pair
    rng = np.random.default_rng(5)
    steady = _signature(_samples_at_utilization(0.5, 500, rng))
    assert aware.predict("app", steady) == pytest.approx(
        plain.predict("app", steady), rel=0.2
    )


def test_phasing_corunner_predicted_lower_than_mean_based(fitted_pair):
    """An AMG-like co-runner (mostly idle + busy bursts) must be predicted
    to hurt less than a constant co-runner with the same *mean* latency —
    the exact failure the paper reports for FFTW+AMG."""
    plain, aware = fitted_pair
    rng = np.random.default_rng(6)
    idle = _samples_at_utilization(0.05, 800, rng)
    busy = _samples_at_utilization(0.9, 200, rng)
    phasing = _signature(np.concatenate([idle, busy]))

    aware_prediction = aware.predict("app", phasing)
    plain_prediction = plain.predict("app", phasing)
    assert aware_prediction < plain_prediction

    # And the phase-aware value approximates the true weighted combination.
    expected = 0.8 * 2.0 + 0.2 * 200.0  # ~41.6 using the fitted curve ends
    assert aware_prediction == pytest.approx(expected, rel=0.5)


def test_nearest_mode_supported(fitted_pair):
    _plain, _aware = fitted_pair
    observations = _aware.table.observations
    degradations = {"app": _aware.table.degradations["app"]}
    nearest = PhaseAwareQueueModel(CAL, interpolate=False).fit(observations, degradations)
    rng = np.random.default_rng(7)
    steady = _signature(_samples_at_utilization(0.48, 400, rng))
    assert nearest.predict("app", steady) in {2.0, 30.0, 200.0}
