"""Tests for the queue-theoretic model."""

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import ProbeSignature
from repro.core.models import QueueModel
from repro.errors import ModelError
from repro.queueing import ServiceEstimate, sojourn_from_utilization
from repro.units import US
from repro.workloads import CompressionConfig

CAL = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=0.8e-6, sample_count=200)


def _signature_at_utilization(rho, n=300, seed=0):
    """Synthesize probe samples whose mean inverts to utilization ``rho``."""
    target_mean = sojourn_from_utilization(rho, CAL.rate, CAL.variance)
    rng = np.random.default_rng(seed)
    samples = rng.normal(target_mean, target_mean * 0.001, n).clip(1e-9)
    return ProbeSignature.from_samples(samples, CAL)


def _observation(p, rho, seed=0):
    config = CompressionConfig(partners=p, messages=1, sleep_cycles=2.5e5)
    return CompressionObservation(
        config=config,
        impact=ImpactResult(
            signature=_signature_at_utilization(rho, seed=seed),
            true_utilization=rho,
            sim_time=0.01,
        ),
    )


@pytest.fixture()
def fitted():
    observations = [
        _observation(1, 0.2, seed=1),
        _observation(4, 0.5, seed=2),
        _observation(7, 0.8, seed=3),
    ]
    labels = [obs.label for obs in observations]
    degradations = {"app": {labels[0]: 10.0, labels[1]: 40.0, labels[2]: 100.0}}
    return observations, degradations


def test_synthesized_utilizations_are_accurate():
    sig = _signature_at_utilization(0.5)
    assert sig.utilization == pytest.approx(0.5, abs=0.01)


def test_interpolates_between_configs(fitted):
    observations, degradations = fitted
    model = QueueModel(interpolate=True).fit(observations, degradations)
    # Halfway between rho=0.2 (10%) and rho=0.5 (40%) -> ~25%.
    prediction = model.predict("app", _signature_at_utilization(0.35, seed=9))
    assert prediction == pytest.approx(25.0, abs=3.0)


def test_nearest_mode_matches_paper_rule(fitted):
    observations, degradations = fitted
    model = QueueModel(interpolate=False).fit(observations, degradations)
    assert model.predict("app", _signature_at_utilization(0.45, seed=9)) == 40.0
    assert model.predict("app", _signature_at_utilization(0.25, seed=9)) == 10.0


def test_clamps_below_and_above_range(fitted):
    observations, degradations = fitted
    model = QueueModel().fit(observations, degradations)
    light = model.predict("app", _signature_at_utilization(0.01, seed=9))
    heavy = model.predict("app", _signature_at_utilization(0.97, seed=9))
    assert light == pytest.approx(10.0, abs=2.0)
    assert heavy == pytest.approx(100.0, abs=2.0)


def test_monotone_prediction_for_monotone_curve(fitted):
    observations, degradations = fitted
    model = QueueModel().fit(observations, degradations)
    predictions = [
        model.predict("app", _signature_at_utilization(rho, seed=9))
        for rho in (0.2, 0.4, 0.6, 0.8)
    ]
    assert predictions == sorted(predictions)


def test_uncalibrated_observations_raise_at_fit_time(fitted):
    observations, degradations = fitted
    # Strip the calibration: utilization becomes NaN.  The model rejects it
    # at fit() time, naming the offending config, rather than surprising the
    # first predict() call mid-campaign.
    raw = ProbeSignature.from_samples([1e-6, 2e-6])
    bad = CompressionObservation(
        config=observations[0].config,
        impact=ImpactResult(signature=raw, true_utilization=0.0, sim_time=0.01),
    )
    with pytest.raises(ModelError, match="calibrated") as excinfo:
        QueueModel().fit([bad], {"app": {bad.label: 1.0}})
    assert bad.label in str(excinfo.value)


def test_uncalibrated_target_raises(fitted):
    observations, degradations = fitted
    model = QueueModel().fit(observations, degradations)
    raw = ProbeSignature.from_samples([1e-6, 2e-6])
    with pytest.raises(ModelError, match="utilization"):
        model.predict("app", raw)
