"""Predictions must not depend on catalog or table iteration order.

The fitting products arrive from a cache (dict order), an engine (campaign
order), or a deserialized artifact (file order).  The canonical
:class:`FittedTable` sorts by config label and breaks score ties by label,
so every permutation of the same products yields the same predictions for
all four models — including exact-tie catalogs, which historically
resolved to whichever config happened to be listed first.
"""

import random

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import ProbeSignature
from repro.core.models import AverageLT, AverageStDevLT, PDFLT, QueueModel
from repro.queueing import ServiceEstimate, sojourn_from_utilization

CAL = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=0.8e-6, sample_count=200)


def _signature(rho, seed, spread=0.05):
    target_mean = sojourn_from_utilization(rho, CAL.rate, CAL.variance)
    rng = np.random.default_rng(seed)
    samples = rng.normal(target_mean, target_mean * spread, 400).clip(1e-9)
    return ProbeSignature.from_samples(samples, CAL)


def _observation(partners, rho, seed):
    from repro.workloads import CompressionConfig

    return CompressionObservation(
        config=CompressionConfig(partners=partners, messages=1, sleep_cycles=2.5e5),
        impact=ImpactResult(
            signature=_signature(rho, seed), true_utilization=rho, sim_time=0.01
        ),
    )


def _catalog():
    observations = [
        _observation(p, rho, seed)
        for p, rho, seed in [
            (1, 0.15, 11),
            (2, 0.3, 12),
            (4, 0.45, 13),
            (6, 0.6, 14),
            (8, 0.75, 15),
        ]
    ]
    degradations = {
        "alpha": {obs.label: 5.0 * (i + 1) for i, obs in enumerate(observations)},
        "beta": {obs.label: 3.0 * (i + 1) ** 1.5 for i, obs in enumerate(observations)},
    }
    return observations, degradations


ALL_MODELS = [AverageLT, AverageStDevLT, PDFLT, QueueModel]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
def test_shuffled_catalog_changes_nothing(model_cls):
    observations, degradations = _catalog()
    targets = [_signature(rho, seed=40 + i) for i, rho in enumerate([0.2, 0.5, 0.9])]
    reference = model_cls().fit(observations, degradations)
    expected = [
        reference.predict(app, target)
        for app in ("alpha", "beta")
        for target in targets
    ]

    rng = random.Random(7)
    for _ in range(5):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        # Shuffle the degradation dicts' insertion order too.
        mixed = {
            app: {obs.label: degradations[app][obs.label] for obs in shuffled}
            for app in sorted(degradations, reverse=True)
        }
        model = model_cls().fit(shuffled, mixed)
        got = [
            model.predict(app, target)
            for app in ("alpha", "beta")
            for target in targets
        ]
        assert got == expected


# QueueModel ties are exercised through the paper's nearest-config rule:
# with interpolation, duplicate utilization knots make the interpolant
# degenerate (though still canonical), so "pick one config" only applies to
# nearest mode.
TIE_MODELS = [
    AverageLT,
    AverageStDevLT,
    PDFLT,
    lambda: QueueModel(interpolate=False),
]


@pytest.mark.parametrize("model_cls", TIE_MODELS)
def test_exact_score_ties_resolve_to_lowest_label(model_cls):
    # Two configs with byte-identical signatures (same samples) but distinct
    # labels and distinct measured degradations: every model scores them
    # equally, so only the tie-break rule decides — and it must pick the
    # lexicographically smallest label, whatever order the catalog came in.
    twin_a = _observation(2, 0.5, seed=99)
    twin_b = CompressionObservation(
        config=_observation(4, 0.5, seed=0).config,  # different label
        impact=twin_a.impact,  # identical signature
    )
    assert twin_a.label < twin_b.label
    far = _observation(8, 0.9, seed=98)
    degradations = {
        "app": {twin_a.label: 10.0, twin_b.label: 77.0, far.label: 100.0}
    }
    target = twin_a.impact.signature  # matches both twins with equal score

    for ordering in ([twin_a, twin_b, far], [twin_b, twin_a, far], [far, twin_b, twin_a]):
        model = model_cls().fit(ordering, degradations)
        assert model.predict("app", target) == 10.0
