"""Tests for the PredictionEngine."""

import numpy as np
import pytest

from repro.core.experiments import CompressionObservation
from repro.core.experiments.impact import ImpactResult
from repro.core.measurement import ProbeSignature
from repro.core.models import AverageLT, PredictionEngine, default_models
from repro.errors import ModelError
from repro.queueing import ServiceEstimate, sojourn_from_utilization
from repro.workloads import CompressionConfig

CAL = ServiceEstimate(mean=1e-6, variance=1e-13, minimum=0.8e-6, sample_count=200)


def _signature(rho, seed=0):
    mean = sojourn_from_utilization(rho, CAL.rate, CAL.variance)
    rng = np.random.default_rng(seed)
    return ProbeSignature.from_samples(
        rng.normal(mean, mean * 0.01, 200).clip(1e-9), CAL
    )


def _setup():
    observations = []
    degradations = {"a": {}, "b": {}}
    for index, rho in enumerate((0.2, 0.5, 0.8)):
        config = CompressionConfig(partners=index + 1, messages=1, sleep_cycles=2.5e5)
        obs = CompressionObservation(
            config=config,
            impact=ImpactResult(
                signature=_signature(rho, seed=index), true_utilization=rho, sim_time=0.01
            ),
        )
        observations.append(obs)
        degradations["a"][obs.label] = 10.0 * (index + 1)
        degradations["b"][obs.label] = 1.0 * (index + 1)
    signatures = {"a": _signature(0.75, seed=10), "b": _signature(0.15, seed=11)}
    return observations, degradations, signatures


def test_engine_fits_all_default_models():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    assert set(engine.model_names) == {"AverageLT", "AverageStDevLT", "PDFLT", "Queue"}


def test_predict_pair_returns_all_models():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    predictions = engine.predict_pair("a", "b")
    assert len(predictions) == 4
    assert {p.model for p in predictions} == set(engine.model_names)
    assert all(p.app == "a" and p.other == "b" for p in predictions)


def test_predictions_reflect_co_runner_load():
    """App 'a' should be predicted to suffer more next to heavy 'a' than
    next to light 'b'."""
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    heavy = engine.predict("a", "a", "Queue")
    light = engine.predict("a", "b", "Queue")
    assert heavy > light


def test_predict_all_covers_every_ordered_pair():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    predictions = engine.predict_all()
    # 2 apps x 2 others x 4 models
    assert len(predictions) == 16


def test_unknown_model_raises():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    with pytest.raises(ModelError, match="unknown model"):
        engine.predict("a", "b", "Oracle")


def test_unknown_app_signature_raises():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(observations, degradations, signatures)
    with pytest.raises(ModelError, match="no impact signature"):
        engine.predict("a", "zzz", "AverageLT")


def test_custom_model_list():
    observations, degradations, signatures = _setup()
    engine = PredictionEngine(
        observations, degradations, signatures, models=[AverageLT()]
    )
    assert engine.model_names == ["AverageLT"]
