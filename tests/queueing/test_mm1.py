"""Tests for M/M/1 closed forms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EstimationError
from repro.queueing import MM1


def test_sojourn_time_closed_form():
    queue = MM1(arrival_rate=3.0, service_rate=5.0)
    assert queue.sojourn_time == pytest.approx(0.5)


def test_waiting_plus_service_is_sojourn():
    queue = MM1(arrival_rate=3.0, service_rate=5.0)
    assert queue.waiting_time + 1.0 / queue.service_rate == pytest.approx(queue.sojourn_time)


def test_mean_in_system():
    queue = MM1(arrival_rate=5.0, service_rate=10.0)
    assert queue.mean_in_system == pytest.approx(1.0)  # rho/(1-rho) = 0.5/0.5


def test_probabilities_sum_to_one():
    queue = MM1(arrival_rate=4.0, service_rate=10.0)
    total = sum(queue.prob_n_in_system(n) for n in range(200))
    assert total == pytest.approx(1.0, abs=1e-9)


def test_prob_negative_count_rejected():
    queue = MM1(arrival_rate=1.0, service_rate=2.0)
    with pytest.raises(ValueError):
        queue.prob_n_in_system(-1)


def test_unstable_rejected():
    with pytest.raises(EstimationError):
        MM1(arrival_rate=2.0, service_rate=2.0)


@given(
    lam=st.floats(min_value=0.01, max_value=0.99),
)
def test_property_littles_law(lam):
    queue = MM1(arrival_rate=lam, service_rate=1.0)
    assert queue.mean_in_system == pytest.approx(lam * queue.sojourn_time, rel=1e-9)
    assert queue.mean_queue_length == pytest.approx(lam * queue.waiting_time, rel=1e-9)
