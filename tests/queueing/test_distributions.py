"""Tests for ServiceEstimate calibration statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import EstimationError
from repro.queueing import ServiceEstimate


def test_from_samples_basic_stats():
    est = ServiceEstimate.from_samples([1.0, 2.0, 3.0])
    assert est.mean == pytest.approx(2.0)
    assert est.variance == pytest.approx(1.0)  # ddof=1
    assert est.minimum == 1.0
    assert est.sample_count == 3


def test_rate_is_reciprocal_mean():
    est = ServiceEstimate.from_samples([0.5, 0.5, 0.5, 0.5])
    assert est.rate == pytest.approx(2.0)


def test_scv_and_second_moment():
    est = ServiceEstimate(mean=2.0, variance=1.0, minimum=1.0, sample_count=10)
    assert est.scv == pytest.approx(0.25)
    assert est.second_moment == pytest.approx(5.0)


def test_too_few_samples_rejected():
    with pytest.raises(EstimationError, match="at least 2"):
        ServiceEstimate.from_samples([1.0])


def test_nonpositive_samples_rejected():
    with pytest.raises(EstimationError):
        ServiceEstimate.from_samples([1.0, 0.0])
    with pytest.raises(EstimationError):
        ServiceEstimate.from_samples([1.0, -2.0])


def test_nonfinite_samples_rejected():
    with pytest.raises(EstimationError):
        ServiceEstimate.from_samples([1.0, float("inf")])


def test_invalid_construction_rejected():
    with pytest.raises(EstimationError):
        ServiceEstimate(mean=0.0, variance=0.0, minimum=0.0, sample_count=2)
    with pytest.raises(EstimationError):
        ServiceEstimate(mean=1.0, variance=-0.1, minimum=1.0, sample_count=2)


def test_recovers_lognormal_parameters():
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=np.log(0.8e-6), sigma=0.3, size=20_000)
    est = ServiceEstimate.from_samples(samples)
    true_mean = 0.8e-6 * np.exp(0.3**2 / 2)
    assert est.mean == pytest.approx(true_mean, rel=0.02)


@given(st.lists(st.floats(min_value=1e-9, max_value=1e-3), min_size=2, max_size=200))
def test_property_estimate_bounds(samples):
    est = ServiceEstimate.from_samples(samples)
    # Tolerances absorb float rounding in the mean of near-identical samples.
    assert est.minimum <= est.mean * (1 + 1e-12)
    assert est.mean <= max(samples) * (1 + 1e-12)
    assert est.variance >= 0.0
    assert est.rate > 0.0
