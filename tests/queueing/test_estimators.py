"""Tests for the P–K inversion (paper Eq. 3) and round-trip properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import EstimationError
from repro.queueing import (
    MG1,
    arrival_rate_from_sojourn,
    sojourn_from_utilization,
    utilization_from_sojourn,
)


MU = 1.25e6  # ~0.8µs mean service, Cab-like
VAR = (0.4e-6) ** 2


def test_idle_latency_maps_to_zero_utilization():
    rho = utilization_from_sojourn(1.0 / MU, MU, VAR)
    assert rho == 0.0


def test_roundtrip_through_forward_model():
    """λ → W (P–K) → λ (Eq. 3) is the identity on the stable region."""
    for rho in [0.05, 0.3, 0.5, 0.75, 0.9, 0.99]:
        lam = rho * MU
        sojourn = MG1(lam, MU, VAR).sojourn_time
        estimate = arrival_rate_from_sojourn(sojourn, MU, VAR)
        assert estimate == pytest.approx(lam, rel=1e-9)


def test_latency_below_idle_clamps_to_zero():
    assert utilization_from_sojourn(0.5 / MU, MU, VAR) == 0.0


def test_latency_below_idle_raises_when_not_clamping():
    with pytest.raises(EstimationError, match="below"):
        utilization_from_sojourn(0.5 / MU, MU, VAR, clamp=False)


def test_huge_latency_estimates_near_saturation_but_stays_below_one():
    rho = utilization_from_sojourn(1e4 / MU, MU, VAR)
    assert 0.99 < rho < 1.0


def test_monotone_in_observed_latency():
    latencies = [1.1 / MU, 1.5 / MU, 2.0 / MU, 4.0 / MU, 10.0 / MU]
    rhos = [utilization_from_sojourn(w, MU, VAR) for w in latencies]
    assert rhos == sorted(rhos)
    assert all(0.0 <= r < 1.0 for r in rhos)


def test_invalid_inputs_rejected():
    with pytest.raises(EstimationError):
        arrival_rate_from_sojourn(-1.0, MU, VAR)
    with pytest.raises(EstimationError):
        arrival_rate_from_sojourn(1.0, 0.0, VAR)
    with pytest.raises(EstimationError):
        arrival_rate_from_sojourn(1.0, MU, -1.0)
    with pytest.raises(EstimationError):
        arrival_rate_from_sojourn(float("nan"), MU, VAR)


def test_sojourn_from_utilization_validates_range():
    with pytest.raises(EstimationError):
        sojourn_from_utilization(1.0, MU, VAR)
    with pytest.raises(EstimationError):
        sojourn_from_utilization(-0.1, MU, VAR)


@given(
    rho=st.floats(min_value=0.0, max_value=0.98),
    scv=st.floats(min_value=0.0, max_value=4.0),
    mu=st.floats(min_value=1e3, max_value=1e8),
)
def test_property_roundtrip_rho(rho, scv, mu):
    """ρ → W → ρ round-trips for any service distribution variance."""
    var = scv / mu**2
    sojourn = sojourn_from_utilization(rho, mu, var)
    back = utilization_from_sojourn(sojourn, mu, var)
    assert back == pytest.approx(rho, abs=1e-7)


@given(
    w_scale=st.floats(min_value=1.0, max_value=1e4),
)
def test_property_estimates_always_in_unit_interval(w_scale):
    rho = utilization_from_sojourn(w_scale / MU, MU, VAR)
    assert 0.0 <= rho < 1.0
