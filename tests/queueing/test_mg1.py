"""Tests for the M/G/1 Pollaczek–Khinchine closed forms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import EstimationError
from repro.queueing import MG1, MM1, pk_sojourn_time, pk_waiting_time


def test_zero_arrivals_gives_pure_service_time():
    queue = MG1(arrival_rate=0.0, service_rate=2.0, service_variance=0.1)
    assert queue.waiting_time == 0.0
    assert queue.sojourn_time == pytest.approx(0.5)
    assert queue.utilization == 0.0


def test_utilization_is_lambda_over_mu():
    queue = MG1(arrival_rate=3.0, service_rate=4.0, service_variance=0.0)
    assert queue.utilization == pytest.approx(0.75)


def test_md1_half_of_mm1_waiting():
    """Deterministic service (M/D/1) waits exactly half as long as M/M/1."""
    lam, mu = 5.0, 10.0
    md1 = MG1(lam, mu, 0.0)
    mm1_as_mg1 = MG1(lam, mu, 1.0 / mu**2)
    assert md1.waiting_time == pytest.approx(mm1_as_mg1.waiting_time / 2.0)


def test_matches_mm1_special_case():
    """M/G/1 with exponential variance reproduces M/M/1 exactly."""
    lam, mu = 7.0, 11.0
    via_pk = MG1(lam, mu, 1.0 / mu**2)
    direct = MM1(lam, mu)
    assert via_pk.sojourn_time == pytest.approx(direct.sojourn_time)
    assert via_pk.waiting_time == pytest.approx(direct.waiting_time)


def test_paper_form_equals_standard_form():
    """The formula exactly as printed in the paper equals the textbook form."""
    queue = MG1(arrival_rate=0.6e6, service_rate=1.25e6, service_variance=2e-13)
    assert queue.paper_sojourn_form() == pytest.approx(queue.sojourn_time, rel=1e-12)


def test_waiting_grows_without_bound_near_saturation():
    mu, var = 10.0, 0.005
    wait_90 = pk_waiting_time(9.0, mu, var)
    wait_99 = pk_waiting_time(9.9, mu, var)
    assert wait_99 > 10 * wait_90


def test_unstable_queue_rejected():
    with pytest.raises(EstimationError, match="unstable"):
        MG1(arrival_rate=10.0, service_rate=10.0, service_variance=0.0)


def test_negative_arrival_rate_rejected():
    with pytest.raises(EstimationError):
        MG1(arrival_rate=-1.0, service_rate=10.0, service_variance=0.0)


def test_zero_service_rate_rejected():
    with pytest.raises(EstimationError):
        MG1(arrival_rate=0.0, service_rate=0.0, service_variance=0.0)


def test_negative_variance_rejected():
    with pytest.raises(EstimationError):
        MG1(arrival_rate=1.0, service_rate=10.0, service_variance=-1e-9)


def test_littles_law_consistency():
    queue = MG1(arrival_rate=4.0, service_rate=9.0, service_variance=0.02)
    assert queue.mean_queue_length == pytest.approx(queue.arrival_rate * queue.waiting_time)
    assert queue.mean_in_system == pytest.approx(queue.arrival_rate * queue.sojourn_time)


def test_scv_property():
    queue = MG1(arrival_rate=1.0, service_rate=2.0, service_variance=0.25)
    # E[S] = 0.5, so SCV = 0.25 / 0.25 = 1
    assert queue.service_scv == pytest.approx(1.0)


@given(
    rho=st.floats(min_value=0.0, max_value=0.95),
    mu=st.floats(min_value=0.1, max_value=1e7),
    scv=st.floats(min_value=0.0, max_value=10.0),
)
def test_property_sojourn_monotone_in_load(rho, mu, scv):
    """W strictly increases with λ (the paper's monotonicity premise)."""
    var = scv / mu**2
    w_low = pk_sojourn_time(rho * mu, mu, var)
    w_high = pk_sojourn_time(min(rho + 0.04, 0.99) * mu, mu, var)
    assert w_high >= w_low
    assert w_low >= 1.0 / mu - 1e-12


@given(
    lam=st.floats(min_value=0.0, max_value=9.0),
    scv=st.floats(min_value=0.0, max_value=5.0),
)
def test_property_waiting_increases_with_variance(lam, scv):
    """At fixed load, more service variance means longer waits."""
    mu = 10.0
    base = pk_waiting_time(lam, mu, scv / mu**2)
    more = pk_waiting_time(lam, mu, (scv + 1.0) / mu**2)
    if lam > 1e-6:
        assert more > base
    else:
        # At (near-)zero load the wait is (near-)zero regardless of variance.
        assert more >= base
