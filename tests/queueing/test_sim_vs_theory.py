"""Simulated queues vs closed-form queueing theory.

The central-fabric switch driven with Poisson arrivals *is* an M/G/1 queue;
these tests check the simulator against Pollaczek–Khinchine across service
distributions and loads.  (This validates both sides: the fabric mechanics
and the closed forms.)
"""

import numpy as np
import pytest

from repro.network import DeterministicService, ExponentialService, LognormalService, SwitchFabric
from repro.network.packet import Packet
from repro.queueing import MG1
from repro.sim import RandomStreams, Simulator

SERVICE_MEAN = 1e-6


def _simulate(model, rho, packets=60_000, seed=3):
    sim = Simulator()
    streams = RandomStreams(seed)
    fabric = SwitchFabric(sim, model, streams.stream("svc"))
    fabric.attach_endpoint(1, lambda p: None)
    gaps = streams.stream("arrivals").exponential(SERVICE_MEAN / rho, size=packets)

    def source():
        for index in range(packets):
            yield float(gaps[index])
            fabric.arrive(Packet(index, 0, True, 1024, 0, 1))

    sim.spawn(source(), "src")
    sim.run()
    return fabric.stats, sim.now


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_md1_sojourn_matches_theory(rho):
    stats, _now = _simulate(DeterministicService(SERVICE_MEAN), rho)
    theory = MG1(rho / SERVICE_MEAN, 1.0 / SERVICE_MEAN, 0.0)
    assert stats.mean_sojourn == pytest.approx(theory.sojourn_time, rel=0.08)


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_mm1_sojourn_matches_theory(rho):
    model = ExponentialService(SERVICE_MEAN)
    stats, _now = _simulate(model, rho)
    theory = MG1(rho / SERVICE_MEAN, 1.0 / SERVICE_MEAN, model.variance)
    assert stats.mean_sojourn == pytest.approx(theory.sojourn_time, rel=0.1)


def test_mg1_lognormal_sojourn_matches_theory():
    model = LognormalService(SERVICE_MEAN, 0.6)
    stats, _now = _simulate(model, 0.7, packets=120_000)
    theory = MG1(0.7 / SERVICE_MEAN, 1.0 / SERVICE_MEAN, model.variance)
    assert stats.mean_sojourn == pytest.approx(theory.sojourn_time, rel=0.12)


@pytest.mark.parametrize("rho", [0.2, 0.5, 0.9])
def test_simulated_utilization_matches_offered_load(rho):
    stats, now = _simulate(ExponentialService(SERVICE_MEAN), rho, packets=40_000)
    assert stats.utilization(now) == pytest.approx(rho, abs=0.04)


@pytest.mark.parametrize("rho", [0.25, 0.55, 0.85])
def test_waiting_time_ordering_md1_below_mm1(rho):
    """Var(S)=0 halves the wait vs exponential service at equal load —
    verified in simulation, not just algebra."""
    deterministic, _ = _simulate(DeterministicService(SERVICE_MEAN), rho)
    exponential, _ = _simulate(ExponentialService(SERVICE_MEAN), rho)
    assert deterministic.mean_wait < exponential.mean_wait
    ratio = deterministic.mean_wait / exponential.mean_wait
    assert ratio == pytest.approx(0.5, abs=0.12)
