"""Fluid-engine agreement contracts against the other two tiers.

The fluid engine earns its place in the tier ladder with three promises:

1. **Single switch = analytic, exactly.**  On the paper's single-switch
   scenario the fluid fixed point must reduce to the closed-form M/G/1
   answer — same formulas through the same float operations — so the two
   tiers agree to solver precision (~1e-12), not just to a band.
2. **Within the sim bands.**  Wherever the packet engine overlaps (the
   18-node class of machines, small healthy fabrics), fluid predictions
   must sit inside the same tolerance bands the analytic engine is held to
   in ``test_equivalence.py``.
3. **Honest refusal.**  Past its validity ceiling (utilization ≥ 0.95 at
   any fabric resource) the fluid engine must name the saturated resource
   and point at the simulator, never extrapolate.

Plus the degenerate-fabric guarantee shared with the other engines: a
1-leaf fabric is the same physical system as the single switch and must
produce bit-identical fluid products.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster import cab_config, large_fabric_config, small_test_config
from repro.config import TopologyConfig
from repro.core.experiments import (
    ExperimentDescriptor,
    PipelineSettings,
    ReproductionPipeline,
)
from repro.core.experiments.pipeline import run_experiment
from repro.errors import AnalyticModelError
from repro.units import MS
from repro.workloads import FFTW, CompressionConfig

SETTINGS = PipelineSettings(
    profile="quick",
    seed=0,
    impact_duration=0.01,
    signature_duration=0.01,
    calibration_duration=0.02,
    probe_interval=0.1 * MS,
)


def _pipeline(engine, machine_config, cache_path=None):
    return ReproductionPipeline(
        settings=replace(SETTINGS, engine=engine),
        machine_config=machine_config,
        applications={"fftw": FFTW(iterations=1, pack_compute=5e-5)},
        catalog=[CompressionConfig(1, 1, 2.5e6)],
        cache_path=cache_path,
    )


def _fabric_config():
    # Four nodes re-cabled as a healthy 2×2 fabric with two spines: small
    # enough for the packet engine, multi-leaf enough to exercise ECMP.
    return replace(
        small_test_config(seed=0, node_count=4),
        topology=TopologyConfig(
            kind="leaf-spine", leaf_count=2, nodes_per_leaf=2, spine_count=2
        ),
    )


# ----------------------------------------------------------------------
# Promise 1: exact reduction to the analytic tier on a single switch
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cab_fluid():
    return _pipeline("fluid", cab_config(seed=0))


@pytest.fixture(scope="module")
def cab_analytic():
    return _pipeline("analytic", cab_config(seed=0))


def test_single_switch_reduces_to_analytic(cab_fluid, cab_analytic):
    # The 18-node overlap: identical formulas, so agreement is solver
    # precision — twelve significant digits, not a tolerance band.
    assert cab_fluid.calibration().mean == pytest.approx(
        cab_analytic.calibration().mean, rel=1e-12
    )
    assert cab_fluid.idle_signature().mean == pytest.approx(
        cab_analytic.idle_signature().mean, rel=1e-12
    )
    fluid = cab_fluid.app_impact("fftw")
    analytic = cab_analytic.app_impact("fftw")
    assert fluid.true_utilization == pytest.approx(
        analytic.true_utilization, rel=1e-12
    )
    assert fluid.signature.mean == pytest.approx(analytic.signature.mean, rel=1e-12)
    assert cab_fluid.app_baseline("fftw") == pytest.approx(
        cab_analytic.app_baseline("fftw"), rel=1e-12
    )


def test_single_switch_calibration_is_bit_identical(cab_fluid, cab_analytic):
    # The calibration path has no fixed point to solve — it must be not
    # merely close but byte-for-byte the analytic artifact.
    assert json.dumps(cab_fluid.calibration().to_dict(), sort_keys=True) == json.dumps(
        cab_analytic.calibration().to_dict(), sort_keys=True
    )


# ----------------------------------------------------------------------
# Promise 2: inside the sim bands (single switch and healthy fabric)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_sim():
    return _pipeline("sim", small_test_config(seed=0))


@pytest.fixture(scope="module")
def small_fluid():
    return _pipeline("fluid", small_test_config(seed=0))


@pytest.fixture(scope="module")
def fabric_sim():
    return _pipeline("sim", _fabric_config())


@pytest.fixture(scope="module")
def fabric_fluid():
    return _pipeline("fluid", _fabric_config())


@pytest.mark.parametrize("sim_name,fluid_name", [
    ("small_sim", "small_fluid"),
    ("fabric_sim", "fabric_fluid"),
])
def test_fluid_within_sim_bands(sim_name, fluid_name, request):
    # The same bands test_equivalence.py holds the analytic engine to:
    # deterministic idle latency tight, driven utilization within 0.05
    # absolute, congested signature within queueing-model tolerance,
    # baseline runtime within 10%.
    sim = request.getfixturevalue(sim_name)
    fluid = request.getfixturevalue(fluid_name)
    assert fluid.calibration().mean == pytest.approx(sim.calibration().mean, rel=0.05)
    sim_impact = sim.app_impact("fftw")
    fluid_impact = fluid.app_impact("fftw")
    assert fluid_impact.true_utilization == pytest.approx(
        sim_impact.true_utilization, abs=0.05
    )
    assert fluid_impact.signature.mean == pytest.approx(
        sim_impact.signature.mean, rel=0.25
    )
    assert fluid.app_baseline("fftw") == pytest.approx(
        sim.app_baseline("fftw"), rel=0.10
    )


# ----------------------------------------------------------------------
# Degenerate fabric: bit identity with the single switch
# ----------------------------------------------------------------------
def _product(kind, machine_config):
    settings = replace(SETTINGS, engine="fluid")
    calibration = None
    if kind != "calibration":
        calibration = run_experiment(
            ExperimentDescriptor(
                key="calibration/fluid-equiv",
                kind="calibration",
                settings=settings,
                machine_config=machine_config,
            )
        )
    return run_experiment(
        ExperimentDescriptor(
            key=f"{kind}/fluid-equiv",
            kind=kind,
            settings=settings,
            machine_config=machine_config,
            workload=FFTW(iterations=1, pack_compute=5e-5),
            calibration=calibration,
        )
    )


def _canonical(product):
    return json.dumps(product, sort_keys=True, default=str)


@pytest.mark.parametrize("kind", ["calibration", "impact"])
def test_degenerate_fabric_is_bit_identical_to_single_switch(kind):
    single = _canonical(_product(kind, small_test_config(seed=0)))
    degenerate = _canonical(
        _product(
            kind,
            replace(
                small_test_config(seed=0),
                topology=TopologyConfig(
                    kind="leaf-spine", leaf_count=1, nodes_per_leaf=4, spine_count=1
                ),
            ),
        )
    )
    assert degenerate == single


# ----------------------------------------------------------------------
# Promise 3: honest refusal past the validity ceiling
# ----------------------------------------------------------------------
def test_saturated_fabric_refusal_names_the_resource():
    # FFTW's all-to-all transpose saturates the spines of the 4:1
    # oversubscribed 512-node preset; the refusal must name the saturated
    # resource and the engine that can still model the scenario.
    pipeline = _pipeline("fluid", large_fabric_config(seed=0))
    with pytest.raises(AnalyticModelError) as excinfo:
        pipeline.app_impact("fftw")
    message = str(excinfo.value)
    assert "spine" in message
    assert "--engine sim" in message


def test_large_fabric_healthy_workload_solves():
    # The flip side: scenarios that do not saturate the fabric must get a
    # real answer at 512 nodes — the scale the fluid tier exists for.
    pipeline = _pipeline("fluid", large_fabric_config(seed=0))
    calibration = pipeline.calibration()
    assert calibration.mean > 0
    idle = pipeline.idle_signature()
    assert idle.mean >= calibration.mean > 0
