"""Property tests for the scenario/demand seam.

The demand machinery makes three promises every engine builds on:

* **Conservation** — distributing a traffic summary over pair weights and
  folding it onto the fabric never creates or loses traffic: matrix totals
  equal summary totals, every packet is delivered exactly once, and link
  flow is balanced (what goes up the uplinks comes down the downlinks).
* **Fast path = definition** — the leaf-spine closed-form fold agrees with
  the route-by-route ``fold_reference`` oracle for arbitrary demand.
* **Permutation invariance** — relabeling nodes within a leaf permutes
  nothing the fabric can see, so folds are invariant under it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import leaf_spine_config, small_test_config
from repro.errors import ConfigurationError
from repro.scenario import (
    ScenarioSpec,
    paired_node_weights,
    ring_node_weights,
    uniform_node_weights,
)
from repro.workloads.traffic import TrafficSummary


def _summary(packets=120.0, bytes_=9.6e5):
    return TrafficSummary(
        ranks=4,
        rounds=1,
        compute=1e-4,
        packets=packets,
        bytes=bytes_,
        blocking_bytes=bytes_ / 4,
        blocking_latencies=2.0,
        period=0.0,
    )


def _spec(leaves, npl, spines):
    return ScenarioSpec.from_machine(
        leaf_spine_config(
            seed=0, leaf_count=leaves, nodes_per_leaf=npl, spine_count=spines
        )
    )


@st.composite
def fabric_demand(draw):
    """A small random fabric plus a random non-trivial weight matrix."""
    leaves = draw(st.integers(min_value=1, max_value=3))
    npl = draw(st.integers(min_value=1, max_value=4))
    spines = draw(st.integers(min_value=1, max_value=3))
    n = leaves * npl
    cells = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n * n,
            max_size=n * n,
        )
    )
    weights = np.asarray(cells).reshape(n, n)
    np.fill_diagonal(weights, 0.0)
    return leaves, npl, spines, weights


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 3, 4, 9, 18])
def test_weight_builders_are_normalized(n):
    for weights in (
        uniform_node_weights(n),
        paired_node_weights(n),
        ring_node_weights(n, partners=3),
    ):
        assert weights.shape == (n, n)
        assert np.all(weights >= 0)
        assert np.all(np.diag(weights) == 0)
        total = weights.sum()
        # A 1-node machine (or unpaired singleton) offers nothing; every
        # other builder distributes exactly the whole summary.
        assert total == pytest.approx(1.0) or total == 0.0


def test_zero_weights_with_traffic_is_refused():
    spec = ScenarioSpec.from_machine(small_test_config(seed=0, node_count=1))
    with pytest.raises(ConfigurationError):
        spec.demand_matrix(_summary(), uniform_node_weights(1))


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(fabric_demand())
def test_demand_and_fold_conserve_traffic(case):
    leaves, npl, spines, weights = case
    if weights.sum() == 0.0:
        return
    spec = _spec(leaves, npl, spines)
    summary = _summary()
    matrix = spec.demand_matrix(summary, weights)
    assert matrix.total_packets == pytest.approx(summary.packets)
    assert matrix.total_bytes == pytest.approx(summary.bytes)
    assert np.all(np.diag(matrix.packets) == 0)

    demand = spec.fold(matrix)
    # Every packet is delivered at exactly one endpoint.
    assert demand.delivered_packets.sum() == pytest.approx(summary.packets)
    # Uplink flow equals downlink flow equals cross-leaf traffic.
    up = sum(v for k, v in demand.link_packets.items() if k.startswith("leaf"))
    down = sum(v for k, v in demand.link_packets.items() if k.startswith("spine"))
    assert up == pytest.approx(down)
    # A packet visits at least its destination switch and at most
    # source leaf + spine + destination leaf.
    assert 1.0 <= demand.switch_visits_per_packet() <= 3.0 + 1e-9
    assert demand.link_traversals_per_packet() == pytest.approx(
        max(demand.switch_visits_per_packet() - 1.0, 0.0)
    )


# ----------------------------------------------------------------------
# Fast path against the route-walking oracle
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(fabric_demand())
def test_fold_fast_path_matches_reference(case):
    leaves, npl, spines, weights = case
    if weights.sum() == 0.0:
        return
    spec = _spec(leaves, npl, spines)
    matrix = spec.demand_matrix(_summary(), weights)
    fast = spec.fold(matrix)
    reference = spec.fold_reference(matrix)
    np.testing.assert_allclose(fast.switch_bytes, reference.switch_bytes, rtol=1e-9)
    np.testing.assert_allclose(fast.switch_packets, reference.switch_packets, rtol=1e-9)
    np.testing.assert_allclose(
        fast.delivered_packets, reference.delivered_packets, rtol=1e-9
    )
    assert set(fast.link_packets) == set(reference.link_packets)
    for name in fast.link_packets:
        assert fast.link_packets[name] == pytest.approx(
            reference.link_packets[name], rel=1e-9, abs=1e-12
        )
        assert fast.link_bytes[name] == pytest.approx(
            reference.link_bytes[name], rel=1e-9, abs=1e-12
        )


# ----------------------------------------------------------------------
# Permutation invariance
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(fabric_demand(), st.randoms(use_true_random=False))
def test_fold_is_invariant_under_within_leaf_relabeling(case, rng):
    leaves, npl, spines, weights = case
    if weights.sum() == 0.0:
        return
    # Permute node ids within each leaf: the fabric cannot tell the
    # difference, so the folded demand must be identical.
    perm = np.arange(leaves * npl)
    for leaf in range(leaves):
        block = list(range(leaf * npl, (leaf + 1) * npl))
        shuffled = block[:]
        rng.shuffle(shuffled)
        perm[block] = shuffled
    spec = _spec(leaves, npl, spines)
    matrix = spec.demand_matrix(_summary(), weights)
    permuted = spec.demand_matrix(_summary(), weights[np.ix_(perm, perm)])
    base, moved = spec.fold(matrix), spec.fold(permuted)
    np.testing.assert_allclose(base.switch_packets, moved.switch_packets, rtol=1e-9)
    np.testing.assert_allclose(base.switch_bytes, moved.switch_bytes, rtol=1e-9)
    for name in base.link_packets:
        assert base.link_packets[name] == pytest.approx(
            moved.link_packets[name], rel=1e-9, abs=1e-12
        )


def test_link_names_are_sorted_and_complete():
    spec = _spec(2, 3, 2)
    names = spec.link_names()
    assert list(names) == sorted(names)
    assert len(names) == 2 * 2 * 2  # leaves × spines, both directions
