"""Tests for the experiment-engine protocol and registry."""

import pytest

from repro.engine import (
    ExperimentEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.engine.base import _FACTORIES, _INSTANCES
from repro.errors import ExperimentError


class _NullEngine(ExperimentEngine):
    name = "null"

    def run(self, descriptor):
        return {"kind": descriptor.kind}


@pytest.fixture
def clean_registry():
    """Snapshot and restore the registry around registration tests."""
    factories = dict(_FACTORIES)
    instances = dict(_INSTANCES)
    yield
    _FACTORIES.clear()
    _FACTORIES.update(factories)
    _INSTANCES.clear()
    _INSTANCES.update(instances)


def test_builtins_are_always_available():
    assert "sim" in available_engines()
    assert "analytic" in available_engines()


def test_get_engine_lazily_imports_builtins():
    engine = get_engine("sim")
    assert engine.name == "sim"
    assert get_engine("analytic").name == "analytic"


def test_get_engine_returns_singleton():
    assert get_engine("sim") is get_engine("sim")


def test_unknown_engine_lists_available():
    with pytest.raises(ExperimentError, match="sim"):
        get_engine("definitely-not-an-engine")


def test_register_custom_engine(clean_registry):
    register_engine("null", _NullEngine)
    assert "null" in available_engines()
    assert isinstance(get_engine("null"), _NullEngine)


def test_duplicate_registration_rejected(clean_registry):
    register_engine("null", _NullEngine)
    with pytest.raises(ExperimentError, match="already registered"):
        register_engine("null", _NullEngine)


def test_replace_allows_overwrite_and_drops_cached_instance(clean_registry):
    register_engine("null", _NullEngine)
    first = get_engine("null")

    class _Other(_NullEngine):
        pass

    register_engine("null", _Other, replace=True)
    assert get_engine("null") is not first
    assert isinstance(get_engine("null"), _Other)


@pytest.mark.parametrize("bad", ["", "with/slash"])
def test_invalid_engine_names_rejected(bad):
    with pytest.raises(ExperimentError):
        register_engine(bad, _NullEngine)


def test_pipeline_settings_validates_engine():
    from repro.core.experiments import PipelineSettings

    assert PipelineSettings(engine="analytic").engine == "analytic"
    with pytest.raises(ExperimentError, match="unknown engine"):
        PipelineSettings(engine="bogus")
