"""Analytic vs simulation agreement on a small calibrated machine.

The analytic engine is only useful if, inside its validity range, it lands
close to the discrete-event reference.  These tests run the two engines on
identical descriptors (small machine, low and medium utilization) and bound
the disagreement; they also pin the cache-namespace guarantee that lets the
two engines share one cache directory.
"""

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.core.experiments.cache import group_of
from repro.units import MS
from repro.workloads import FFTW, CompressionConfig


def _pipeline(engine, cache_path):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=0,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
            engine=engine,
        ),
        machine_config=small_test_config(seed=0),
        applications={"fftw": FFTW(iterations=1, pack_compute=5e-5)},
        catalog=[CompressionConfig(1, 1, 2.5e6)],
        cache_path=cache_path,
    )


@pytest.fixture(scope="module")
def sim(tmp_path_factory):
    return _pipeline("sim", tmp_path_factory.mktemp("sim-cache"))


@pytest.fixture(scope="module")
def analytic(tmp_path_factory):
    return _pipeline("analytic", tmp_path_factory.mktemp("analytic-cache"))


def test_idle_probe_latency_agrees(sim, analytic):
    # Low utilization: the probes' mean one-way latency on an otherwise
    # idle switch is dominated by deterministic path terms — the engines
    # must agree closely.
    assert analytic.calibration().mean == pytest.approx(
        sim.calibration().mean, rel=0.05
    )
    assert analytic.idle_signature().mean == pytest.approx(
        sim.idle_signature().mean, rel=0.05
    )


def test_medium_utilization_impact_agrees(sim, analytic):
    # Medium utilization (~10% with this FFTW on the 4-node machine): the
    # engines must agree on the driven utilization and on the congested
    # probe latency within queueing-model tolerance.
    sim_impact = sim.app_impact("fftw")
    ana_impact = analytic.app_impact("fftw")
    assert 0.03 < sim_impact.true_utilization < 0.5, "not a medium-load case"
    assert ana_impact.true_utilization == pytest.approx(
        sim_impact.true_utilization, abs=0.05
    )
    assert ana_impact.signature.mean == pytest.approx(
        sim_impact.signature.mean, rel=0.25
    )


def test_baseline_runtime_agrees(sim, analytic):
    assert analytic.app_baseline("fftw") == pytest.approx(
        sim.app_baseline("fftw"), rel=0.10
    )


def test_engines_never_share_cache_keys(sim, analytic):
    sim_keys = set(sim.product_keys())
    analytic_keys = set(analytic.product_keys())
    assert not sim_keys & analytic_keys
    assert all(key.startswith("analytic:") for key in analytic_keys)


def test_engines_never_share_cache_shards(sim, analytic):
    # Shard filenames derive from the key's first segment; the engine
    # qualifier lands analytic products in analytic_* shards, disjoint
    # from the sim's.
    sim_groups = {group_of(key) for key in sim.product_keys()}
    analytic_groups = {group_of(key) for key in analytic.product_keys()}
    assert not sim_groups & analytic_groups
    assert all(group.startswith("analytic_") for group in analytic_groups)


def test_shared_cache_directory_keeps_engines_apart(tmp_path):
    # Run the whole analytic campaign into a directory, then open it with
    # a sim pipeline: every sim product must still be pending (nothing
    # leaked across the namespace), and vice versa the analytic pipeline
    # must see its own products as complete.
    shared = tmp_path / "shared-cache"
    analytic = _pipeline("analytic", shared)
    analytic.ensure_all(workers=1)
    assert analytic.pending_keys() == []

    sim = _pipeline("sim", shared)
    assert sim.pending_keys() == sim.product_keys()

    reopened = _pipeline("analytic", shared)
    assert reopened.pending_keys() == []
