"""Fabric-scenario equivalence and honesty guarantees across engines.

Two promises make the fabric extension safe to trust:

1. A *degenerate* leaf-spine (one leaf, one spine, no faults) is the same
   physical system as the paper's single switch — the simulation engine
   must reproduce the single-switch products **bit-identically**, not just
   approximately.  Anything else means the fabric plumbing perturbs the
   baseline it claims to generalize.
2. The analytic M/G/1 engine has no story for lossy links or multi-switch
   contention.  It must say so (``UnsupportedScenario``) rather than
   silently returning single-switch answers for a faulted fabric.
"""

import json
from dataclasses import replace

import pytest

from repro.cluster import small_test_config
from repro.config import LinkFaultConfig, TopologyConfig, scenario_tag
from repro.core.experiments import (
    ExperimentDescriptor,
    PipelineSettings,
    ReproductionPipeline,
)
from repro.core.experiments.pipeline import run_experiment
from repro.errors import UnsupportedScenario
from repro.units import MS
from repro.workloads import FFTW, CompressionConfig

SETTINGS = PipelineSettings(
    profile="quick",
    seed=0,
    impact_duration=0.01,
    signature_duration=0.01,
    calibration_duration=0.02,
    probe_interval=0.1 * MS,
)


def _single():
    return small_test_config(seed=0)


def _degenerate():
    # Same four nodes, same seed — but built through the fabric code path:
    # one leaf, one spine, zero faults.
    return replace(
        _single(),
        topology=TopologyConfig(kind="leaf-spine", leaf_count=1,
                                nodes_per_leaf=4, spine_count=1),
    )


def _faulted():
    config = replace(
        _single(),
        topology=TopologyConfig(kind="leaf-spine", leaf_count=2,
                                nodes_per_leaf=2, spine_count=1),
    )
    return replace(
        config,
        network=replace(
            config.network,
            link_faults=(LinkFaultConfig(link="*->spine0",
                                         drop_probability=0.02),),
        ),
    )


def _product(kind, machine_config, engine="sim"):
    settings = SETTINGS if engine == "sim" else replace(SETTINGS, engine=engine)
    return run_experiment(
        ExperimentDescriptor(
            key=f"{kind}/equiv",
            kind=kind,
            settings=settings,
            machine_config=machine_config,
            workload=FFTW(iterations=1, pack_compute=5e-5),
        )
    )


def _canonical(product):
    # Bit-identity means identical serialized artifacts (NaN == NaN here:
    # the artifact bytes are what the cache and reports actually store).
    return json.dumps(product, sort_keys=True, default=str)


@pytest.mark.parametrize("kind", ["calibration", "impact"])
def test_degenerate_fabric_is_bit_identical_to_single_switch_in_sim(kind):
    single = _canonical(_product(kind, _single()))
    degenerate = _canonical(_product(kind, _degenerate()))
    assert degenerate == single


def test_analytic_degenerate_fabric_matches_single_switch():
    # One leaf collapses to the single-switch M/G/1 the analytic engine
    # already models, so it must answer — and answer identically.
    single = _canonical(_product("calibration", _single(), engine="analytic"))
    degenerate = _canonical(
        _product("calibration", _degenerate(), engine="analytic")
    )
    assert degenerate == single


@pytest.mark.parametrize("kind", ["calibration", "impact"])
def test_analytic_refuses_faulted_fabric(kind):
    with pytest.raises(UnsupportedScenario):
        _product(kind, _faulted(), engine="analytic")


def test_analytic_refuses_multi_leaf_even_without_faults():
    healthy_multi_leaf = replace(
        _single(),
        topology=TopologyConfig(kind="leaf-spine", leaf_count=2,
                                nodes_per_leaf=2, spine_count=2),
    )
    with pytest.raises(UnsupportedScenario):
        _product("calibration", healthy_multi_leaf, engine="analytic")


def test_sim_handles_the_faulted_fabric_analytic_refused():
    # The honesty contract cuts both ways: the scenario the analytic
    # engine rejects is exactly one the simulator must carry end to end.
    product = _product("calibration", _faulted())
    assert product["sample_count"] > 0
    assert product["mean"] > 0


def _pipeline(machine_config, cache_path):
    return ReproductionPipeline(
        settings=SETTINGS,
        machine_config=machine_config,
        applications={"fftw": FFTW(iterations=1, pack_compute=5e-5)},
        catalog=[CompressionConfig(1, 1, 2.5e6)],
        cache_path=cache_path,
    )


def test_fabric_and_baseline_campaigns_never_share_cache_keys(tmp_path):
    # Scenario-qualified keys: a faulted-fabric campaign must not read (or
    # clobber) the single-switch baseline's cached products.
    baseline = _pipeline(_single(), tmp_path / "cache")
    fabric = _pipeline(_faulted(), tmp_path / "cache")
    assert scenario_tag(baseline.machine_config) is None
    assert scenario_tag(fabric.machine_config) is not None
    assert not set(baseline.product_keys()) & set(fabric.product_keys())
    tag = scenario_tag(fabric.machine_config)
    assert all(key.startswith(f"{tag}:") for key in fabric.product_keys())


def test_degenerate_fabric_still_gets_its_own_cache_namespace(tmp_path):
    # Even a fault-free degenerate fabric is tagged: its products are
    # bit-identical to the baseline's, but the cache never assumes so.
    degenerate = _pipeline(_degenerate(), tmp_path / "cache")
    assert scenario_tag(degenerate.machine_config) == "ls1x4s1"
    baseline = _pipeline(_single(), tmp_path / "cache")
    assert not set(baseline.product_keys()) & set(degenerate.product_keys())
