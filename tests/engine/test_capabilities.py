"""Registry-level capability dispatch and the ``repro engines`` listing.

One place decides whether an engine may see a scenario: the registry reads
each engine's declared :class:`EngineCapabilities` and refuses dispatch
with an error that names the engines that *can* handle it.  These tests
pin the declarations, the dispatch decisions, the catalog rendering, the
CLI subcommand, and the deterministic link-report ordering the fabric
telemetry relies on.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import engine_catalog, render_engine_catalog
from repro.cluster import cab_config, fault_scenario, leaf_spine_config
from repro.config import NetworkConfig
from repro.engine import (
    ensure_scenario_supported,
    get_engine,
    supporting_engines,
)
from repro.errors import UnsupportedScenario
from repro.network import DeterministicService, InterconnectNetwork, LeafSpineTopology
from repro.sim import RandomStreams, Simulator
from repro.units import KB, US

REPO = Path(__file__).resolve().parents[2]


def _faulted():
    return leaf_spine_config(seed=0, faults=fault_scenario("lossy-spine"))


def _healthy_fabric():
    return leaf_spine_config(seed=0, leaf_count=4, nodes_per_leaf=4, spine_count=2)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
def test_declared_capabilities():
    sim = get_engine("sim").capabilities()
    analytic = get_engine("analytic").capabilities()
    fluid = get_engine("fluid").capabilities()
    # Ground truth claims everything.
    assert sim.unsupported_reason(_faulted()) is None
    assert sim.unsupported_reason(cab_config(seed=0)) is None
    # Closed form: single switch only, no faults.
    assert analytic.max_leaves == 1
    assert analytic.fault_kinds == ()
    # Flow level: any healthy fabric, no faults.
    assert fluid.fault_kinds == ()
    assert fluid.unsupported_reason(_healthy_fabric()) is None


def test_active_fault_kinds_feeds_the_dispatch():
    assert cab_config(seed=0).network.active_fault_kinds() == ()
    assert _faulted().network.active_fault_kinds() == ("drop",)
    degraded = leaf_spine_config(seed=0, faults=fault_scenario("degraded-spine"))
    assert degraded.network.active_fault_kinds() == ("speed",)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def test_analytic_refusal_names_the_supporting_engines():
    with pytest.raises(UnsupportedScenario) as excinfo:
        ensure_scenario_supported(get_engine("analytic"), _healthy_fabric())
    message = str(excinfo.value)
    assert "'analytic'" in message
    assert "supported by: fluid, sim" in message


def test_fluid_refusal_on_faults_points_at_sim():
    with pytest.raises(UnsupportedScenario) as excinfo:
        ensure_scenario_supported(get_engine("fluid"), _faulted())
    message = str(excinfo.value)
    assert "drop" in message
    assert "supported by: sim" in message


def test_supporting_engines_partition():
    assert supporting_engines(_faulted()) == ["sim"]
    assert supporting_engines(_healthy_fabric()) == ["fluid", "sim"]
    assert supporting_engines(cab_config(seed=0)) == ["analytic", "fluid", "sim"]


@pytest.mark.parametrize("name", ["sim", "analytic", "fluid"])
def test_every_engine_accepts_the_single_switch(name):
    ensure_scenario_supported(get_engine(name), cab_config(seed=0))


# ----------------------------------------------------------------------
# Catalog and CLI
# ----------------------------------------------------------------------
def test_engine_catalog_lists_all_tiers_sorted():
    catalog = engine_catalog()
    names = [row["name"] for row in catalog]
    assert names == sorted(names)
    assert {"sim", "analytic", "fluid"} <= set(names)
    by_name = {row["name"]: row for row in catalog}
    assert by_name["analytic"]["max_leaves"] == 1
    assert by_name["fluid"]["fault_kinds"] == []


def test_render_engine_catalog_is_a_table():
    text = render_engine_catalog(engine_catalog())
    lines = text.splitlines()
    assert lines[0].startswith("engine")
    assert any(line.startswith("fluid") for line in lines)
    assert any("ground truth" in line for line in lines)


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_engines_subcommand_renders_the_catalog():
    result = _cli("engines")
    assert result.returncode == 0, result.stderr
    assert "fluid" in result.stdout
    assert "analytic" in result.stdout
    assert "sim" in result.stdout


def test_cli_engines_json_round_trips():
    result = _cli("engines", "--json")
    assert result.returncode == 0, result.stderr
    rows = json.loads(result.stdout)
    assert {row["name"] for row in rows} >= {"sim", "analytic", "fluid"}


# ----------------------------------------------------------------------
# Deterministic link reports
# ----------------------------------------------------------------------
def test_link_report_is_sorted_by_link_name():
    sim = Simulator()
    topology = LeafSpineTopology(leaf_count=3, nodes_per_leaf=2, spine_count=2)
    config = NetworkConfig(
        switch_mode="central", fabric_service=DeterministicService(0.8 * US)
    )
    network = InterconnectNetwork(sim, topology, config, RandomStreams(0))
    network.send(0, 5, 4 * KB, on_delivered=lambda: None)
    sim.run()
    names = list(network.link_report())
    assert names == sorted(names)
    assert len(names) == 3 * 2 * 2  # leaves × spines, both directions
