"""Tests for the analytic M/G/1 engine: validity, determinism, consistency."""

import math

import pytest

from repro.cluster import small_test_config
from repro.core.experiments import ExperimentDescriptor, PipelineSettings
from repro.engine import get_engine
from repro.errors import AnalyticModelError
from repro.queueing import ServiceEstimate, utilization_from_sojourn
from repro.units import MS
from repro.workloads import FFTW, Workload
from repro.workloads.traffic import TrafficSummary


SETTINGS = PipelineSettings(
    profile="quick",
    impact_duration=0.01,
    signature_duration=0.01,
    calibration_duration=0.02,
    probe_interval=0.1 * MS,
    engine="analytic",
)


class _Saturating(Workload):
    """Offers far more traffic per round than the switch can ever drain."""

    name = "saturating"

    def traffic(self, config):
        return TrafficSummary(
            ranks=2,
            rounds=1,
            compute=1e-6,
            packets=1e6,
            bytes=1e10,
            blocking_bytes=0.0,
            blocking_latencies=0.0,
        )

    def build(self, ctx):  # pragma: no cover - never simulated
        yield


class _NoTraffic(Workload):
    """A workload that never grew an analytic traffic summary."""

    name = "opaque"

    def build(self, ctx):  # pragma: no cover - never simulated
        yield


def _descriptor(**kwargs):
    defaults = dict(
        key="test",
        settings=SETTINGS,
        machine_config=small_test_config(seed=0),
    )
    defaults.update(kwargs)
    return ExperimentDescriptor(**defaults)


@pytest.fixture(scope="module")
def engine():
    return get_engine("analytic")


@pytest.fixture(scope="module")
def calibration(engine):
    return engine.run(_descriptor(kind="calibration"))


def test_saturating_workload_fails_loudly(engine):
    with pytest.raises(AnalyticModelError, match="saturated"):
        engine.run(_descriptor(kind="baseline", workload=_Saturating()))


def test_workload_without_traffic_summary_fails_loudly(engine):
    with pytest.raises(AnalyticModelError, match="opaque"):
        engine.run(_descriptor(kind="baseline", workload=_NoTraffic()))


def test_products_are_deterministic(engine, calibration):
    descriptor = _descriptor(
        kind="impact", workload=FFTW(), calibration=calibration
    )
    assert engine.run(descriptor) == engine.run(descriptor)
    assert engine.run(_descriptor(kind="calibration")) == calibration


def test_signature_inverts_to_true_utilization(engine, calibration):
    # The synthesized probe mean must round-trip through the same P-K
    # inversion the downstream queue models apply, recovering exactly the
    # utilization the engine solved for.
    product = engine.run(
        _descriptor(kind="impact", workload=FFTW(), calibration=calibration)
    )
    estimate = ServiceEstimate.from_dict(calibration)
    recovered = utilization_from_sojourn(
        product["signature"]["mean"], estimate.rate, estimate.variance
    )
    assert recovered == pytest.approx(product["true_utilization"], rel=1e-9)
    assert product["signature"]["utilization"] == pytest.approx(
        product["true_utilization"]
    )


def test_histogram_mass_matches_sample_count(engine, calibration):
    product = engine.run(_descriptor(kind="impact", calibration=calibration))
    signature = product["signature"]
    histogram = signature["histogram"]
    assert sum(histogram["counts"]) + histogram["overflow"] == signature["count"]
    assert signature["count"] >= 2


def test_impact_utilization_within_validity_range(engine, calibration):
    product = engine.run(
        _descriptor(kind="impact", workload=FFTW(), calibration=calibration)
    )
    assert 0.0 < product["true_utilization"] < engine.max_utilization
    assert math.isfinite(product["signature"]["mean"])


def test_baseline_positive_and_scales_with_rounds(engine):
    one = engine.run(
        _descriptor(kind="baseline", workload=FFTW(iterations=1))
    )
    three = engine.run(
        _descriptor(kind="baseline", workload=FFTW(iterations=3))
    )
    assert one > 0
    assert three == pytest.approx(3 * one, rel=1e-9)


def test_signature_requires_calibration(engine):
    with pytest.raises(AnalyticModelError, match="calibration"):
        engine.run(_descriptor(kind="impact", workload=FFTW()))
