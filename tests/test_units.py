"""Tests for unit constants and conversions."""

import pytest

from repro import units


def test_time_constants():
    assert units.US == 1e-6
    assert units.MS == 1e-3
    assert units.NS == 1e-9
    assert units.S == 1.0


def test_data_constants():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3


def test_cycles_roundtrip():
    seconds = units.cycles_to_seconds(2.6e9, 2.6e9)
    assert seconds == pytest.approx(1.0)
    assert units.seconds_to_cycles(seconds, 2.6e9) == pytest.approx(2.6e9)


def test_paper_sleep_values():
    # CompressionB's B parameter at Cab's 2.6 GHz clock.
    assert units.cycles_to_seconds(2.5e4, 2.6e9) == pytest.approx(9.615e-6, rel=1e-3)
    assert units.cycles_to_seconds(2.5e7, 2.6e9) == pytest.approx(9.615e-3, rel=1e-3)


def test_cycle_conversion_validation():
    with pytest.raises(ValueError):
        units.cycles_to_seconds(1.0, 0.0)
    with pytest.raises(ValueError):
        units.cycles_to_seconds(-1.0, 1e9)
    with pytest.raises(ValueError):
        units.seconds_to_cycles(-1.0, 1e9)
    with pytest.raises(ValueError):
        units.seconds_to_cycles(1.0, -1e9)


def test_format_time():
    assert units.format_time(0.5e-9) == "0.5ns"
    assert units.format_time(1.25e-6) == "1.25µs"
    assert units.format_time(3.5e-3) == "3.50ms"
    assert units.format_time(2.0) == "2.000s"
    assert units.format_time(-1.25e-6) == "-1.25µs"


def test_format_bytes():
    assert units.format_bytes(512) == "512B"
    assert units.format_bytes(2048) == "2.0KB"
    assert units.format_bytes(40 * 1024) == "40.0KB"
    assert units.format_bytes(3 * 1024**2) == "3.0MB"
    assert units.format_bytes(5 * 1024**3) == "5.00GB"
    assert units.format_bytes(-2048) == "-2.0KB"
