"""Campaign-level telemetry: the report file, bit-identity, fault accounting."""

import json

import pytest

from repro import telemetry
from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.faults import ENV_VAR as FAULTS_ENV, set_fault_plan
from repro.parallel import RetryPolicy
from repro.telemetry.report import (
    TELEMETRY_REPORT_NAME,
    load_report,
    render_report,
    trace_from_report,
)
from repro.units import MS


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    set_fault_plan(None)
    yield
    set_fault_plan(None)


def _pipeline(cache_path, **kwargs):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=0,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
            engine="analytic",
        ),
        machine_config=small_test_config(seed=0),
        cache_path=cache_path,
        **kwargs,
    )


def _signature(pipeline):
    """Canonical byte-level fingerprint of every cached product."""
    return json.dumps(pipeline._cache.snapshot(), sort_keys=True)


def test_campaign_writes_telemetry_report(tmp_path):
    pipeline = _pipeline(tmp_path / "cache", telemetry=True)
    stats = pipeline.ensure_all(workers=2)

    path = tmp_path / "cache" / TELEMETRY_REPORT_NAME
    assert stats["telemetry_report"] == str(path)
    document = load_report(path)

    # Counters agree with the campaign stats.
    counters = document["counters"]
    assert counters["pipeline.experiments_completed"] == stats["executed"]
    assert counters["runner.tasks_completed"] == stats["executed"]
    assert counters["pipeline.cache_hits"] > 0  # descriptor building re-reads
    # Phases cover the dependency stages, each with wall and cpu time.
    assert set(document["phases"]) == {"calibration", "measurements", "dependents"}
    for values in document["phases"].values():
        assert values["wall"] >= 0.0 and values["cpu"] >= 0.0
    # The span set has its campaign root plus per-task and engine spans.
    names = {record["name"] for record in document["spans"]["records"]}
    assert "campaign" in names
    assert any(name.startswith("task:") for name in names)
    assert any(name.startswith("solve:") for name in names)
    # The report renders and converts to a loadable Chrome trace.
    assert "counters:" in render_report(document)
    trace = trace_from_report(document)
    assert trace["traceEvents"]
    json.dumps(trace)


def test_no_telemetry_campaign_is_bit_identical_and_writes_no_report(tmp_path):
    # Even with the process-wide switch forced on, telemetry=False keeps the
    # campaign dark — and the products are byte-identical either way.
    with_telemetry = _pipeline(tmp_path / "on", telemetry=True)
    with_telemetry.ensure_all(workers=2)

    telemetry.enable()  # the knob must override the global switch
    without = _pipeline(tmp_path / "off", telemetry=False)
    without.ensure_all(workers=2)

    assert not (tmp_path / "off" / TELEMETRY_REPORT_NAME).exists()
    assert (tmp_path / "on" / TELEMETRY_REPORT_NAME).exists()
    assert _signature(with_telemetry) == _signature(without)


def test_stats_report_none_without_cache_directory(tmp_path):
    pipeline = _pipeline(None, telemetry=True)
    stats = pipeline.ensure_all(workers=1)
    assert stats["telemetry_report"] is None


def test_faulted_campaign_telemetry_matches_failure_report(tmp_path, monkeypatch):
    poisoned = "analytic:pair/fftw/mcb"
    hung = "analytic:impact/mcb"
    monkeypatch.setenv(
        FAULTS_ENV,
        json.dumps(
            {
                "fail": {poisoned: "*"},  # permanent hole (2 failed attempts)
                "hang": {hung: [1]},  # first attempt killed at the timeout
                "hang_seconds": 60.0,
            }
        ),
    )
    pipeline = _pipeline(
        tmp_path / "faulted",
        retry=RetryPolicy(max_attempts=2, timeout=2.0, backoff_base=0.0),
        failure_budget=1,
        telemetry=True,
    )
    stats = pipeline.ensure_all(workers=2)
    assert stats["failed"] == 1

    failure_report = json.loads(
        (tmp_path / "faulted" / "failure_report.json").read_text()
    )
    document = load_report(tmp_path / "faulted" / TELEMETRY_REPORT_NAME)
    counters = document["counters"]

    def total(prefix):
        return sum(v for k, v in counters.items() if k.startswith(prefix))

    # Terminal failures and retried transients agree with the report
    # (dependency records never run, so they don't appear in runner counters).
    executed_failures = [
        row for row in failure_report["failures"] if row["category"] != "dependency"
    ]
    assert total("runner.tasks_failed") == len(executed_failures)
    assert total("runner.tasks_retried") == failure_report["transient_count"]
    timeout_transients = [
        row for row in failure_report["transients"] if row["category"] == "timeout"
    ]
    assert counters.get("runner.timeouts", 0) == len(timeout_transients) == 1
    assert counters["runner.pool_respawns"] == 1  # the hang kill broke the pool
    # Completions + holes account for every submitted task.
    assert (
        counters["runner.tasks_completed"] + total("runner.tasks_failed")
        == counters["runner.tasks_submitted"]
    )
