"""Span tracer tests, including the Chrome trace_event golden-schema check."""

import json

import pytest

from repro.telemetry.spans import SpanTracer, chrome_trace, span_summary


def _sample_records():
    """A driver + two-worker span set, like a small campaign produces."""
    tracer = SpanTracer()
    tracer.record("campaign", 100.0, 10.0, category="pipeline", pid=1000, tid=1)
    tracer.record("stage:measurements", 100.5, 4.0, category="pipeline", pid=1000, tid=1)
    tracer.record("task:impact/fftw", 101.0, 1.5, category="runner", pid=2000, tid=7)
    tracer.record("task:impact/mcb", 101.2, 1.0, category="runner", pid=2001, tid=9)
    tracer.record(
        "solve:impact", 101.1, 1.2, category="engine",
        args={"engine": "sim"}, pid=2000, tid=7,
    )
    return tracer.snapshot()


def test_span_contextmanager_records_duration_and_args():
    tracer = SpanTracer()
    with tracer.span("work", "test", key="value"):
        pass
    records = tracer.snapshot()
    assert len(records) == 1
    record = records[0]
    assert record["name"] == "work"
    assert record["cat"] == "test"
    assert record["dur"] >= 0.0
    assert record["args"] == {"key": "value"}


def test_span_records_even_when_the_block_raises():
    tracer = SpanTracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert len(tracer) == 1
    assert tracer.snapshot()[0]["name"] == "doomed"


def test_merge_absorbs_worker_records():
    driver, worker = SpanTracer(), SpanTracer()
    driver.record("campaign", 0.0, 5.0)
    worker.record("task:x", 1.0, 2.0, pid=999, tid=3)
    driver.merge(worker.snapshot())
    assert len(driver) == 2
    assert {r["name"] for r in driver.snapshot()} == {"campaign", "task:x"}


def test_span_summary_aggregates_by_name():
    summary = span_summary(_sample_records())
    assert summary["campaign"]["count"] == 1
    assert summary["campaign"]["total_s"] == pytest.approx(10.0)
    assert summary["task:impact/fftw"]["max_s"] == pytest.approx(1.5)


# ----------------------------------------------------------------------
# Golden schema: the emitted Chrome trace must be loadable by Perfetto
# ----------------------------------------------------------------------
def test_chrome_trace_golden_schema():
    trace = chrome_trace(_sample_records())

    # The document round-trips as JSON.
    document = json.loads(json.dumps(trace))
    assert set(document) == {"traceEvents", "displayTimeUnit"}
    events = document["traceEvents"]
    assert events, "trace must not be empty"

    # Every event carries the required trace_event keys.
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] in ("X", "M")
        if event["ph"] == "X":
            assert "dur" in event and event["dur"] >= 0
            assert isinstance(event["ts"], int) and event["ts"] >= 0

    # Timestamps are monotonic (non-decreasing) within each tid track.
    last_ts = {}
    for event in events:
        if event["ph"] != "X":
            continue
        tid = event["tid"]
        assert event["ts"] >= last_ts.get(tid, 0)
        last_ts[tid] = event["ts"]

    # All events live in one display process; each source (pid, tid) got a
    # thread row labelled via thread_name metadata.
    pids = {event["pid"] for event in events}
    assert len(pids) == 1
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in metadata} == {"thread_name"}
    assert len(metadata) == 3  # driver + two worker (pid, tid) sources
    labels = {e["args"]["name"] for e in metadata}
    assert "driver" in labels
    assert any(label.startswith("worker") for label in labels)

    # Timestamps are rebased: the earliest span starts at ts == 0.
    assert min(e["ts"] for e in events if e["ph"] == "X") == 0


def test_chrome_trace_of_nothing_is_a_valid_empty_document():
    trace = chrome_trace([])
    assert trace["traceEvents"] == []
    json.dumps(trace)


def test_worker_spans_nest_inside_the_campaign_span_timewise():
    # Perfetto infers hierarchy from time containment: every task/solve span
    # must lie within the campaign span's [ts, ts+dur] window.
    records = _sample_records()
    trace = chrome_trace(records)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    campaign = next(e for e in events if e["name"] == "campaign")
    window = (campaign["ts"], campaign["ts"] + campaign["dur"])
    for event in events:
        if event is campaign:
            continue
        assert window[0] <= event["ts"]
        assert event["ts"] + event["dur"] <= window[1]
