"""Telemetry tests share process-wide singletons: isolate every test."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
