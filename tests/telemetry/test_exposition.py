"""Prometheus exposition: golden output, parser round-trip, and linter."""

import math

import pytest

from repro.telemetry.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    lint_exposition,
    parse_exposition,
    render_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry


def _snapshot():
    registry = MetricsRegistry()
    registry.counter_inc("serving.requests", 3, endpoint="/predict", status="200")
    registry.counter_inc("serving.requests", 1, endpoint="/metrics", status="200")
    registry.counter_inc("runner.tasks_completed", 7)
    registry.gauge_set("serving.model_age_seconds", 12.5)
    for value in (0.0, 0.5, 0.5, 3.0, 3.0, 3.0):
        registry.observe("serving.request_seconds", value, endpoint="/predict")
    return registry.snapshot()


GOLDEN = """\
# TYPE runner_tasks_completed_total counter
runner_tasks_completed_total 7
# TYPE serving_requests_total counter
serving_requests_total{endpoint="/metrics",status="200"} 1
serving_requests_total{endpoint="/predict",status="200"} 3
# TYPE serving_model_age_seconds gauge
serving_model_age_seconds 12.5
# TYPE serving_request_seconds histogram
serving_request_seconds_bucket{endpoint="/predict",le="0"} 1
serving_request_seconds_bucket{endpoint="/predict",le="1"} 3
serving_request_seconds_bucket{endpoint="/predict",le="4"} 6
serving_request_seconds_bucket{endpoint="/predict",le="+Inf"} 6
serving_request_seconds_sum{endpoint="/predict"} 10
serving_request_seconds_count{endpoint="/predict"} 6
"""


def test_render_prometheus_matches_golden():
    assert render_prometheus(_snapshot()) == GOLDEN


def test_rendered_output_passes_the_linter():
    assert lint_exposition(render_prometheus(_snapshot())) == []


def test_content_type_names_the_text_format():
    assert "text/plain" in PROMETHEUS_CONTENT_TYPE
    assert "0.0.4" in PROMETHEUS_CONTENT_TYPE


def test_parse_exposition_round_trips_the_golden():
    samples = parse_exposition(GOLDEN)
    assert samples["runner_tasks_completed_total"] == 7
    assert samples['serving_requests_total{endpoint="/predict",status="200"}'] == 3
    assert samples["serving_model_age_seconds"] == 12.5
    assert samples['serving_request_seconds_bucket{endpoint="/predict",le="+Inf"}'] == 6
    assert samples['serving_request_seconds_sum{endpoint="/predict"}'] == 10


def test_parse_exposition_sorts_labels():
    text = 'm_total{b="2",a="1"} 4\n'
    assert parse_exposition(text) == {'m_total{a="1",b="2"}': 4.0}


def test_parse_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("not a metric line\n")


def test_label_values_are_escaped():
    hostile = 'sla\\sh "quote"\nnewline'
    registry = MetricsRegistry()
    registry.counter_inc("hits", path=hostile)
    text = render_prometheus(registry.snapshot())
    assert "\\\\" in text and '\\"' in text and "\\n" in text
    assert lint_exposition(text) == []
    samples = parse_exposition(text)
    escaped = (
        hostile.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )
    assert samples[f'hits_total{{path="{escaped}"}}'] == 1


def test_metric_names_are_sanitized():
    registry = MetricsRegistry()
    registry.counter_inc("weird.name-with/chars")
    text = render_prometheus(registry.snapshot())
    assert "weird_name_with_chars_total 1" in text
    assert lint_exposition(text) == []


def test_nonfinite_samples_land_only_in_inf_and_count():
    registry = MetricsRegistry()
    registry.observe("h", 1.0)
    registry.observe("h", float("nan"))
    registry.observe("h", float("inf"))
    text = render_prometheus(registry.snapshot())
    samples = parse_exposition(text)
    # Finite bucket sees only the finite observation ...
    assert samples['h_bucket{le="2"}'] == 1
    # ... but +Inf and _count see all three, and _sum stays finite.
    assert samples['h_bucket{le="+Inf"}'] == 3
    assert samples["h_count"] == 3
    assert samples["h_sum"] == 1.0
    assert math.isfinite(samples["h_sum"])
    assert lint_exposition(text) == []


def test_empty_snapshot_renders_empty_document():
    assert render_prometheus(MetricsRegistry().snapshot()) == ""
    assert lint_exposition("") == []


# ----------------------------------------------------------------------
# Linter negative cases
# ----------------------------------------------------------------------
def test_lint_flags_sample_without_type():
    problems = lint_exposition("orphan_total 1\n")
    assert any("no preceding TYPE" in p for p in problems)


def test_lint_flags_counter_not_named_total():
    text = "# TYPE hits counter\nhits 1\n"
    problems = lint_exposition(text)
    assert any("not named *_total" in p for p in problems)


def test_lint_flags_duplicate_type():
    text = (
        "# TYPE a_total counter\na_total 1\n"
        "# TYPE a_total counter\na_total 2\n"
    )
    problems = lint_exposition(text)
    assert any("duplicate TYPE" in p for p in problems)


def test_lint_flags_non_monotonic_buckets():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="2"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_sum 4\n"
        "h_count 5\n"
    )
    problems = lint_exposition(text)
    assert any("not non-decreasing" in p for p in problems)


def test_lint_flags_missing_inf_bucket():
    text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n' "h_sum 4\nh_count 5\n"
    problems = lint_exposition(text)
    assert any("+Inf" in p for p in problems)


def test_lint_flags_inf_bucket_count_mismatch():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 4\n'
        "h_sum 4\n"
        "h_count 5\n"
    )
    problems = lint_exposition(text)
    assert any("!= _count" in p for p in problems)


def test_lint_flags_missing_trailing_newline():
    problems = lint_exposition("# TYPE a_total counter\na_total 1")
    assert any("newline" in p for p in problems)


def test_lint_flags_malformed_sample_line():
    problems = lint_exposition("# TYPE a_total counter\na_total one\n")
    assert any("malformed sample" in p for p in problems)
