"""Live campaign watch: LiveReporter throttling, atomicity, and render_top."""

import json

from repro.telemetry.live import (
    LIVE_REPORT_NAME,
    LiveReporter,
    load_live,
    render_top,
)
from repro.telemetry.metrics import MetricsRegistry

PROGRESS = {
    "stage": "measurements",
    "done": 3,
    "total": 10,
    "elapsed": 6.0,
    "eta": 14.0,
    "failed": 1,
    "retried": 2,
    "stages": [
        {"stage": "calibration", "done": 1, "total": 1, "elapsed": 2.0},
        {"stage": "measurements", "done": 2, "total": 9, "elapsed": 4.0},
    ],
}


def test_first_publish_writes_and_throttle_suppresses(tmp_path):
    reporter = LiveReporter(tmp_path / LIVE_REPORT_NAME, interval=60.0)
    assert reporter.publish(PROGRESS) is True
    assert reporter.publish(PROGRESS) is False  # inside the interval
    assert reporter.publish(PROGRESS, force=True) is True
    assert reporter.publish(PROGRESS, complete=True) is True  # complete bypasses


def test_zero_interval_always_writes(tmp_path):
    reporter = LiveReporter(tmp_path / LIVE_REPORT_NAME, interval=0.0)
    assert reporter.publish(PROGRESS) is True
    assert reporter.publish(PROGRESS) is True


def test_published_document_shape(tmp_path):
    path = tmp_path / LIVE_REPORT_NAME
    registry = MetricsRegistry()
    registry.counter_inc("runner.tasks_completed", 3)
    LiveReporter(path, interval=0.0).publish(PROGRESS, registry.snapshot())
    document = load_live(path)
    assert document["complete"] is False
    assert document["progress"]["done"] == 3
    assert document["metrics"]["counters"]["runner.tasks_completed"] == 3
    assert document["updated_at"] > 0


def test_metrics_callable_only_invoked_on_write(tmp_path):
    calls = []

    def snapshot():
        calls.append(1)
        return MetricsRegistry().snapshot()

    reporter = LiveReporter(tmp_path / LIVE_REPORT_NAME, interval=60.0)
    reporter.publish(PROGRESS, snapshot)
    reporter.publish(PROGRESS, snapshot)  # throttled: callable not evaluated
    assert len(calls) == 1


def test_complete_frame_is_marked(tmp_path):
    path = tmp_path / LIVE_REPORT_NAME
    reporter = LiveReporter(path, interval=60.0)
    reporter.publish(PROGRESS)
    reporter.publish(PROGRESS, complete=True)
    assert load_live(path)["complete"] is True


def test_atomic_write_leaves_no_temp_files(tmp_path):
    reporter = LiveReporter(tmp_path / LIVE_REPORT_NAME, interval=0.0)
    for _ in range(5):
        reporter.publish(PROGRESS)
    assert [p.name for p in tmp_path.iterdir()] == [LIVE_REPORT_NAME]


def test_publish_survives_unwritable_path(tmp_path):
    target = tmp_path / "file-not-dir"
    target.write_text("occupied")
    # Parent "directory" is a file: mkdir/mkstemp fail, publish returns False.
    reporter = LiveReporter(target / LIVE_REPORT_NAME, interval=0.0)
    assert reporter.publish(PROGRESS) is False


def test_load_live_absent_and_torn(tmp_path):
    assert load_live(tmp_path / "nope.json") is None
    torn = tmp_path / "torn.json"
    torn.write_text('{"version": 1, "progr')
    assert load_live(torn) is None


def test_render_top_shows_progress_and_metrics(tmp_path):
    registry = MetricsRegistry()
    registry.counter_inc("runner.tasks_completed", 3)
    registry.counter_inc("runner.failures", 1, category="timeout")
    for value in (0.5, 1.5, 2.5, float("nan")):
        registry.observe("runner.task_seconds", value)
    path = tmp_path / LIVE_REPORT_NAME
    LiveReporter(path, interval=0.0).publish(PROGRESS, registry.snapshot())
    document = load_live(path)
    frame = render_top(document, now=document["updated_at"] + 1.0)

    assert "in flight" in frame
    assert "stage measurements" in frame
    assert "tasks 3/10 (30.0%)" in frame
    assert "failures 1" in frame and "retries 2" in frame
    assert "calibration" in frame
    assert "runner.tasks_completed" in frame
    assert "runner.task_seconds" in frame
    assert "updated 1.0s ago" in frame
    # Histogram mean excludes the NaN sample: (0.5+1.5+2.5)/3 = 1.5.
    assert "1.5" in frame
    assert frame.endswith("\n")


def test_render_top_complete_banner():
    frame = render_top(
        {
            "complete": True,
            "updated_at": 100.0,
            "progress": {"stage": "done", "done": 5, "total": 5, "elapsed": 2.0},
            "metrics": {},
        },
        now=100.0,
    )
    assert "complete" in frame
    assert "tasks 5/5" in frame


def test_render_top_tolerates_minimal_document():
    frame = render_top({}, now=0.0)
    assert "repro top" in frame
