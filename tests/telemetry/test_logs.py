"""Structured JSON-lines logging: the REPRO_LOG knob and event records."""

import json
import threading

import pytest

from repro.telemetry import logs


@pytest.fixture(autouse=True)
def _restore_logging():
    before = logs.target()
    yield
    logs.configure(before)
    logs.set_request_id(None)


def test_disabled_by_default_values():
    for raw in (None, "", "0", "  "):
        logs.configure(raw)
        assert not logs.enabled()
        assert logs.target() is None
        logs.log_event("noop")  # must be a silent no-op


def test_stderr_tokens_normalize():
    for raw in ("stderr", "1", "-"):
        logs.configure(raw)
        assert logs.enabled()
        assert logs.target() == "stderr"


def test_file_target_appends_json_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    logs.configure(str(path))
    logs.log_event("first", detail="a")
    logs.log_event("second", value=2)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["event"] == "first" and first["detail"] == "a"
    assert second["event"] == "second" and second["value"] == 2
    for record in (first, second):
        assert isinstance(record["ts"], float)
        assert isinstance(record["pid"], int)


def test_request_id_attached_from_context(tmp_path):
    path = tmp_path / "events.jsonl"
    logs.configure(str(path))
    logs.set_request_id("rid-42")
    logs.log_event("tagged")
    logs.set_request_id(None)
    logs.log_event("untagged")
    tagged, untagged = (json.loads(line) for line in path.read_text().splitlines())
    assert tagged["request_id"] == "rid-42"
    assert "request_id" not in untagged


def test_explicit_request_id_wins_over_context(tmp_path):
    path = tmp_path / "events.jsonl"
    logs.configure(str(path))
    logs.set_request_id("context")
    logs.log_event("e", request_id="explicit")
    record = json.loads(path.read_text())
    assert record["request_id"] == "explicit"


def test_request_id_is_per_thread(tmp_path):
    path = tmp_path / "events.jsonl"
    logs.configure(str(path))
    logs.set_request_id("main-thread")

    def worker():
        # A fresh thread starts with no bound request id.
        assert logs.current_request_id() is None
        logs.set_request_id("worker-thread")
        logs.log_event("from_worker")

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    logs.log_event("from_main")
    records = [json.loads(line) for line in path.read_text().splitlines()]
    by_event = {record["event"]: record for record in records}
    assert by_event["from_worker"]["request_id"] == "worker-thread"
    assert by_event["from_main"]["request_id"] == "main-thread"


def test_non_json_values_are_stringified(tmp_path):
    path = tmp_path / "events.jsonl"
    logs.configure(str(path))
    logs.log_event("odd", obj=object())
    record = json.loads(path.read_text())
    assert record["event"] == "odd"
    assert isinstance(record["obj"], str)


def test_configure_redirects_mid_run(tmp_path):
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    logs.configure(str(first))
    logs.log_event("one")
    logs.configure(str(second))
    logs.log_event("two")
    assert json.loads(first.read_text())["event"] == "one"
    assert json.loads(second.read_text())["event"] == "two"


def test_unwritable_sink_never_raises(tmp_path):
    logs.configure(str(tmp_path / "missing" / "dir" / "events.jsonl"))
    logs.log_event("lost")  # parent dir absent: swallowed, not raised
