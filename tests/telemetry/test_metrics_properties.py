"""Property tests of the snapshot-merge algebra, plus the real-campaign check.

The merge must be associative and commutative so that driver-side
accumulation over worker deltas is order-independent — N workers finishing
in any order produce the same campaign totals as one process doing all the
work.  The algebraic half is checked with hypothesis over integer-valued
snapshots (floating-point addition is not associative, so real counters can
drift in the last ulp; the *structure* of the algebra is what's under
test).  The empirical half runs the same analytic campaign serially and
with two workers and compares every counter exactly.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.units import MS

# ----------------------------------------------------------------------
# Algebraic properties
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["alpha", "beta", "gamma{k=v}"])
_AMOUNTS = st.integers(min_value=0, max_value=1000)


@st.composite
def snapshots(draw):
    """A registry snapshot built from integer-valued operations."""
    registry = MetricsRegistry()
    for _ in range(draw(st.integers(0, 8))):
        registry.counter_inc(draw(_NAMES), draw(_AMOUNTS))
    for _ in range(draw(st.integers(0, 4))):
        registry.gauge_max(draw(_NAMES), draw(_AMOUNTS))
    for _ in range(draw(st.integers(0, 8))):
        registry.observe(draw(_NAMES), draw(_AMOUNTS))
    return registry.snapshot()


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots())
def test_merge_is_commutative(a, b):
    assert merge_snapshots(a, b) == merge_snapshots(b, a)


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots(), c=snapshots())
def test_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert left == right


@settings(max_examples=60, deadline=None)
@given(parts=st.lists(snapshots(), min_size=0, max_size=5))
def test_merging_deltas_equals_single_registry(parts):
    # Folding N worker deltas into an empty snapshot, in any order the
    # scheduler happens to produce, equals one registry seeing everything.
    folded = {"counters": {}, "gauges": {}, "histograms": {}}
    for part in parts:
        folded = merge_snapshots(folded, part)
    combined = MetricsRegistry()
    for part in parts:
        combined.merge(part)
    assert folded == combined.snapshot()


@settings(max_examples=60, deadline=None)
@given(a=snapshots())
def test_empty_snapshot_is_identity(a):
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    assert merge_snapshots(a, empty) == merge_snapshots(empty, a)
    assert json.dumps(merge_snapshots(a, empty), sort_keys=True) == json.dumps(
        {
            "counters": a["counters"],
            "gauges": a["gauges"],
            "histograms": a["histograms"],
        },
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# Empirical property: worker merge == single process on a real campaign
# ----------------------------------------------------------------------
def _pipeline(cache_path):
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            seed=0,
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
            engine="analytic",
        ),
        machine_config=small_test_config(seed=0),
        cache_path=cache_path,
        telemetry=True,
    )


def _campaign_counters(tmp_path, label, workers):
    telemetry.disable()
    telemetry.reset()
    pipeline = _pipeline(tmp_path / label)
    stats = pipeline.ensure_all(workers=workers)
    assert stats["failed"] == 0
    counters = telemetry.registry().snapshot()["counters"]
    telemetry.disable()
    telemetry.reset()
    return counters


def test_two_worker_campaign_counts_equal_serial(tmp_path):
    serial = _campaign_counters(tmp_path, "serial", workers=1)
    pooled = _campaign_counters(tmp_path, "pooled", workers=2)
    assert serial == pooled
    # And the campaign really did something worth counting.
    assert serial["pipeline.experiments_completed"] > 0
    assert serial["runner.tasks_completed"] == serial["runner.tasks_submitted"]
