"""Unit tests for the dependency-free metrics registry."""

import json

import pytest

from repro.telemetry.metrics import (
    MetricsRegistry,
    merge_snapshots,
    serialize_key,
)


def test_serialize_key_is_stable_under_label_order():
    assert serialize_key("m", {"a": 1, "b": 2}) == serialize_key("m", {"b": 2, "a": 1})
    assert serialize_key("m", {}) == "m"
    assert serialize_key("m", {"k": "v"}) == "m{k=v}"


def test_counter_accumulates_and_defaults_to_zero():
    registry = MetricsRegistry()
    assert registry.counter_value("hits") == 0.0
    registry.counter_inc("hits")
    registry.counter_inc("hits", 2.5)
    assert registry.counter_value("hits") == 3.5


def test_counter_labels_address_distinct_instruments():
    registry = MetricsRegistry()
    registry.counter_inc("fail", category="timeout")
    registry.counter_inc("fail", category="exception")
    registry.counter_inc("fail", category="timeout")
    assert registry.counter_value("fail", category="timeout") == 2.0
    assert registry.counter_value("fail", category="exception") == 1.0
    assert registry.counter_value("fail") == 0.0  # unlabeled is its own key


def test_gauge_set_and_max():
    registry = MetricsRegistry()
    assert registry.gauge_value("depth") is None
    registry.gauge_set("depth", 4.0)
    registry.gauge_set("depth", 2.0)
    assert registry.gauge_value("depth") == 2.0  # last write wins
    registry.gauge_max("peak", 3.0)
    registry.gauge_max("peak", 1.0)
    registry.gauge_max("peak", 7.0)
    assert registry.gauge_value("peak") == 7.0  # high-water mark


def test_histogram_tracks_count_sum_extrema_and_buckets():
    registry = MetricsRegistry()
    for value in (0.5, 2.0, 3.0, 0.0):
        registry.observe("util", value)
    state = registry.histogram_state("util")
    assert state["count"] == 4
    assert state["sum"] == pytest.approx(5.5)
    assert state["min"] == 0.0
    assert state["max"] == 3.0
    # log2 buckets: 0.5 -> -1, 2.0 and 3.0 -> 1, 0.0 -> "zero"
    assert state["buckets"] == {"-1": 1, "1": 2, "zero": 1}


def test_snapshot_is_json_ready_and_detached():
    registry = MetricsRegistry()
    registry.counter_inc("c")
    registry.gauge_set("g", 1.0)
    registry.observe("h", 2.0)
    snap = registry.snapshot()
    json.dumps(snap)  # must not raise
    registry.counter_inc("c")  # later updates must not leak into the copy
    assert snap["counters"]["c"] == 1.0


def test_merge_folds_another_snapshot_in():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.counter_inc("c", 1)
    right.counter_inc("c", 2)
    left.gauge_max("g", 5.0)
    right.gauge_max("g", 3.0)
    left.observe("h", 1.0)
    right.observe("h", 4.0)
    left.merge(right.snapshot())
    assert left.counter_value("c") == 3.0
    assert left.gauge_value("g") == 5.0
    state = left.histogram_state("h")
    assert state["count"] == 2 and state["min"] == 1.0 and state["max"] == 4.0


def test_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter_inc("c")
    registry.gauge_set("g", 1.0)
    registry.observe("h", 1.0)
    registry.reset()
    snap = registry.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_snapshots_is_pure():
    a = {"counters": {"c": 1.0}, "gauges": {}, "histograms": {}}
    b = {"counters": {"c": 2.0}, "gauges": {}, "histograms": {}}
    merged = merge_snapshots(a, b)
    assert merged["counters"]["c"] == 3.0
    assert a["counters"]["c"] == 1.0 and b["counters"]["c"] == 2.0


# ----------------------------------------------------------------------
# Key escaping round-trip
# ----------------------------------------------------------------------
def test_parse_key_inverts_serialize_key():
    from repro.telemetry.metrics import parse_key

    cases = [
        ("m", {}),
        ("m", {"k": "v"}),
        ("m", {"a": "1", "b": "2"}),
        ("serving.requests", {"endpoint": "/predict", "status": "200"}),
    ]
    for name, labels in cases:
        assert parse_key(serialize_key(name, labels)) == (name, labels)


def test_parse_key_round_trips_hostile_label_values():
    from repro.telemetry.metrics import parse_key

    hostile = {
        "eq": "a=b",
        "comma": "x,y",
        "braces": "{inner}",
        "backslash": "a\\b",
        "newline": "line1\nline2",
        "all": "=,{}\\\n",
    }
    key = serialize_key("m", hostile)
    assert "\n" not in key  # keys stay single-line for exposition & logs
    name, labels = parse_key(key)
    assert name == "m"
    assert labels == hostile


def test_hostile_labels_stay_distinct_instruments():
    registry = MetricsRegistry()
    registry.counter_inc("c", k="a=b")
    registry.counter_inc("c", **{"k": "a", "k2": "b"})
    assert registry.counter_value("c", k="a=b") == 1.0
    assert registry.counter_value("c", k="a", k2="b") == 1.0


def test_parse_key_rejects_malformed_keys():
    from repro.telemetry.metrics import parse_key

    for bad in ("m{", "m{k=v", "m{k}", "m{k=v}trailing"):
        with pytest.raises(ValueError):
            parse_key(bad)


# ----------------------------------------------------------------------
# Non-finite observations
# ----------------------------------------------------------------------
def test_observe_nonfinite_lands_in_dedicated_bucket():
    from repro.telemetry.metrics import NONFINITE_BUCKET

    registry = MetricsRegistry()
    registry.observe("h", 1.0)
    registry.observe("h", float("nan"))
    registry.observe("h", float("inf"))
    registry.observe("h", float("-inf"))
    state = registry.histogram_state("h")
    assert state["count"] == 4
    assert state["buckets"][NONFINITE_BUCKET] == 3
    # Non-finite samples never poison sum or the extrema.
    assert state["sum"] == 1.0
    assert state["min"] == 1.0
    assert state["max"] == 1.0


def test_nonfinite_only_histogram_has_finite_sum():
    registry = MetricsRegistry()
    registry.observe("h", float("nan"))
    state = registry.histogram_state("h")
    assert state["count"] == 1
    assert state["sum"] == 0.0
    assert state["min"] is None and state["max"] is None


def test_merge_snapshots_preserves_nonfinite_bucket():
    from repro.telemetry.metrics import NONFINITE_BUCKET

    left = MetricsRegistry()
    right = MetricsRegistry()
    left.observe("h", float("inf"))
    left.observe("h", 2.0)
    right.observe("h", float("nan"))
    merged = merge_snapshots(left.snapshot(), right.snapshot())
    state = merged["histograms"]["h"]
    assert state["count"] == 3
    assert state["buckets"][NONFINITE_BUCKET] == 2
    assert state["sum"] == 2.0


# ----------------------------------------------------------------------
# Percentile estimation
# ----------------------------------------------------------------------
def test_histogram_percentile_walks_bucket_edges():
    from repro.telemetry.metrics import histogram_percentile

    registry = MetricsRegistry()
    for value in (0.0, 0.5, 0.5, 3.0, 3.0, 3.0):
        registry.observe("h", value)
    state = registry.histogram_state("h")
    assert histogram_percentile(state, 0.01) == 0.0  # zero bucket
    assert histogram_percentile(state, 0.5) == 1.0  # upper edge of [0.5, 1)
    assert histogram_percentile(state, 0.99) == 3.0  # capped at observed max


def test_histogram_percentile_ignores_nonfinite_and_handles_empty():
    from repro.telemetry.metrics import histogram_percentile

    registry = MetricsRegistry()
    registry.observe("h", 1.0)
    registry.observe("h", float("inf"))
    state = registry.histogram_state("h")
    assert histogram_percentile(state, 0.99) == 1.0
    assert histogram_percentile({"count": 0, "buckets": {}}, 0.5) is None
