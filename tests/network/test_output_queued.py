"""Tests for the output-queued crossbar switch with per-flow RR arbitration."""

import pytest

from repro.errors import ConfigurationError
from repro.network import DeterministicService, OutputQueuedSwitch
from repro.network.packet import Packet
from repro.sim import RandomStreams, Simulator


def _switch(sim, bandwidth=1000.0, overhead=0.0, egress=0.0):
    return OutputQueuedSwitch(
        sim,
        port_bandwidth=bandwidth,
        overhead_model=DeterministicService(overhead) if overhead > 0 else DeterministicService(1e-12),
        rng=RandomStreams(0).stream("svc"),
        egress_latency=egress,
    )


def _packet(mid=0, dst=1, size=1000, flow=None):
    return Packet(mid, 0, True, size, src_node=0, dst_node=dst, flow=flow)


def test_single_packet_served_at_port_rate():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    out = []
    switch.attach_endpoint(1, lambda p: out.append(sim.now))
    switch.arrive(_packet(size=1000))
    sim.run()
    assert out == [pytest.approx(1.0, rel=1e-6)]


def test_different_ports_serve_in_parallel():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    out = []
    switch.attach_endpoint(1, lambda p: out.append((sim.now, p.dst_node)))
    switch.attach_endpoint(2, lambda p: out.append((sim.now, p.dst_node)))
    switch.arrive(_packet(mid=0, dst=1))
    switch.arrive(_packet(mid=1, dst=2))
    sim.run()
    # Both complete at t=1: no cross-port contention.
    times = [t for t, _ in out]
    assert times[0] == pytest.approx(1.0, rel=1e-6)
    assert times[1] == pytest.approx(1.0, rel=1e-6)


def test_same_port_serializes():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    out = []
    switch.attach_endpoint(1, lambda p: out.append(sim.now))
    switch.arrive(_packet(mid=0))
    switch.arrive(_packet(mid=1))
    sim.run()
    assert out == [pytest.approx(1.0, rel=1e-6), pytest.approx(2.0, rel=1e-6)]


def test_round_robin_interleaves_flows():
    """A single-packet flow overtakes a long backlog of another flow."""
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    out = []
    switch.attach_endpoint(1, lambda p: out.append((sim.now, p.flow)))
    for i in range(5):
        switch.arrive(_packet(mid=i, flow="bulk"))
    switch.arrive(_packet(mid=9, flow="probe"))
    sim.run()
    # probe is served 3rd (one bulk packet was in service and one more was
    # granted before the rotation saw the probe), not 6th.
    flows = [flow for _t, flow in out]
    assert flows.index("probe") == 2


def test_fifo_within_one_flow():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    out = []
    switch.attach_endpoint(1, lambda p: out.append(p.message_id))
    for i in range(4):
        switch.arrive(_packet(mid=i, flow="same"))
    sim.run()
    assert out == [0, 1, 2, 3]


def test_overhead_added_per_packet():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0, overhead=0.5)
    out = []
    switch.attach_endpoint(1, lambda p: out.append(sim.now))
    switch.arrive(_packet(size=1000))
    sim.run()
    assert out == [pytest.approx(1.5)]


def test_egress_latency_applied():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0, egress=0.25)
    out = []
    switch.attach_endpoint(1, lambda p: out.append(sim.now))
    switch.arrive(_packet())
    sim.run()
    assert out == [pytest.approx(1.25, rel=1e-6)]


def test_utilization_counts_attached_ports():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    switch.attach_endpoint(1, lambda p: None)
    switch.attach_endpoint(2, lambda p: None)
    switch.arrive(_packet(dst=1))  # keeps port 1 busy 1s
    sim.run()
    # One of two ports busy for the full window -> 50%.
    assert switch.utilization(sim.now) == pytest.approx(0.5, rel=1e-6)


def test_queue_introspection():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    switch.attach_endpoint(1, lambda p: None)
    for i in range(3):
        switch.arrive(_packet(mid=i))
    assert switch.queue_length_of(1) == 2  # one in service
    assert switch.total_queued == 2
    assert switch.active_port_count == 1
    sim.run()
    assert switch.total_queued == 0


def test_default_flow_is_source_node():
    packet = Packet(0, 0, True, 100, src_node=7, dst_node=1)
    assert packet.flow == 7


def test_invalid_bandwidth_rejected():
    with pytest.raises(ConfigurationError):
        OutputQueuedSwitch(
            Simulator(),
            port_bandwidth=0.0,
            overhead_model=DeterministicService(1e-9),
            rng=RandomStreams(0).stream("s"),
        )


def test_port_report_and_hotspots():
    sim = Simulator()
    switch = _switch(sim, bandwidth=1000.0)
    switch.attach_endpoint(1, lambda p: None)
    switch.attach_endpoint(2, lambda p: None)
    # Port 1 gets 3 packets, port 2 gets 1.
    for i in range(3):
        switch.arrive(_packet(mid=i, dst=1))
    switch.arrive(_packet(mid=9, dst=2))
    sim.run()
    report = switch.port_report(sim.now)
    assert report[1][0] == 3 and report[2][0] == 1
    assert report[1][1] > report[2][1]
    hotspots = switch.hotspots(sim.now, top=1)
    assert hotspots[0][0] == 1


def test_port_report_empty_window():
    sim = Simulator()
    switch = _switch(sim)
    assert switch.port_report(sim.now) == {}
    assert switch.hotspots(sim.now) == []
