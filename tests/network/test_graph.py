"""Tests for networkx topology analysis."""

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.network import FatTreeTopology, SingleSwitchTopology
from repro.network.graph import (
    bisection_width,
    oversubscription_ratio,
    switch_hop_count,
    topology_graph,
)


def test_single_switch_graph_is_a_star():
    graph = topology_graph(SingleSwitchTopology(6))
    assert graph.number_of_nodes() == 7
    assert graph.number_of_edges() == 6
    assert graph.degree["s0"] == 6


def test_fat_tree_graph_structure():
    topo = FatTreeTopology(leaf_count=2, nodes_per_leaf=3, root_count=1)
    graph = topology_graph(topo)
    # 6 nodes + 3 switches; 6 downlinks + 2 uplinks (one per leaf-root pair).
    assert graph.number_of_nodes() == 9
    assert graph.number_of_edges() == 8
    kinds = nx.get_node_attributes(graph, "kind")
    assert sum(1 for kind in kinds.values() if kind == "switch") == 3


def test_graph_is_connected():
    for topo in (SingleSwitchTopology(4), FatTreeTopology(3, 2, 2)):
        assert nx.is_connected(topology_graph(topo))


def test_switch_hop_count():
    single = SingleSwitchTopology(4)
    assert switch_hop_count(single, 0, 3) == 1
    assert switch_hop_count(single, 2, 2) == 0
    tree = FatTreeTopology(2, 2, 1)
    assert switch_hop_count(tree, 0, 1) == 1  # same leaf
    assert switch_hop_count(tree, 0, 3) == 3  # via root


def test_single_switch_bisection_is_half_the_nodes():
    assert bisection_width(SingleSwitchTopology(18)) == 9
    assert bisection_width(SingleSwitchTopology(4)) == 2


def test_fat_tree_bisection_limited_by_uplinks():
    # 2 leaves x 4 nodes: the halves align with the leaves, so the cut is
    # the leaf-to-root uplinks — one per root.
    assert bisection_width(FatTreeTopology(2, 4, root_count=1)) == 1
    assert bisection_width(FatTreeTopology(2, 4, root_count=2)) == 2


def test_bisection_requires_two_nodes():
    with pytest.raises(ConfigurationError):
        bisection_width(SingleSwitchTopology(1))


def test_oversubscription_ratio():
    balanced = FatTreeTopology(leaf_count=2, nodes_per_leaf=2, root_count=2)
    assert oversubscription_ratio(balanced) == pytest.approx(1.0)
    oversubscribed = FatTreeTopology(leaf_count=2, nodes_per_leaf=8, root_count=2)
    assert oversubscription_ratio(oversubscribed) == pytest.approx(4.0)
