"""Tests for the switch fabric queue."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.network import DeterministicService, ExponentialService, SwitchFabric
from repro.network.packet import Packet
from repro.sim import RandomStreams, Simulator


def _packet(message_id=0, seq=0, dst=1, size=1000):
    return Packet(message_id, seq, True, size, src_node=0, dst_node=dst)


def _fabric(sim, service=1.0, egress=0.0, servers=1):
    return SwitchFabric(
        sim,
        service_model=DeterministicService(service),
        rng=RandomStreams(0).stream("svc"),
        egress_latency=egress,
        servers=servers,
    )


def test_single_packet_served_after_service_time():
    sim = Simulator()
    fabric = _fabric(sim, service=2.0)
    out = []
    fabric.attach_endpoint(1, lambda p: out.append(sim.now))
    fabric.arrive(_packet())
    sim.run()
    assert out == [2.0]


def test_fifo_queueing_of_simultaneous_arrivals():
    sim = Simulator()
    fabric = _fabric(sim, service=1.0)
    out = []
    fabric.attach_endpoint(1, lambda p: out.append((sim.now, p.message_id)))
    fabric.arrive(_packet(message_id=0))
    fabric.arrive(_packet(message_id=1))
    fabric.arrive(_packet(message_id=2))
    assert fabric.queue_length == 2 and fabric.in_service == 1
    sim.run()
    assert out == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_egress_latency_added_after_service():
    sim = Simulator()
    fabric = _fabric(sim, service=1.0, egress=0.5)
    out = []
    fabric.attach_endpoint(1, lambda p: out.append(sim.now))
    fabric.arrive(_packet())
    sim.run()
    assert out == [1.5]


def test_multiple_servers_serve_in_parallel():
    sim = Simulator()
    fabric = _fabric(sim, service=1.0, servers=2)
    out = []
    fabric.attach_endpoint(1, lambda p: out.append(sim.now))
    for m in range(3):
        fabric.arrive(_packet(message_id=m))
    sim.run()
    assert out == [1.0, 1.0, 2.0]


def test_unattached_destination_raises():
    sim = Simulator()
    fabric = _fabric(sim)
    fabric.arrive(_packet(dst=42))
    with pytest.raises(SimulationError, match="no endpoint"):
        sim.run()


def test_double_attach_rejected():
    sim = Simulator()
    fabric = _fabric(sim)
    fabric.attach_endpoint(1, lambda p: None)
    with pytest.raises(ConfigurationError, match="already attached"):
        fabric.attach_endpoint(1, lambda p: None)


def test_invalid_construction():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        _fabric(sim, servers=0)
    with pytest.raises(ConfigurationError):
        _fabric(sim, egress=-0.1)


def test_stats_track_waits_and_busy_time():
    sim = Simulator()
    fabric = _fabric(sim, service=1.0)
    fabric.attach_endpoint(1, lambda p: None)
    fabric.arrive(_packet(0))
    fabric.arrive(_packet(1))  # waits 1s
    sim.run()
    stats = fabric.stats
    assert stats.arrivals == 2
    assert stats.served == 2
    assert stats.busy_time == pytest.approx(2.0)
    assert stats.mean_wait == pytest.approx(0.5)
    assert stats.mean_service == pytest.approx(1.0)
    assert stats.mean_sojourn == pytest.approx(1.5)
    assert stats.utilization(sim.now) == pytest.approx(1.0)


def test_stats_reset_window():
    sim = Simulator()
    fabric = _fabric(sim, service=1.0)
    fabric.attach_endpoint(1, lambda p: None)
    fabric.arrive(_packet(0))
    sim.run()
    fabric.stats.reset(sim.now)
    assert fabric.stats.served == 0
    assert fabric.stats.utilization(sim.now + 10.0) == 0.0


def test_mg1_simulation_matches_pollaczek_khinchine():
    """Poisson arrivals + exponential service: measured sojourn ≈ M/M/1 W."""
    from repro.queueing import MM1

    sim = Simulator()
    service_mean = 1.0
    fabric = SwitchFabric(
        sim,
        service_model=ExponentialService(service_mean),
        rng=RandomStreams(7).stream("svc"),
        egress_latency=0.0,
    )
    fabric.attach_endpoint(1, lambda p: None)
    rho = 0.6
    arrivals_rng = RandomStreams(7).stream("arrivals")

    def poisson_source():
        for m in range(40_000):
            yield float(arrivals_rng.exponential(service_mean / rho))
            fabric.arrive(_packet(message_id=m))

    sim.spawn(poisson_source(), "src")
    sim.run()
    theory = MM1(arrival_rate=rho / service_mean, service_rate=1.0 / service_mean)
    measured = fabric.stats.mean_sojourn
    assert measured == pytest.approx(theory.sojourn_time, rel=0.08)
    assert fabric.stats.utilization(sim.now) == pytest.approx(rho, abs=0.03)
