"""Tests for packets and packetization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network import packet_count, packetize


def test_small_message_is_one_packet():
    packets = packetize(0, 1024, 2048, src_node=0, dst_node=1)
    assert len(packets) == 1
    assert packets[0].size == 1024
    assert packets[0].last


def test_exact_multiple_splits_evenly():
    packets = packetize(0, 4096, 2048, 0, 1)
    assert [p.size for p in packets] == [2048, 2048]
    assert [p.last for p in packets] == [False, True]


def test_remainder_goes_to_last_packet():
    packets = packetize(0, 5000, 2048, 0, 1)
    assert [p.size for p in packets] == [2048, 2048, 904]
    assert sum(p.size for p in packets) == 5000


def test_zero_byte_message_costs_one_packet():
    packets = packetize(0, 0, 2048, 0, 1)
    assert len(packets) == 1
    assert packets[0].size == 0
    assert packets[0].last


def test_sequence_numbers_and_endpoints():
    packets = packetize(7, 6000, 2048, src_node=3, dst_node=9)
    assert [p.seq for p in packets] == [0, 1, 2]
    assert all(p.message_id == 7 for p in packets)
    assert all(p.src_node == 3 and p.dst_node == 9 for p in packets)


def test_packet_count_matches_packetize():
    for nbytes in [0, 1, 2047, 2048, 2049, 100_000]:
        assert packet_count(nbytes, 2048) == len(packetize(0, nbytes, 2048, 0, 1))


def test_invalid_mtu_rejected():
    with pytest.raises(ConfigurationError):
        packet_count(100, 0)


def test_negative_size_rejected():
    with pytest.raises(ConfigurationError):
        packet_count(-1, 2048)


@given(
    nbytes=st.integers(min_value=0, max_value=500_000),
    mtu=st.integers(min_value=64, max_value=65536),
)
def test_property_packetize_conserves_bytes(nbytes, mtu):
    packets = packetize(0, nbytes, mtu, 0, 1)
    assert sum(p.size for p in packets) == nbytes
    assert all(0 <= p.size <= mtu for p in packets)
    assert sum(1 for p in packets if p.last) == 1
    assert packets[-1].last
