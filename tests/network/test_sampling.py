"""Tests for the shared batched sample stream."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network import DeterministicService, SampleStream
from repro.network.service_time import LognormalService
from repro.sim import RandomStreams


def test_yields_model_draws_in_order():
    stream = SampleStream(
        LognormalService(mean=1.0, sigma=0.5), RandomStreams(7).stream("svc"),
        batch=16,
    )
    # Replicate the exact RNG consumption: one discarded priming draw,
    # then refills of `batch`.
    rng = RandomStreams(7).stream("svc")
    model = LognormalService(mean=1.0, sigma=0.5)
    model.sample_many(rng, 1)  # the priming draw
    expected = list(model.sample_many(rng, 16)) + list(model.sample_many(rng, 16))
    got = [stream.next() for _ in range(32)]
    assert got == pytest.approx(expected)


def test_priming_draw_is_discarded_not_returned():
    rng = RandomStreams(3).stream("svc")
    model = LognormalService(mean=2.0, sigma=0.3)
    primed = model.sample_many(RandomStreams(3).stream("svc"), 1)[0]
    stream = SampleStream(model, rng, batch=4)
    first = stream.next()
    # The first *returned* value is the first draw of the first refill
    # batch, not the construction-time priming draw.
    assert first != pytest.approx(primed)


def test_deterministic_service_stream_is_constant():
    stream = SampleStream(
        DeterministicService(0.25), RandomStreams(0).stream("svc"), batch=8
    )
    assert [stream.next() for _ in range(20)] == [0.25] * 20


def test_callable_alias():
    stream = SampleStream(
        DeterministicService(1.5), RandomStreams(0).stream("svc")
    )
    assert stream() == 1.5


def test_returns_python_floats():
    stream = SampleStream(
        LognormalService(mean=1.0, sigma=0.2), RandomStreams(1).stream("svc")
    )
    value = stream.next()
    assert type(value) is float
    assert np.isfinite(value)


def test_batch_must_be_positive():
    with pytest.raises(ConfigurationError):
        SampleStream(
            DeterministicService(1.0), RandomStreams(0).stream("svc"), batch=0
        )
