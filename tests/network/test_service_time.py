"""Tests for service-time distribution models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.network import (
    DeterministicService,
    ExponentialService,
    LognormalService,
    MixtureService,
    default_fabric_service,
)

RNG = np.random.default_rng(0)


def test_deterministic_always_mean():
    model = DeterministicService(2e-6)
    assert model.sample(RNG) == 2e-6
    assert model.variance == 0.0
    assert model.scv == 0.0
    np.testing.assert_array_equal(model.sample_many(RNG, 5), np.full(5, 2e-6))


def test_exponential_moments():
    model = ExponentialService(1e-6)
    assert model.mean == 1e-6
    assert model.variance == pytest.approx(1e-12)
    assert model.scv == pytest.approx(1.0)


def test_exponential_empirical_mean():
    model = ExponentialService(3e-6)
    samples = model.sample_many(np.random.default_rng(1), 50_000)
    assert samples.mean() == pytest.approx(3e-6, rel=0.03)


def test_lognormal_hits_target_mean():
    model = LognormalService(mean=0.8e-6, sigma=0.5)
    samples = model.sample_many(np.random.default_rng(2), 100_000)
    assert samples.mean() == pytest.approx(0.8e-6, rel=0.02)
    assert samples.var(ddof=1) == pytest.approx(model.variance, rel=0.1)


def test_lognormal_zero_sigma_is_deterministic():
    model = LognormalService(mean=1e-6, sigma=0.0)
    assert model.sample(RNG) == pytest.approx(1e-6)
    assert model.variance == pytest.approx(0.0, abs=1e-20)


def test_mixture_moments_law_of_total_variance():
    fast = DeterministicService(1.0)
    slow = DeterministicService(3.0)
    mix = MixtureService([fast, slow], [0.5, 0.5])
    assert mix.mean == pytest.approx(2.0)
    assert mix.variance == pytest.approx(1.0)  # pure between-component variance


def test_mixture_empirical_matches_analytic():
    mix = default_fabric_service()
    samples = mix.sample_many(np.random.default_rng(3), 200_000)
    assert samples.mean() == pytest.approx(mix.mean, rel=0.02)
    assert samples.var(ddof=1) == pytest.approx(mix.variance, rel=0.1)


def test_default_fabric_has_heavy_tail():
    """~2% of default-fabric services should be several times the mean."""
    mix = default_fabric_service()
    samples = mix.sample_many(np.random.default_rng(4), 100_000)
    tail_fraction = (samples > 2.5 * mix.mean).mean()
    assert 0.01 < tail_fraction < 0.05


def test_mixture_weights_normalized():
    mix = MixtureService([DeterministicService(1.0), DeterministicService(2.0)], [2.0, 2.0])
    assert mix.mean == pytest.approx(1.5)


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        DeterministicService(0.0)
    with pytest.raises(ConfigurationError):
        DeterministicService(-1e-6)
    with pytest.raises(ConfigurationError):
        LognormalService(1e-6, sigma=-0.1)
    with pytest.raises(ConfigurationError):
        MixtureService([], [])
    with pytest.raises(ConfigurationError):
        MixtureService([DeterministicService(1.0)], [0.0])
    with pytest.raises(ConfigurationError):
        MixtureService([DeterministicService(1.0)], [1.0, 2.0])


def test_rate_is_reciprocal_mean():
    assert DeterministicService(0.5).rate == pytest.approx(2.0)


@settings(max_examples=25, deadline=None)
@given(
    mean=st.floats(min_value=1e-8, max_value=1e-3),
    sigma=st.floats(min_value=0.0, max_value=1.5),
)
def test_property_lognormal_samples_positive_and_mean_consistent(mean, sigma):
    model = LognormalService(mean, sigma)
    samples = model.sample_many(np.random.default_rng(5), 2000)
    assert np.all(samples > 0)
    assert model.mean == pytest.approx(mean)
    assert model.variance >= 0
