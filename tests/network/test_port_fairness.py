"""Round-robin fairness property of the output port's flow arbitration.

The paper's probes stay meaningful under heavy interference only because a
light flow is never stuck behind a competitor's whole backlog: per-flow
round-robin bounds its wait by ~one packet per competing flow.  These
properties pin that invariant directly on ``_OutputPort``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import DeterministicService, OutputQueuedSwitch
from repro.network.packet import Packet
from repro.sim import RandomStreams, Simulator

PORT_BANDWIDTH = 1000.0
HEAVY_SIZE = 1000  # 1 s of service per heavy packet
PROBE_SIZE = 100  # 0.1 s of service


def _switch(sim):
    return OutputQueuedSwitch(
        sim,
        port_bandwidth=PORT_BANDWIDTH,
        overhead_model=DeterministicService(1e-12),
        rng=RandomStreams(0).stream("svc"),
        egress_latency=0.0,
    )


def _packet(mid, size, flow):
    return Packet(mid, 0, True, size, src_node=0, dst_node=1, flow=flow)


@settings(deadline=None, max_examples=60)
@given(
    n_flows=st.integers(min_value=1, max_value=6),
    backlog=st.integers(min_value=2, max_value=15),
    arrival_step=st.integers(min_value=0, max_value=10),
)
def test_probe_waits_at_most_one_packet_per_competing_flow(
    n_flows, backlog, arrival_step,
):
    sim = Simulator()
    switch = _switch(sim)
    delivered = {}
    switch.attach_endpoint(1, lambda p: delivered.setdefault(p.flow, sim.now))

    mid = 0
    for flow in range(n_flows):
        for _ in range(backlog):
            switch.arrive(_packet(mid, HEAVY_SIZE, flow=f"heavy{flow}"))
            mid += 1

    heavy_service = HEAVY_SIZE / PORT_BANDWIDTH
    probe_service = PROBE_SIZE / PORT_BANDWIDTH
    # Inject the probe mid-burst, anywhere inside the busy period.
    arrival = arrival_step * 0.3 * heavy_service
    probe = _packet(mid, PROBE_SIZE, flow="probe")
    sim.schedule(arrival, switch.arrive, probe)
    sim.run()

    wait = delivered["probe"] - arrival - probe_service
    # Round-robin bound: the in-service packet's remainder plus at most one
    # full heavy packet per competing flow (small slack for the overhead
    # epsilon and float rounding).
    assert wait <= (n_flows + 1) * heavy_service + 1e-6


@settings(deadline=None, max_examples=30)
@given(
    backlog=st.integers(min_value=4, max_value=15),
    probes=st.integers(min_value=2, max_value=5),
)
def test_light_flow_beats_fifo_behind_deep_backlog(backlog, probes):
    # Under FIFO a probe arriving behind a deep single-flow backlog would
    # wait for the entire burst; round-robin interleaves it after at most
    # one heavy packet, and successive probe packets alternate 1:1 with the
    # heavy flow instead of draining after it.
    sim = Simulator()
    switch = _switch(sim)
    delivered = []
    switch.attach_endpoint(
        1, lambda p: delivered.append((p.flow, p.message_id, sim.now))
    )

    mid = 0
    for _ in range(backlog):
        switch.arrive(_packet(mid, HEAVY_SIZE, flow="heavy"))
        mid += 1
    for _ in range(probes):
        switch.arrive(_packet(mid, PROBE_SIZE, flow="probe"))
        mid += 1
    sim.run()

    heavy_service = HEAVY_SIZE / PORT_BANDWIDTH
    probe_service = PROBE_SIZE / PORT_BANDWIDTH
    probe_times = [t for flow, _mid, t in delivered if flow == "probe"]
    # FIFO would deliver the first probe only after the whole heavy burst.
    assert probe_times[0] < backlog * heavy_service
    # k-th probe packet has seen at most k+2 heavy services and its own
    # flow's k earlier packets ahead of it.
    for k, t in enumerate(probe_times):
        bound = (k + 2) * heavy_service + (k + 1) * probe_service
        assert t <= bound + 1e-6


def test_flow_rotation_is_packet_granular():
    # Three equal flows with two packets each: service alternates
    # a, b, c, a, b, c — never two packets of one flow back to back while
    # another flow is waiting.
    sim = Simulator()
    switch = _switch(sim)
    order = []
    switch.attach_endpoint(1, lambda p: order.append(p.flow))
    mid = 0
    for _ in range(2):
        for flow in "abc":
            switch.arrive(_packet(mid, HEAVY_SIZE, flow=flow))
            mid += 1
    sim.run()
    assert order == ["a", "b", "c", "a", "b", "c"]
