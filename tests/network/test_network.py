"""Tests for the InterconnectNetwork message layer."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigurationError
from repro.network import (
    DeterministicService,
    FatTreeTopology,
    InterconnectNetwork,
    SingleSwitchTopology,
)
from repro.sim import RandomStreams, Simulator
from repro.units import KB, US


def _net(sim, nodes=4, **overrides):
    config = NetworkConfig(
        switch_mode="central",
        fabric_service=DeterministicService(0.8 * US),
        **overrides,
    )
    return InterconnectNetwork.single_switch(sim, nodes, config, RandomStreams(0))


def test_message_delivery_fires_once():
    sim = Simulator()
    net = _net(sim)
    done = []
    net.send(0, 1, 1 * KB, on_delivered=lambda: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert 0.5 * US < done[0] < 5 * US


def test_multi_packet_message_delivers_on_last_packet():
    sim = Simulator()
    net = _net(sim, mtu=1024)
    single, multi = [], []
    net.send(0, 1, 1 * KB, on_delivered=lambda: single.append(sim.now))
    sim.run()
    sim2 = Simulator()
    net2 = _net(sim2, mtu=1024)
    net2.send(0, 1, 8 * KB, on_delivered=lambda: multi.append(sim2.now))
    sim2.run()
    assert multi[0] > single[0]  # eight packets take longer than one


def test_on_sent_fires_at_local_completion_before_delivery():
    sim = Simulator()
    net = _net(sim, mtu=1024, link_latency=5 * US)
    sent, delivered = [], []
    net.send(
        0, 1, 4 * KB,
        on_delivered=lambda: delivered.append(sim.now),
        on_sent=lambda: sent.append(sim.now),
    )
    sim.run()
    assert sent[0] < delivered[0]


def test_intra_node_message_bypasses_fabric():
    sim = Simulator()
    net = _net(sim)
    done = []
    net.send(2, 2, 64 * KB, on_delivered=lambda: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert net.switch(0).stats.arrivals == 0  # nothing hit the switch


def test_in_flight_tracking():
    sim = Simulator()
    net = _net(sim)
    net.send(0, 1, 1 * KB, on_delivered=lambda: None)
    assert net.in_flight == 1
    sim.run()
    assert net.in_flight == 0


def test_counters():
    sim = Simulator()
    net = _net(sim)
    net.send(0, 1, 3 * KB, on_delivered=lambda: None)
    net.send(1, 2, 2 * KB, on_delivered=lambda: None)
    assert net.messages_sent == 2
    assert net.bytes_sent == 5 * KB


def test_negative_size_rejected():
    sim = Simulator()
    net = _net(sim)
    with pytest.raises(ConfigurationError):
        net.send(0, 1, -1, on_delivered=lambda: None)


def test_concurrent_senders_contend_for_fabric():
    """Ten simultaneous senders to one switch serialize through the fabric."""
    sim = Simulator()
    net = _net(sim, nodes=11)
    times = []
    for src in range(10):
        net.send(src, 10, 1 * KB, on_delivered=lambda: times.append(sim.now))
    sim.run()
    assert len(times) == 10
    # With a 0.8µs deterministic service the last delivery reflects queueing:
    # at least 10 services back to back.
    assert max(times) >= 10 * 0.8 * US


def test_messages_between_same_pair_deliver_in_order():
    sim = Simulator()
    net = _net(sim)
    order = []
    for tag in range(5):
        net.send(0, 1, 2 * KB, on_delivered=(lambda t=tag: order.append(t)))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_fat_tree_cross_leaf_traverses_three_fabrics():
    sim = Simulator()
    topo = FatTreeTopology(leaf_count=2, nodes_per_leaf=2, root_count=1)
    config = NetworkConfig(switch_mode="central", fabric_service=DeterministicService(1 * US))
    net = InterconnectNetwork(sim, topo, config, RandomStreams(0))
    done = []
    net.send(0, 3, 1 * KB, on_delivered=lambda: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert net.switches[0].stats.served == 1  # src leaf
    assert net.switches[2].stats.served == 1  # root
    assert net.switches[1].stats.served == 1  # dst leaf


def test_fat_tree_same_leaf_single_hop():
    sim = Simulator()
    topo = FatTreeTopology(leaf_count=2, nodes_per_leaf=2, root_count=1)
    config = NetworkConfig(switch_mode="central", fabric_service=DeterministicService(1 * US))
    net = InterconnectNetwork(sim, topo, config, RandomStreams(0))
    net.send(0, 1, 1 * KB, on_delivered=lambda: None)
    sim.run()
    assert net.switches[0].stats.served == 1
    assert net.switches[2].stats.served == 0


def test_reset_stats_clears_all_switches():
    sim = Simulator()
    net = _net(sim)
    net.send(0, 1, 1 * KB, on_delivered=lambda: None)
    sim.run()
    assert net.switch(0).stats.served > 0
    net.reset_stats()
    assert net.switch(0).stats.served == 0
