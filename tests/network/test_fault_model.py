"""Invariant tests for the per-link fault model.

The fault model is only trustworthy if the simulator keeps honest books:
every packet the NICs inject must end up in exactly one ledger column
(delivered, dropped, or corrupted), every loss must be matched by exactly
one retransmit, and a flapped link must deliver *nothing* inside its
down-window.  These tests assert all of that against the fabric_stats
counters rather than against callbacks alone, so double-counting or silent
packet leaks cannot hide.
"""

import pytest

from repro.config import LinkFaultConfig, NetworkConfig
from repro.network import (
    FabricLink,
    InterconnectNetwork,
    LeafSpineTopology,
    packet_count,
    packetize,
)
from repro.sim import RandomStreams, Simulator
from repro.units import GB, KB, US


def _fabric(sim, faults=(), leaf_count=2, nodes_per_leaf=2, spine_count=2,
            seed=0, **overrides):
    topo = LeafSpineTopology(leaf_count, nodes_per_leaf, spine_count=spine_count)
    config = NetworkConfig(link_faults=tuple(faults), **overrides)
    return InterconnectNetwork(sim, topo, config, RandomStreams(seed))


def _cross_leaf_blast(sim, net, messages=30, nbytes=20 * KB):
    """Send ``messages`` cross-leaf messages; return (injected, delivered)."""
    done = []
    per_leaf = net.topology.nodes_per_leaf
    injected = 0
    for i in range(messages):
        src = i % per_leaf
        dst = per_leaf + (i % per_leaf)  # same offset on the other leaf
        net.send(src, dst, nbytes, on_delivered=lambda t=i: done.append(t),
                 flow=i)
        injected += packet_count(nbytes, net.config.mtu)
    sim.run()
    return injected, done


def _assert_ledger_balances(net, injected):
    # The conservation invariant: at drain every injection (original or
    # retransmit) was delivered clean, lost on a link, or rejected by the
    # receiver's CRC — and every loss/rejection spawned exactly one
    # retransmit, so clean deliveries equal the original packet count.
    assert net.in_flight == 0
    assert net.packets_offered == (
        net.packets_delivered + net.packets_dropped + net.packets_corrupted
    )
    assert net.retransmits_drop == net.packets_dropped
    assert net.retransmits_corrupt == net.packets_corrupted
    assert net.packets_delivered == injected
    # Per-link books balance too: everything a link accepted went somewhere.
    for link in net.links.values():
        stats = link.stats
        assert stats.attempted == stats.delivered + stats.corrupted + stats.dropped
        assert stats.flap_dropped <= stats.dropped


def test_healthy_fabric_has_a_clean_ledger():
    sim = Simulator()
    net = _fabric(sim)
    injected, done = _cross_leaf_blast(sim, net)
    assert len(done) == 30
    assert net.packets_dropped == 0
    assert net.packets_corrupted == 0
    assert net.retransmits_drop == net.retransmits_corrupt == 0
    _assert_ledger_balances(net, injected)
    assert all(not link.is_faulty for link in net.links.values())


def test_packet_conservation_under_mixed_faults():
    # Drop AND corrupt on every fabric link: the stress case for the
    # ledger, because one packet can be corrupted upstream and then
    # dropped downstream on the same journey.
    sim = Simulator()
    net = _fabric(
        sim,
        faults=[LinkFaultConfig(link="*", drop_probability=0.05,
                                corrupt_probability=0.05)],
    )
    injected, done = _cross_leaf_blast(sim, net, messages=40)
    assert len(done) == 40, "reliable delivery must survive lossy links"
    assert net.packets_dropped > 0 and net.packets_corrupted > 0, (
        "fault probabilities this high must actually fire"
    )
    _assert_ledger_balances(net, injected)


def test_corrupted_packet_retransmitted_exactly_once_per_event():
    # Corruption only on the last inter-switch hop (spine->leaf), so every
    # corruption event reaches the endpoint and must trigger exactly one
    # retransmit: injections == originals + corruption events, no more.
    sim = Simulator()
    net = _fabric(
        sim,
        faults=[LinkFaultConfig(link="spine*->leaf*", corrupt_probability=0.2)],
    )
    injected, done = _cross_leaf_blast(sim, net, messages=40)
    assert len(done) == 40
    assert net.packets_dropped == 0
    assert net.packets_corrupted > 0
    assert net.retransmits_corrupt == net.packets_corrupted
    assert net.packets_offered == injected + net.packets_corrupted
    # Every endpoint CRC failure traces back to a spine->leaf link event.
    corrupting = sum(
        link.stats.corrupted
        for name, link in net.links.items()
        if name.startswith("spine")
    )
    assert corrupting == net.packets_corrupted
    _assert_ledger_balances(net, injected)


def test_dropped_packet_retransmitted_exactly_once_per_event():
    sim = Simulator()
    net = _fabric(
        sim,
        faults=[LinkFaultConfig(link="*->spine0", drop_probability=0.15)],
    )
    injected, done = _cross_leaf_blast(sim, net, messages=40)
    assert len(done) == 40
    assert net.packets_corrupted == 0
    assert net.packets_dropped > 0
    assert net.retransmits_drop == net.packets_dropped
    assert net.packets_offered == injected + net.packets_dropped
    assert sum(l.stats.dropped for l in net.links.values()) == net.packets_dropped
    _assert_ledger_balances(net, injected)


def test_flapped_link_delivers_zero_packets_inside_the_window():
    # Unit-level: a link with a down-window must deliver nothing whose
    # arrival falls inside it — including a packet transmitted *before*
    # the window that would land mid-flap.
    sim = Simulator()
    window = (10 * US, 20 * US)
    delivered, dropped = [], []
    link = FabricLink(
        sim,
        name="leaf0->spine0",
        bandwidth=5 * GB,
        latency=1 * US,
        deliver=lambda p: delivered.append(sim.now),
        on_drop=lambda p, reason: dropped.append((sim.now, reason)),
        down=(window,),
    )
    packets = packetize(0, 8 * KB, 2 * KB, src_node=0, dst_node=2)
    sim.schedule_at(0.0, link.transmit, packets[0])        # clean, arrives 1µs
    sim.schedule_at(9.5 * US, link.transmit, packets[1])   # in flight at flap
    sim.schedule_at(15 * US, link.transmit, packets[2])    # sent mid-window
    sim.schedule_at(25 * US, link.transmit, packets[3])    # clean again
    sim.run()
    assert not any(window[0] <= t < window[1] for t in delivered)
    assert delivered == [1 * US, 26 * US]
    assert [reason for _, reason in dropped] == ["flap", "flap"]
    assert link.stats.attempted == 4
    assert link.stats.delivered == 2
    assert link.stats.dropped == link.stats.flap_dropped == 2


def test_flap_recovery_through_the_network():
    # End-to-end: messages sent into a flap window keep retrying until the
    # window closes, and the ledger still balances.  Single spine so every
    # cross-leaf packet must cross the flapped cable.
    sim = Simulator()
    window = (0.0, 50 * US)
    net = _fabric(
        sim,
        faults=[LinkFaultConfig(link="leaf0->spine0", down=(window,))],
        spine_count=1,
    )
    done = []
    net.send(0, 2, 4 * KB, on_delivered=lambda: done.append(sim.now))
    sim.run(until=window[1])
    flapped = net.link("leaf0->spine0")
    assert flapped.stats.delivered == 0, "nothing crosses a down link"
    assert flapped.stats.flap_dropped > 0
    assert done == []
    sim.run()
    assert len(done) == 1 and done[0] > window[1]
    _assert_ledger_balances(net, 1)
    assert net.packets_dropped == flapped.stats.flap_dropped


def test_degraded_link_serializes_and_accrues_busy_time():
    # speed_factor < 1 turns the cable itself into a FIFO bottleneck: the
    # slow direction accrues busy_time, and the same traffic finishes
    # later than on a healthy fabric.
    def run(faults):
        sim = Simulator()
        net = _fabric(sim, faults=faults, spine_count=1)
        done = []
        for i in range(10):
            net.send(0, 2, 16 * KB, on_delivered=lambda: done.append(sim.now),
                     flow=i)
        sim.run()
        return net, max(done)

    healthy_net, healthy_finish = run([])
    slow_net, slow_finish = run(
        [LinkFaultConfig(link="leaf0->spine0", speed_factor=0.1)]
    )
    slow = slow_net.link("leaf0->spine0")
    assert slow.is_faulty and slow.effective_bandwidth == pytest.approx(
        0.1 * slow.bandwidth
    )
    assert slow.stats.busy_time > 0
    assert healthy_net.link("leaf0->spine0").stats.busy_time == 0
    assert slow_finish > healthy_finish
    _assert_ledger_balances(slow_net, 10 * packet_count(16 * KB, slow_net.config.mtu))


def test_faulted_fabric_replays_bit_identically():
    # Same seed, same sends: every counter and per-link stat must match
    # exactly across two independent builds — the property that makes a
    # lossy campaign a reproducible experiment rather than an anecdote.
    def run():
        sim = Simulator()
        net = _fabric(
            sim,
            faults=[LinkFaultConfig(link="*", drop_probability=0.04,
                                    corrupt_probability=0.04)],
            seed=123,
        )
        injected, done = _cross_leaf_blast(sim, net, messages=25)
        _assert_ledger_balances(net, injected)
        ledger = (
            net.packets_offered,
            net.packets_delivered,
            net.packets_dropped,
            net.packets_corrupted,
        )
        return ledger, {n: l.stats.to_dict() for n, l in net.links.items()}, sorted(done)

    assert run() == run()
