"""Tests for topologies and routing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network import FatTreeTopology, SingleSwitchTopology
from repro.network.topology import route_node_list


def test_single_switch_all_nodes_attach_to_switch_zero():
    topo = SingleSwitchTopology(18)
    assert topo.node_count == 18
    assert topo.switch_count == 1
    assert all(topo.attachment(n) == 0 for n in range(18))
    assert topo.route(0, 17) == (0,)


def test_single_switch_validates_node_ids():
    topo = SingleSwitchTopology(4)
    with pytest.raises(ConfigurationError):
        topo.attachment(4)
    with pytest.raises(ConfigurationError):
        topo.route(0, -1)


def test_single_switch_requires_a_node():
    with pytest.raises(ConfigurationError):
        SingleSwitchTopology(0)


def test_fat_tree_counts():
    topo = FatTreeTopology(leaf_count=4, nodes_per_leaf=18, root_count=2)
    assert topo.node_count == 72
    assert topo.switch_count == 6


def test_fat_tree_attachment_blocks():
    topo = FatTreeTopology(leaf_count=3, nodes_per_leaf=2)
    assert [topo.attachment(n) for n in range(6)] == [0, 0, 1, 1, 2, 2]


def test_fat_tree_same_leaf_stays_local():
    topo = FatTreeTopology(leaf_count=3, nodes_per_leaf=2, root_count=2)
    assert topo.route(0, 1) == (0,)
    assert topo.route(4, 5) == (2,)


def test_fat_tree_cross_leaf_goes_via_root():
    topo = FatTreeTopology(leaf_count=3, nodes_per_leaf=2, root_count=2)
    route = topo.route(0, 5)
    assert len(route) == 3
    assert route[0] == 0 and route[2] == 2
    assert route[1] in (3, 4)  # a root switch


def test_fat_tree_route_is_deterministic():
    topo = FatTreeTopology(leaf_count=4, nodes_per_leaf=4, root_count=3)
    assert topo.route(1, 14) == topo.route(1, 14)


def test_fat_tree_validation():
    with pytest.raises(ConfigurationError):
        FatTreeTopology(0, 1)
    with pytest.raises(ConfigurationError):
        FatTreeTopology(1, 0)
    with pytest.raises(ConfigurationError):
        FatTreeTopology(1, 1, root_count=0)
    with pytest.raises(ConfigurationError):
        FatTreeTopology(-3, 2)
    with pytest.raises(ConfigurationError):
        FatTreeTopology(2, -1, root_count=2)


def test_route_rejects_equal_endpoints():
    # src == dst never enters the fabric; route() must refuse it rather
    # than fabricate a zero-hop path (regression: it used to return (leaf,)).
    for topo in (SingleSwitchTopology(4), FatTreeTopology(2, 2, root_count=2)):
        with pytest.raises(ConfigurationError):
            topo.route(1, 1)


def test_route_node_list_rejects_equal_endpoints():
    topo = FatTreeTopology(2, 2, root_count=2)
    assert route_node_list(topo, 0, 3) == list(topo.route(0, 3))
    with pytest.raises(ConfigurationError):
        route_node_list(topo, 2, 2)


@given(
    leaves=st.integers(min_value=1, max_value=6),
    per_leaf=st.integers(min_value=1, max_value=6),
    roots=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_property_fat_tree_routes_start_and_end_correctly(leaves, per_leaf, roots, data):
    topo = FatTreeTopology(leaves, per_leaf, roots)
    src = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    dst = data.draw(
        st.integers(min_value=0, max_value=topo.node_count - 1).filter(
            lambda n: n != src
        )
    )
    route = topo.route(src, dst)
    assert route[0] == topo.attachment(src)
    assert route[-1] == topo.attachment(dst)
    assert len(route) in (1, 3)
    if topo.attachment(src) == topo.attachment(dst):
        assert len(route) == 1
    else:
        assert route[1] >= leaves  # middle hop is a root switch
