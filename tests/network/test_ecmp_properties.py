"""Property tests for ECMP flow hashing on leaf-spine fabrics.

ECMP is only safe if it is *boringly* deterministic: a flow must take the
same spine on every re-run (or its packets reorder), the choice must not
depend on anything but ``(seed, src, dst, flow)`` (or campaign catalogs
stop being reproducible), and the hash must spread distinct flows roughly
evenly (or one spine silently becomes the bottleneck).  These properties
pin all three, plus the adjacency of every route the hash can emit.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.network import LeafSpineTopology


FABRICS = st.builds(
    LeafSpineTopology,
    leaf_count=st.integers(min_value=1, max_value=5),
    nodes_per_leaf=st.integers(min_value=1, max_value=6),
    spine_count=st.integers(min_value=1, max_value=4),
    ecmp_seed=st.integers(min_value=0, max_value=2**32 - 1),
)


def _pair(data, topo):
    src = data.draw(st.integers(min_value=0, max_value=topo.node_count - 1))
    dst = data.draw(
        st.integers(min_value=0, max_value=topo.node_count - 1).filter(
            lambda n: n != src
        )
    )
    return src, dst


@given(topo=FABRICS, data=st.data())
def test_routes_follow_fabric_adjacency(topo, data):
    # Every emitted route must be a path the cabling can actually carry:
    # src leaf, then (only when crossing leaves) one spine, then dst leaf.
    src, dst = _pair(data, topo)
    flow = data.draw(st.integers(min_value=0, max_value=10**6))
    route = topo.route_flow(src, dst, flow)
    assert route[0] == topo.attachment(src)
    assert route[-1] == topo.attachment(dst)
    if topo.attachment(src) == topo.attachment(dst):
        assert route == (topo.attachment(src),)
    else:
        assert len(route) == 3
        spine = route[1]
        assert topo.leaf_count <= spine < topo.switch_count
        # Both directed hops exist in the declared link set.
        links = {(s, d) for _, s, d in topo.links()}
        assert (route[0], spine) in links
        assert (spine, route[2]) in links


@given(topo=FABRICS, data=st.data())
def test_same_flow_same_spine(topo, data):
    # A flow's path is a pure function of (seed, src, dst, flow): asking
    # again — or asking a freshly built identical topology — returns the
    # same spine.  This is what keeps a flow's packets in order and a
    # campaign bit-reproducible.
    src, dst = _pair(data, topo)
    flow = data.draw(st.integers(min_value=0, max_value=10**6))
    first = topo.route_flow(src, dst, flow)
    assert topo.route_flow(src, dst, flow) == first
    rebuilt = LeafSpineTopology(
        topo.leaf_count, topo.nodes_per_leaf, topo.spine_count, topo.ecmp_seed
    )
    assert rebuilt.route_flow(src, dst, flow) == first


@given(topo=FABRICS, data=st.data())
def test_spine_choice_is_query_order_independent(topo, data):
    # Evaluating a batch of flows in any permutation yields the same
    # per-flow answers: the hash holds no state, so catalog shuffles and
    # parallel shard orderings cannot re-deal flows onto spines.
    if topo.node_count < 2:
        return
    queries = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=topo.node_count - 1),
                st.integers(min_value=0, max_value=topo.node_count - 1),
                st.integers(min_value=0, max_value=999),
            ).filter(lambda q: q[0] != q[1]),
            min_size=1,
            max_size=20,
        )
    )
    forward = {q: topo.route_flow(*q) for q in queries}
    shuffled = list(queries)
    random.Random(0).shuffle(shuffled)
    assert {q: topo.route_flow(*q) for q in shuffled} == forward


@given(topo=FABRICS, data=st.data())
def test_intra_leaf_never_touches_spine(topo, data):
    # Same-leaf traffic turns around at the leaf for every flow label.
    leaf = data.draw(st.integers(min_value=0, max_value=topo.leaf_count - 1))
    if topo.nodes_per_leaf < 2:
        return
    base = leaf * topo.nodes_per_leaf
    offsets = data.draw(
        st.tuples(
            st.integers(min_value=0, max_value=topo.nodes_per_leaf - 1),
            st.integers(min_value=0, max_value=topo.nodes_per_leaf - 1),
        ).filter(lambda t: t[0] != t[1])
    )
    flow = data.draw(st.integers(min_value=0, max_value=10**6))
    route = topo.route_flow(base + offsets[0], base + offsets[1], flow)
    assert route == (leaf,)
    assert all(s < topo.leaf_count for s in route)


@settings(max_examples=20)
@given(
    spines=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_flows_spread_near_uniformly_across_spines(spines, seed):
    # Hash quality: many distinct flows between one node pair must land on
    # every spine, each carrying a share within 2x of fair.  (blake2b is
    # far better than this bound; the test guards against accidentally
    # replacing it with something degenerate like `flow % spines`.)
    topo = LeafSpineTopology(2, 2, spine_count=spines, ecmp_seed=seed)
    n_flows = 600 * spines
    counts = [0] * spines
    for flow in range(n_flows):
        counts[topo.spine_for(0, 3, flow) - topo.leaf_count] += 1
    fair = n_flows / spines
    assert all(0.5 * fair <= c <= 2.0 * fair for c in counts), counts


def test_ecmp_seed_redeal_changes_some_paths():
    # The seed exists to re-deal flows onto spines; two seeds must not
    # produce the identical mapping (else the knob is dead).
    a = LeafSpineTopology(2, 4, spine_count=4, ecmp_seed=0)
    b = LeafSpineTopology(2, 4, spine_count=4, ecmp_seed=1)
    flows = range(64)
    assert any(a.spine_for(0, 7, f) != b.spine_for(0, 7, f) for f in flows)
