"""Tests for Link and NIC serialization behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.network import Link, NIC
from repro.network.packet import packetize
from repro.sim import Simulator


def test_link_serialization_time():
    link = Link(bandwidth=1e9, latency=1e-6)
    assert link.serialization_time(1000) == pytest.approx(1e-6)
    assert link.transfer_time(1000) == pytest.approx(2e-6)


def test_link_zero_bytes():
    link = Link(bandwidth=1e9, latency=5e-7)
    assert link.serialization_time(0) == 0.0
    assert link.transfer_time(0) == 5e-7


def test_link_validation():
    with pytest.raises(ConfigurationError):
        Link(bandwidth=0, latency=0)
    with pytest.raises(ConfigurationError):
        Link(bandwidth=1e9, latency=-1e-9)
    with pytest.raises(ConfigurationError):
        Link(bandwidth=1e9, latency=0).serialization_time(-1)


def _make_nic(sim, bandwidth=1000.0, latency=0.0, overhead=0.0):
    return NIC(sim, node_id=0, link=Link(bandwidth=bandwidth, latency=latency),
               min_packet_overhead=overhead)


def test_nic_serializes_packets_back_to_back():
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0)  # 1000 B/s -> 1 s per 1000 B
    arrivals = []
    packets = packetize(0, 3000, 1000, 0, 1)  # three 1000-byte packets
    nic.inject(packets, lambda p: arrivals.append((sim.now, p.seq)))
    sim.run()
    assert arrivals == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_nic_adds_propagation_latency():
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0, latency=0.5)
    arrivals = []
    nic.inject(packetize(0, 1000, 1000, 0, 1), lambda p: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [1.5]


def test_nic_fifo_across_messages():
    """A second message queues behind the first's serialization."""
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0)
    arrivals = []
    first = packetize(0, 2000, 1000, 0, 1)
    second = packetize(1, 1000, 1000, 0, 2)
    nic.inject(first, lambda p: arrivals.append((sim.now, p.message_id)))
    nic.inject(second, lambda p: arrivals.append((sim.now, p.message_id)))
    sim.run()
    assert arrivals == [(1.0, 0), (2.0, 0), (3.0, 1)]


def test_nic_idle_gap_resets_clock():
    """After the backlog drains, a later injection starts from 'now'."""
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0)
    arrivals = []
    nic.inject(packetize(0, 1000, 1000, 0, 1), lambda p: arrivals.append(sim.now))

    def late_send():
        yield 10.0
        nic.inject(packetize(1, 1000, 1000, 0, 1), lambda p: arrivals.append(sim.now))

    sim.spawn(late_send(), "late")
    sim.run()
    assert arrivals == [1.0, 11.0]


def test_nic_local_completion_excludes_propagation():
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0, latency=99.0)
    done = []
    nic.inject(packetize(0, 2000, 1000, 0, 1), lambda p: None,
               on_complete=lambda: done.append(sim.now))
    sim.run()
    # Local completion fires after serialization (2s), not propagation (99s).
    assert done == [pytest.approx(2.0)]


def test_nic_empty_batch_completes_immediately():
    sim = Simulator()
    nic = _make_nic(sim)
    done = []
    nic.inject([], lambda p: None, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_nic_round_robin_across_flows():
    """A one-packet flow is not stuck behind another flow's long backlog."""
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0)
    arrivals = []
    bulk = packetize(0, 5000, 1000, 0, 1, flow="bulk")
    tiny = packetize(1, 1000, 1000, 0, 2, flow="tiny")
    nic.inject(bulk, lambda p: arrivals.append((sim.now, p.flow)))
    nic.inject(tiny, lambda p: arrivals.append((sim.now, p.flow)))
    sim.run()
    # tiny's single packet interleaves after at most two bulk packets
    # (bulk pkt0 was already in service when tiny arrived), not after five.
    assert arrivals[2] == (3.0, "tiny")


def test_nic_per_packet_overhead():
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0, overhead=0.25)
    arrivals = []
    nic.inject(packetize(0, 2000, 1000, 0, 1), lambda p: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(1.25), pytest.approx(2.5)]


def test_nic_counters():
    sim = Simulator()
    nic = _make_nic(sim)
    nic.inject(packetize(0, 2500, 1000, 0, 1), lambda p: None)
    sim.run()
    assert nic.packets_injected == 3
    assert nic.bytes_injected == 2500


def test_nic_backlog_property():
    sim = Simulator()
    nic = _make_nic(sim, bandwidth=1000.0)
    assert nic.backlog_packets == 0
    nic.inject(packetize(0, 5000, 1000, 0, 1), lambda p: None)
    # One packet in service, four queued.
    assert nic.backlog_packets == 4
    assert nic.busy


def test_nic_overhead_validation():
    with pytest.raises(ConfigurationError):
        NIC(Simulator(), 0, Link(1e9, 0.0), min_packet_overhead=-1.0)
