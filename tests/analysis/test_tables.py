"""Tests for ASCII renderers."""

import numpy as np
import pytest

from repro.analysis import (
    render_fig6,
    render_fig7_series,
    render_fig8,
    render_fig9,
    render_histogram,
    render_table1,
    summarize_errors,
)
from repro.errors import ExperimentError


def test_render_table1_contains_all_cells():
    names = ["fftw", "mcb"]
    values = {
        ("fftw", "fftw"): 45.0,
        ("fftw", "mcb"): 3.0,
        ("mcb", "fftw"): 2.0,
        ("mcb", "mcb"): 4.0,
    }
    text = render_table1(names, values)
    assert "Table I" in text
    assert "45.0" in text and "3.0" in text
    assert text.count("\n") == 3  # title + header + 2 rows


def test_render_matrix_missing_cell_shows_dash():
    from repro.analysis import render_matrix

    text = render_matrix(["a"], ["x", "y"], {("a", "x"): 1.0})
    assert "-" in text


def test_render_fig6_sorted_ascending():
    text = render_fig6({"heavy": 0.9, "light": 0.1})
    light_pos = text.index("light")
    heavy_pos = text.index("heavy")
    assert light_pos < heavy_pos
    assert "90.0%" in text and "10.0%" in text


def test_render_fig7_series():
    text = render_fig7_series({"fftw": [(0.5, 50.0), (0.2, 10.0)]})
    assert "fftw" in text
    # Points are sorted by utilization.
    assert text.index("(20%") < text.index("(50%")


def test_render_fig8():
    errors = {
        "AverageLT": {("a", "a"): 1.0, ("a", "b"): 2.0, ("b", "a"): 3.0, ("b", "b"): 4.0},
        "Queue": {("a", "a"): 0.5, ("a", "b"): 0.6, ("b", "a"): 0.7, ("b", "b"): 0.8},
    }
    text = render_fig8(errors, ["a", "b"])
    assert "AverageLT" in text and "Queue" in text
    assert "a | b" in text


def test_render_fig8_empty_raises():
    with pytest.raises(ExperimentError):
        render_fig8({}, ["a"])


def test_render_fig9():
    summaries = {"Queue": summarize_errors([1.0, 2.0, 3.0, 4.0])}
    text = render_fig9(summaries)
    assert "Queue" in text
    assert "median" in text


def test_render_histogram():
    text = render_histogram([0.5, 0.3, 0.2], np.array([0, 1e-6, 2e-6, 3e-6]), title="idle")
    assert "idle" in text
    assert "50.0%" in text
    assert "#" in text


def test_render_histogram_edge_mismatch_raises():
    with pytest.raises(ExperimentError):
        render_histogram([0.5], np.array([0.0, 1.0, 2.0]))
