"""Tests for error statistics (Figs. 8-9 machinery)."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import absolute_errors, fraction_within, summarize_errors
from repro.errors import ExperimentError


def test_absolute_errors_basic():
    measured = {("a", "b"): 10.0, ("b", "a"): 5.0}
    predicted = {("a", "b"): 12.5, ("b", "a"): 1.0}
    errors = absolute_errors(measured, predicted)
    assert errors[("a", "b")] == pytest.approx(2.5)
    assert errors[("b", "a")] == pytest.approx(4.0)


def test_absolute_errors_missing_prediction_raises():
    with pytest.raises(ExperimentError, match="missing"):
        absolute_errors({("a", "b"): 1.0}, {})


def test_summarize_errors_quartiles():
    summary = summarize_errors([0.0, 10.0, 20.0, 30.0, 40.0])
    assert summary.minimum == 0.0
    assert summary.median == 20.0
    assert summary.maximum == 40.0
    assert summary.mean == 20.0
    assert summary.q1 == 10.0
    assert summary.q3 == 30.0
    assert summary.iqr == 20.0
    assert summary.count == 5


def test_summarize_empty_raises():
    with pytest.raises(ExperimentError):
        summarize_errors([])


def test_summarize_negative_raises():
    with pytest.raises(ExperimentError):
        summarize_errors([1.0, -0.5])


def test_fraction_within():
    errors = [1.0, 5.0, 9.0, 15.0]
    assert fraction_within(errors, 10.0) == pytest.approx(0.75)
    assert fraction_within(errors, 0.5) == 0.0
    assert fraction_within(errors, 100.0) == 1.0


def test_fraction_within_empty_raises():
    with pytest.raises(ExperimentError):
        fraction_within([], 1.0)


@given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=100))
def test_property_summary_ordering(errors):
    summary = summarize_errors(errors)
    assert summary.minimum <= summary.q1 <= summary.median <= summary.q3 <= summary.maximum
    # The mean can drift 1 ulp below the minimum when all values are equal.
    tolerance = 1e-12 * max(1.0, summary.maximum)
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
