"""Tests for degradation-trend fitting (Fig. 7 machinery)."""

import numpy as np
import pytest

from repro.analysis import fit_degradation_trend, sensitivity_ranking
from repro.errors import ExperimentError


def test_exact_line_recovered():
    points = [(x, 2.0 * x + 1.0) for x in (0.1, 0.3, 0.5, 0.9)]
    fit = fit_degradation_trend(points)
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(0.5) == pytest.approx(2.0)


def test_noisy_line_reasonable_fit():
    rng = np.random.default_rng(0)
    points = [(x, 100 * x + rng.normal(0, 2)) for x in np.linspace(0.2, 0.9, 30)]
    fit = fit_degradation_trend(points)
    assert fit.slope == pytest.approx(100, rel=0.1)
    assert fit.r_squared > 0.9


def test_too_few_points_raises():
    with pytest.raises(ExperimentError):
        fit_degradation_trend([(0.5, 1.0)])


def test_degenerate_x_raises():
    with pytest.raises(ExperimentError):
        fit_degradation_trend([(0.5, 1.0), (0.5, 2.0)])


def test_flat_curve_r_squared_is_one():
    fit = fit_degradation_trend([(0.1, 3.0), (0.5, 3.0), (0.9, 3.0)])
    assert fit.slope == pytest.approx(0.0, abs=1e-9)
    assert fit.r_squared == pytest.approx(1.0)


def test_sensitivity_ranking_orders_by_slope():
    curves = {
        "fftw": [(0.2, 40.0), (0.8, 250.0)],
        "mcb": [(0.2, 0.5), (0.8, 2.0)],
        "milc": [(0.2, 15.0), (0.8, 90.0)],
    }
    ranking = sensitivity_ranking(curves)
    assert [name for name, _slope in ranking] == ["fftw", "milc", "mcb"]
    assert ranking[0][1] > ranking[1][1] > ranking[2][1]
