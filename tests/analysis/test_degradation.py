"""Tests for degradation-trend fitting (Fig. 7 machinery)."""

import math

import numpy as np
import pytest

from repro.analysis import fit_degradation_trend, sensitivity_ranking
from repro.errors import ExperimentError


def test_exact_line_recovered():
    points = [(x, 2.0 * x + 1.0) for x in (0.1, 0.3, 0.5, 0.9)]
    fit = fit_degradation_trend(points)
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r_squared == pytest.approx(1.0)
    assert fit.predict(0.5) == pytest.approx(2.0)


def test_noisy_line_reasonable_fit():
    rng = np.random.default_rng(0)
    points = [(x, 100 * x + rng.normal(0, 2)) for x in np.linspace(0.2, 0.9, 30)]
    fit = fit_degradation_trend(points)
    assert fit.slope == pytest.approx(100, rel=0.1)
    assert fit.r_squared > 0.9


def test_too_few_points_raises():
    with pytest.raises(ExperimentError):
        fit_degradation_trend([(0.5, 1.0)])


def test_degenerate_x_raises():
    with pytest.raises(ExperimentError):
        fit_degradation_trend([(0.5, 1.0), (0.5, 2.0)])


def test_flat_curve_r_squared_is_one():
    fit = fit_degradation_trend([(0.1, 3.0), (0.5, 3.0), (0.9, 3.0)])
    assert fit.slope == pytest.approx(0.0, abs=1e-9)
    assert fit.r_squared == pytest.approx(1.0)


def test_flat_response_with_residuals_is_not_a_perfect_fit(monkeypatch):
    # Zero y-variance with a line that misses the points: before the fix the
    # degenerate ss_tot denominator reported r² = 1.0.  A least-squares
    # solver never produces this (a flat response is fitted exactly), so
    # stub the solver to return a bad line and check the policy directly.
    import repro.analysis.degradation as degradation_mod

    monkeypatch.setattr(
        degradation_mod.np, "polyfit", lambda xs, ys, deg: (0.0, 2.0)
    )
    fit = fit_degradation_trend([(0.1, 3.0), (0.5, 3.0), (0.9, 3.0)])
    assert fit.r_squared == 0.0  # residuals on a flat curve explain nothing


def test_fit_exposes_slope_and_prediction_uncertainty():
    rng = np.random.default_rng(1)
    xs = np.linspace(0.1, 0.9, 12)
    points = [(float(x), 50.0 * x + float(rng.normal(0, 1))) for x in xs]
    fit = fit_degradation_trend(points)
    assert math.isfinite(fit.slope_stderr)
    assert fit.slope_stderr > 0
    assert fit.n == 12
    # The OLS band is narrowest at the measured mean, widest at the edges.
    center = fit.predict_stderr(float(xs.mean()))
    edge = fit.predict_stderr(1.5)
    assert 0 < center < edge


def test_two_point_fit_has_unknowable_uncertainty():
    fit = fit_degradation_trend([(0.2, 1.0), (0.8, 5.0)])
    assert fit.r_squared == pytest.approx(1.0)
    assert math.isinf(fit.slope_stderr)  # zero residual degrees of freedom
    assert math.isinf(fit.predict_stderr(0.5))


def test_sensitivity_ranking_orders_by_slope():
    curves = {
        "fftw": [(0.2, 40.0), (0.8, 250.0)],
        "mcb": [(0.2, 0.5), (0.8, 2.0)],
        "milc": [(0.2, 15.0), (0.8, 90.0)],
    }
    ranking = sensitivity_ranking(curves)
    assert [name for name, _slope in ranking] == ["fftw", "milc", "mcb"]
    assert ranking[0][1] > ranking[1][1] > ranking[2][1]


def test_sensitivity_ranking_breaks_slope_ties_by_app_name():
    # Identical curves → identical slopes; order must come from the app
    # name, not dict insertion order (order-independence invariant).
    curve = [(0.2, 1.0), (0.8, 4.0)]
    forward = sensitivity_ranking({"b_app": curve, "a_app": curve, "c_app": curve})
    backward = sensitivity_ranking({"c_app": curve, "a_app": curve, "b_app": curve})
    assert forward == backward
    assert [name for name, _ in forward] == ["a_app", "b_app", "c_app"]


def test_sensitivity_ranking_rejects_non_finite_slopes():
    curves = {
        "good": [(0.2, 1.0), (0.8, 4.0)],
        "bad": [(0.2, float("nan")), (0.8, 4.0)],
    }
    with pytest.raises(ExperimentError, match="bad"):
        sensitivity_ranking(curves)
