"""Tests for the full-report assembler."""

import pytest

from repro.analysis import degradation_curves, full_report
from repro.cluster import small_test_config
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.units import MS
from repro.workloads import FFTW, MCB, CompressionConfig


@pytest.fixture(scope="module")
def pipeline():
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile="quick",
            impact_duration=0.01,
            signature_duration=0.01,
            calibration_duration=0.02,
            probe_interval=0.1 * MS,
        ),
        machine_config=small_test_config(),
        applications={
            "fftw": FFTW(iterations=1, pack_compute=5e-5),
            "mcb": MCB(iterations=2, track_compute=2e-4),
        },
        catalog=[
            CompressionConfig(1, 1, 2.5e6),
            CompressionConfig(2, 1, 2.5e5),
            CompressionConfig(3, 10, 2.5e4),
        ],
    )


def test_degradation_curves_shape(pipeline):
    curves = degradation_curves(pipeline)
    assert set(curves) == {"fftw", "mcb"}
    assert all(len(points) == 3 for points in curves.values())
    for points in curves.values():
        for utilization, degradation in points:
            assert 0.0 <= utilization < 1.0


def test_full_report_contains_all_sections(pipeline):
    text = full_report(pipeline)
    assert "Table I" in text
    assert "Fig. 6" in text
    assert "Fig. 7" in text
    assert "Fig. 9" in text
    assert "fraction of errors" in text
    # Both apps appear in the sensitivity ranking.
    assert "fftw" in text and "mcb" in text


def test_full_report_is_deterministic(pipeline):
    assert full_report(pipeline) == full_report(pipeline)
