"""Shared test configuration.

Disables hypothesis' wall-clock deadline (simulation-heavy tests have noisy
timings on shared machines) and registers a small default profile.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
