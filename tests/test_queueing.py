"""Physics-core tests: the M/G/1 Pollaczek–Khinchine formula and its
inversion (the paper's Eq. 1–3), exercised as round trips, edge cases, and
the exponential-service M/M/1 cross-check."""

import math

import pytest

from repro.errors import EstimationError
from repro.queueing import (
    MG1,
    MM1,
    arrival_rate_from_sojourn,
    pk_sojourn_time,
    pk_waiting_time,
    sojourn_from_utilization,
    utilization_from_sojourn,
)

MU = 2.0e6  # a switch-like service rate, packets/s
VAR = 0.5 / MU**2  # service variance below exponential (SCV = 0.5)


class TestRoundTrip:
    """λ → W (P–K forward) → λ̂ (paper Eq. 3) must be the identity."""

    @pytest.mark.parametrize("rho", [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    @pytest.mark.parametrize("scv", [0.0, 0.5, 1.0, 4.0])
    def test_utilization_round_trip(self, rho, scv):
        variance = scv / MU**2
        sojourn = sojourn_from_utilization(rho, MU, variance)
        recovered = utilization_from_sojourn(sojourn, MU, variance)
        assert recovered == pytest.approx(rho, rel=1e-12)

    @pytest.mark.parametrize("rho", [0.05, 0.5, 0.95])
    def test_arrival_rate_round_trip(self, rho):
        lam = rho * MU
        queue = MG1(arrival_rate=lam, service_rate=MU, service_variance=VAR)
        recovered = arrival_rate_from_sojourn(queue.sojourn_time, MU, VAR)
        assert recovered == pytest.approx(lam, rel=1e-12)

    def test_paper_algebra_matches_standard_form(self):
        queue = MG1(arrival_rate=0.6 * MU, service_rate=MU, service_variance=VAR)
        assert queue.paper_sojourn_form() == pytest.approx(
            queue.sojourn_time, rel=1e-12
        )


class TestEdgeCases:
    def test_zero_load_sojourn_is_pure_service(self):
        # ρ = 0: no queueing, W = E[S] exactly.
        assert sojourn_from_utilization(0.0, MU, VAR) == 1.0 / MU
        assert pk_waiting_time(0.0, MU, VAR) == 0.0

    def test_zero_load_inverts_to_zero(self):
        assert utilization_from_sojourn(1.0 / MU, MU, VAR) == 0.0

    def test_sub_idle_observation_clamps_to_zero(self):
        # Sampling noise can put W slightly below the idle service time.
        noisy = 0.999 / MU
        assert utilization_from_sojourn(noisy, MU, VAR) == 0.0
        with pytest.raises(EstimationError):
            utilization_from_sojourn(noisy, MU, VAR, clamp=False)

    def test_sojourn_diverges_as_rho_approaches_one(self):
        sojourns = [
            sojourn_from_utilization(rho, MU, VAR)
            for rho in (0.9, 0.99, 0.999, 0.9999)
        ]
        assert sojourns == sorted(sojourns)
        # W ~ 1/(1−ρ): each decade toward saturation grows W ~10×.
        assert sojourns[-1] > 100 * sojourns[0] / 10
        assert math.isfinite(sojourns[-1])

    def test_saturated_queue_rejected(self):
        with pytest.raises(EstimationError, match="unstable"):
            MG1(arrival_rate=MU, service_rate=MU, service_variance=VAR)
        with pytest.raises(EstimationError, match="unstable"):
            pk_sojourn_time(1.5 * MU, MU, VAR)
        with pytest.raises(EstimationError):
            sojourn_from_utilization(1.0, MU, VAR)

    def test_huge_observed_latency_stays_below_saturation(self):
        # Even an absurd observation maps into [0, 1): the inversion is a
        # bijection onto the stable region.
        rho = utilization_from_sojourn(1e6 / MU, MU, VAR)
        assert 0.999 < rho < 1.0


class TestMM1Agreement:
    """With exponential service (Var(S) = 1/µ²), M/G/1 must reduce to M/M/1."""

    @pytest.mark.parametrize("rho", [0.1, 0.5, 0.9])
    def test_sojourn_and_waiting_agree(self, rho):
        lam = rho * MU
        exp_var = 1.0 / MU**2
        mg1 = MG1(arrival_rate=lam, service_rate=MU, service_variance=exp_var)
        mm1 = MM1(arrival_rate=lam, service_rate=MU)
        assert mg1.sojourn_time == pytest.approx(mm1.sojourn_time, rel=1e-12)
        assert mg1.waiting_time == pytest.approx(mm1.waiting_time, rel=1e-12)
        assert mg1.mean_in_system == pytest.approx(mm1.mean_in_system, rel=1e-12)
        assert mg1.mean_queue_length == pytest.approx(
            mm1.mean_queue_length, rel=1e-12
        )

    def test_deterministic_service_halves_the_wait(self):
        # P–K: Wq(det) = Wq(exp)/2 at equal ρ — the classic variance effect.
        lam = 0.5 * MU
        exp_wait = pk_waiting_time(lam, MU, 1.0 / MU**2)
        det_wait = pk_waiting_time(lam, MU, 0.0)
        assert det_wait == pytest.approx(exp_wait / 2.0, rel=1e-12)
