"""Tests for deterministic named random streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import RandomStreams, stable_hash64


def test_same_name_returns_same_generator():
    streams = RandomStreams(seed=1)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_are_independent():
    streams = RandomStreams(seed=1)
    a = streams.stream("a").random(100)
    b = streams.stream("b").random(100)
    assert not np.allclose(a, b)


def test_reproducible_across_factories():
    first = RandomStreams(seed=42).stream("fabric").random(50)
    second = RandomStreams(seed=42).stream("fabric").random(50)
    np.testing.assert_array_equal(first, second)


def test_different_seeds_differ():
    first = RandomStreams(seed=1).stream("fabric").random(50)
    second = RandomStreams(seed=2).stream("fabric").random(50)
    assert not np.allclose(first, second)


def test_creation_order_does_not_matter():
    forward = RandomStreams(seed=9)
    forward.stream("x")
    fx = forward.stream("y").random(10)
    backward = RandomStreams(seed=9)
    fy = backward.stream("y").random(10)
    np.testing.assert_array_equal(fx, fy)


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RandomStreams(seed="abc")  # type: ignore[arg-type]


def test_spawn_children_reproducible_and_distinct():
    parent = RandomStreams(seed=3)
    child_a = parent.spawn("run0").stream("s").random(20)
    child_b = parent.spawn("run1").stream("s").random(20)
    again = RandomStreams(seed=3).spawn("run0").stream("s").random(20)
    np.testing.assert_array_equal(child_a, again)
    assert not np.allclose(child_a, child_b)


def test_stable_hash64_is_stable():
    assert stable_hash64("hello") == stable_hash64("hello")
    assert stable_hash64("hello") != stable_hash64("hellp")
    assert 0 <= stable_hash64("anything") < 2**64


@given(st.text(max_size=30), st.text(max_size=30))
def test_property_distinct_names_distinct_hashes_mostly(first, second):
    """blake2b collisions for short names would break stream independence."""
    if first != second:
        assert stable_hash64(first) != stable_hash64(second)
