"""Tests for SimEvent / AllOf / AnyOf semantics."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_event_initially_untriggered():
    sim = Simulator()
    event = sim.event("e")
    assert not event.triggered
    assert math.isnan(event.trigger_time)


def test_succeed_sets_value_and_time():
    sim = Simulator()
    event = sim.event("e")
    sim.schedule(3.0, event.succeed, "payload")
    sim.run()
    assert event.triggered
    assert event.value == "payload"
    assert event.trigger_time == 3.0


def test_double_succeed_raises():
    sim = Simulator()
    event = sim.event("e")
    event.succeed()
    with pytest.raises(SimulationError, match="twice"):
        event.succeed()


def test_callbacks_fire_in_registration_order():
    sim = Simulator()
    event = sim.event("e")
    hits = []
    event.on_trigger(lambda e: hits.append(1))
    event.on_trigger(lambda e: hits.append(2))
    event.succeed()
    sim.run()
    assert hits == [1, 2]


def test_callback_registered_after_trigger_still_fires():
    sim = Simulator()
    event = sim.event("e")
    event.succeed("v")
    hits = []
    event.on_trigger(lambda e: hits.append(e.value))
    sim.run()
    assert hits == ["v"]


def test_callbacks_run_asynchronously_not_inline():
    """succeed() must not call callbacks synchronously (determinism)."""
    sim = Simulator()
    event = sim.event("e")
    hits = []
    event.on_trigger(lambda e: hits.append("cb"))
    event.succeed()
    assert hits == []  # nothing until the kernel runs
    sim.run()
    assert hits == ["cb"]


def test_all_of_fires_after_every_child():
    sim = Simulator()
    kids = [sim.event(f"k{i}") for i in range(3)]
    combo = sim.all_of(kids)
    sim.schedule(1.0, kids[2].succeed, "c")
    sim.schedule(2.0, kids[0].succeed, "a")
    sim.schedule(3.0, kids[1].succeed, "b")
    sim.run()
    assert combo.triggered
    assert combo.trigger_time == 3.0
    assert combo.value == ["a", "b", "c"]  # child order, not trigger order


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    combo = sim.all_of([])
    assert combo.triggered
    assert combo.value == []


def test_all_of_with_pretriggered_children():
    sim = Simulator()
    kids = [sim.event("k0"), sim.event("k1")]
    kids[0].succeed("x")
    combo = sim.all_of(kids)
    sim.schedule(1.0, kids[1].succeed, "y")
    sim.run()
    assert combo.triggered
    assert combo.value == ["x", "y"]


def test_any_of_fires_on_first_child():
    sim = Simulator()
    kids = [sim.event(f"k{i}") for i in range(3)]
    combo = sim.any_of(kids)
    sim.schedule(2.0, kids[0].succeed, "slow")
    sim.schedule(1.0, kids[1].succeed, "fast")
    sim.run()
    assert combo.triggered
    assert combo.trigger_time == 1.0
    assert combo.value == (1, "fast")


def test_any_of_requires_children():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_any_of_tolerates_multiple_triggers():
    sim = Simulator()
    kids = [sim.event("a"), sim.event("b")]
    combo = sim.any_of(kids)
    sim.schedule(1.0, kids[0].succeed, "first")
    sim.schedule(1.0, kids[1].succeed, "second")
    sim.run()
    assert combo.value == (0, "first")
