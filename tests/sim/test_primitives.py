"""Tests for Resource and Store primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------
def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    assert res.acquire().triggered
    assert res.acquire().triggered
    assert not res.acquire().triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_fifo_handoff_on_release():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.acquire()
    second = res.acquire()
    third = res.acquire()
    assert first.triggered and not second.triggered and not third.triggered
    res.release()
    assert second.triggered and not third.triggered
    res.release()
    assert third.triggered


def test_resource_release_while_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_resource_serializes_processes():
    """Two processes sharing a unit-capacity resource run back to back."""
    sim = Simulator()
    spans = []

    def worker(label, hold):
        yield res.acquire()
        start = sim.now
        yield hold
        res.release()
        spans.append((label, start, sim.now))

    res = Resource(sim, capacity=1)
    sim.spawn(worker("a", 2.0), "a")
    sim.spawn(worker("b", 3.0), "b")
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    event = store.get()
    assert event.triggered
    assert event.value == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    event = store.get()
    assert not event.triggered
    store.put("y")
    assert event.triggered
    assert event.value == "y"


def test_store_fifo_order_of_items():
    sim = Simulator()
    store = Store(sim)
    for item in [1, 2, 3]:
        store.put(item)
    assert [store.get().value for _ in range(3)] == [1, 2, 3]


def test_store_fifo_order_of_getters():
    sim = Simulator()
    store = Store(sim)
    first = store.get()
    second = store.get()
    store.put("a")
    store.put("b")
    assert first.value == "a"
    assert second.value == "b"


def test_store_len_and_peek():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    assert store.peek() is None
    store.put("z")
    assert len(store) == 1
    assert store.peek() == "z"
    assert len(store) == 1  # peek does not consume


def test_store_waiting_getters_counter():
    sim = Simulator()
    store = Store(sim)
    store.get()
    store.get()
    assert store.waiting_getters == 2
    store.put(0)
    assert store.waiting_getters == 1


@given(st.lists(st.integers(), max_size=50))
def test_property_store_preserves_sequence(items):
    """put/get round-trips any item sequence in order."""
    sim = Simulator()
    store = Store(sim)
    for item in items:
        store.put(item)
    assert [store.get().value for _ in items] == items
