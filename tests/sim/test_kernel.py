"""Tests for the discrete-event kernel ordering and execution semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


def test_starts_at_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_executes_in_time_order():
    sim = Simulator()
    hits = []
    sim.schedule(2.0, hits.append, "late")
    sim.schedule(1.0, hits.append, "early")
    sim.schedule(3.0, hits.append, "latest")
    sim.run()
    assert hits == ["early", "late", "latest"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    hits = []
    for label in "abcde":
        sim.schedule(1.0, hits.append, label)
    sim.run()
    assert hits == list("abcde")


def test_clock_advances_to_callback_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nan_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(9.0, lambda: None)


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "in")
    sim.schedule(5.0, hits.append, "out")
    sim.run(until=2.0)
    assert hits == ["in"]
    assert sim.now == 2.0
    # Remaining work still runs on a later call.
    sim.run()
    assert hits == ["in", "out"]


def test_run_until_advances_clock_even_with_empty_heap():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_with_caller_constructed_infinity_leaves_clock_finite():
    # Regression: the drain check used an identity test (`until is not
    # math.inf`), which a caller's float("inf") — equal but a distinct
    # object — slipped past, advancing the clock to infinity.
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=float("inf"))
    assert sim.now == 1.0
    assert not math.isinf(sim.now)


def test_run_with_empty_heap_and_infinite_until_keeps_clock():
    sim = Simulator(start_time=2.0)
    sim.run(until=float("inf"))
    assert sim.now == 2.0


def test_callbacks_scheduled_during_run_execute():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 4:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert hits == [0, 1, 2, 3, 4]
    assert sim.now == 4.0


def test_cancel_prevents_execution():
    sim = Simulator()
    hits = []
    handle = sim.schedule_cancellable(1.0, hits.append, "x")
    handle.cancel()
    sim.run()
    assert hits == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule_cancellable(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_pending_excludes_cancelled_entries():
    sim = Simulator()
    live = sim.schedule_cancellable(1.0, lambda: None)
    dead = sim.schedule_cancellable(2.0, lambda: None)
    assert sim.pending == 2
    dead.cancel()
    assert sim.pending == 1
    assert sim.cancelled_pending == 1
    dead.cancel()  # idempotent: must not double-count
    assert sim.pending == 1
    live.cancel()
    assert sim.pending == 0
    assert sim.cancelled_pending == 2
    sim.run()
    assert sim.pending == 0
    assert sim.cancelled_pending == 0


def test_cancel_after_execution_does_not_skew_accounting():
    sim = Simulator()
    handle = sim.schedule_cancellable(1.0, lambda: None)
    sim.run()
    handle.cancel()  # too late: already ran
    assert sim.pending == 0
    assert sim.cancelled_pending == 0


def test_max_pending_is_live_queue_depth():
    sim = Simulator()
    handles = [sim.schedule_cancellable(float(i + 1), lambda: None) for i in range(3)]
    assert sim.max_pending == 3
    for handle in handles:
        handle.cancel()
    # Cancelled entries are dead weight: scheduling more live work on top of
    # them must not inflate the high-water mark past the true live depth.
    sim.schedule(0.5, lambda: None)
    assert sim.max_pending == 3
    for _ in range(4):
        sim.schedule(0.5, lambda: None)
    assert sim.max_pending == 5
    sim.run()


def test_counters_report_net_pending_and_cancelled_tally():
    sim = Simulator()
    sim.schedule_cancellable(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)
    snapshot = sim.counters()
    assert snapshot["kernel.pending"] == 1.0
    assert snapshot["kernel.cancelled_pending"] == 1.0
    sim.run()
    snapshot = sim.counters()
    assert snapshot["kernel.pending"] == 0.0
    assert snapshot["kernel.cancelled_pending"] == 0.0


def test_max_events_budget_raises():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=3)


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_executes_single_callback():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, "a")
    sim.schedule(2.0, hits.append, "b")
    assert sim.step() is True
    assert hits == ["a"]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_run_until_event_returns_value():
    sim = Simulator()
    event = sim.event("done")
    sim.schedule(2.0, event.succeed, 42)
    assert sim.run_until_event(event) == 42
    assert sim.now == 2.0


def test_run_until_event_raises_if_sim_dries_out():
    sim = Simulator()
    event = sim.event("never")
    with pytest.raises(SimulationError, match="dry"):
        sim.run_until_event(event)


def test_callback_exception_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(ValueError, match="boom"):
        sim.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60))
def test_property_execution_order_is_sorted_by_time(delays):
    """Whatever the insertion order, execution times are non-decreasing."""
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.integers()),
        max_size=40,
    )
)
def test_property_equal_times_preserve_fifo(pairs):
    """Entries at identical times run in insertion order."""
    sim = Simulator()
    out = []
    for time, payload in pairs:
        sim.schedule(time, out.append, (time, payload))
    sim.run()
    # Stable sort of the input by time must equal execution order.
    assert out == sorted(pairs, key=lambda pair: pair[0])
