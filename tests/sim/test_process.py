"""Tests for coroutine processes."""

import pytest

from repro.errors import ProcessFailure, SimulationError
from repro.sim import Simulator


def test_process_advances_time_with_yielded_delays():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield 1.0
        trace.append(sim.now)
        yield 2.5
        trace.append(sim.now)

    sim.spawn(worker(), "w")
    sim.run()
    assert trace == [0.0, 1.0, 3.5]


def test_process_starts_asynchronously():
    sim = Simulator()
    trace = []

    def worker():
        trace.append("started")
        yield 0.0

    sim.spawn(worker(), "w")
    assert trace == []  # not started until the kernel runs
    sim.run()
    assert trace == ["started"]


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    event = sim.event("sig")
    got = []

    def worker():
        value = yield event
        got.append((sim.now, value))

    sim.spawn(worker(), "w")
    sim.schedule(4.0, event.succeed, "hello")
    sim.run()
    assert got == [(4.0, "hello")]


def test_process_return_value_and_termination_event():
    sim = Simulator()

    def worker():
        yield 1.0
        return 99

    proc = sim.spawn(worker(), "w")
    sim.run()
    assert not proc.alive
    assert proc.result == 99
    assert proc.terminated.triggered
    assert proc.terminated.value == 99


def test_join_another_process():
    sim = Simulator()
    trace = []

    def child():
        yield 2.0
        return "child-result"

    def parent():
        proc = sim.spawn(child(), "child")
        value = yield proc
        trace.append((sim.now, value))

    sim.spawn(parent(), "parent")
    sim.run()
    assert trace == [(2.0, "child-result")]


def test_join_already_terminated_process():
    sim = Simulator()
    trace = []

    def child():
        return "done"
        yield  # pragma: no cover - makes it a generator

    def parent():
        proc = sim.spawn(child(), "child")
        yield 5.0  # child finishes long before
        value = yield proc
        trace.append((sim.now, value))

    sim.spawn(parent(), "parent")
    sim.run()
    assert trace == [(5.0, "done")]


def test_yield_from_subgenerator_composition():
    sim = Simulator()
    trace = []

    def step(dt):
        yield dt
        return sim.now

    def worker():
        t1 = yield from step(1.0)
        t2 = yield from step(2.0)
        trace.append((t1, t2))

    sim.spawn(worker(), "w")
    sim.run()
    assert trace == [(1.0, 3.0)]


def test_exception_in_process_wrapped_as_failure():
    sim = Simulator()

    def bad():
        yield 1.0
        raise RuntimeError("kaput")

    sim.spawn(bad(), "bad")
    with pytest.raises(ProcessFailure, match="bad"):
        sim.run()


def test_failure_preserves_cause():
    sim = Simulator()

    def bad():
        yield 0.0
        raise KeyError("inner")

    sim.spawn(bad(), "oops")
    try:
        sim.run()
    except ProcessFailure as failure:
        assert isinstance(failure.__cause__, KeyError)
    else:  # pragma: no cover
        pytest.fail("expected ProcessFailure")


def test_yielding_garbage_raises():
    sim = Simulator()

    def bad():
        yield object()

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError, match="unsupported"):
        sim.run()


def test_negative_delay_from_process_raises():
    sim = Simulator()

    def bad():
        yield -1.0

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError, match="negative"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError, match="generator"):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def worker(label, period):
        for _ in range(3):
            yield period
            trace.append((sim.now, label))

    sim.spawn(worker("a", 1.0), "a")
    sim.spawn(worker("b", 1.5), "b")
    sim.run()
    assert trace == [
        (1.0, "a"),
        (1.5, "b"),
        (2.0, "a"),
        # At t=3.0 both wake; b's wakeup was scheduled earlier (at t=1.5)
        # so it wins the deterministic tie-break.
        (3.0, "b"),
        (3.0, "a"),
        (4.5, "b"),
    ]
