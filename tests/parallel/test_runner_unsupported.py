"""Model refusals (``unsupported``) through the retry machinery.

An :class:`~repro.errors.AnalyticModelError` is deterministic — the model
is declining a scenario outside its validity domain, not hitting a flake —
so the runner must classify it ``unsupported`` and go terminal on the
first attempt instead of burning the retry budget re-deriving the same
refusal.  Ordinary exceptions keep the retry-then-``exception`` path.
"""

import os

from repro.errors import AnalyticModelError, UnsupportedScenario
from repro.parallel import RetryPolicy, run_tasks


def _refuse(item):
    raise AnalyticModelError(f"utilization 0.97 at spine0 for {item}")


def _refuse_scenario(item):
    raise UnsupportedScenario(f"engine cannot model {item}")


def _flaky(marker):
    if not os.path.exists(marker):
        with open(marker, "w") as stream:
            stream.write("attempted")
        raise ValueError("flaky first attempt")
    return "recovered"


def test_model_refusal_is_unsupported_and_never_retried():
    report = run_tasks(
        _refuse,
        ["fftw"],
        keys=["impact/fftw"],
        workers=1,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    assert report.results == [None]
    assert report.transients == []  # no attempts wasted on a deterministic no
    (record,) = report.failures
    assert record.category == "unsupported"
    assert record.attempts == 1
    assert "spine0" in record.message


def test_unsupported_scenario_classifies_the_same_way():
    report = run_tasks(
        _refuse_scenario,
        ["x"],
        workers=1,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
    )
    (record,) = report.failures
    assert record.category == "unsupported"
    assert record.attempts == 1


def test_pool_path_classifies_refusals_too(tmp_path):
    report = run_tasks(
        _refuse,
        ["a", "b"],
        workers=2,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    assert [record.category for record in report.failures] == [
        "unsupported",
        "unsupported",
    ]
    assert all(record.attempts == 1 for record in report.failures)


def test_ordinary_exceptions_still_retry(tmp_path):
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _flaky,
        [marker],
        workers=1,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
    )
    assert report.results == ["recovered"]
    assert [record.category for record in report.transients] == ["exception"]
