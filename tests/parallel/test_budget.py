"""Budget accounting in the task runner (the planner's admission layer).

The measurement budget is enforced *up front* from per-item cost
estimates: admission must be deterministic in item order regardless of
worker count or completion order, cached-equivalent zero-cost items are
always free, and a deterministic model refusal refunds its cost — a
refusal is knowledge, not a spent experiment.
"""

import pytest

from repro.errors import AnalyticModelError, ConfigurationError
from repro.parallel import RetryPolicy, run_tasks


def _double(x):
    return x * 2


def _refuse_odd(x):
    if x % 2:
        raise AnalyticModelError(f"utilization past ceiling for {x}")
    return x * 2


def test_costs_accumulate_without_budget():
    report = run_tasks(_double, [1, 2, 3], workers=1, costs=[1.0, 2.0, 3.5])
    assert report.results == [2, 4, 6]
    assert report.budget_spent == pytest.approx(6.5)
    assert report.budget_refunded == 0.0
    assert report.skipped == []


def test_admission_is_in_item_order_and_later_cheap_items_still_fit():
    # 3.0 + 3.0 exhausts a budget of 6.5; the 2.0 item no longer fits, but
    # the final 0.5 item does — admission walks the list, it is not a
    # prefix cut.
    report = run_tasks(
        _double,
        [10, 20, 30, 40],
        keys=["a", "b", "c", "d"],
        workers=1,
        costs=[3.0, 3.0, 2.0, 0.5],
        budget=6.5,
    )
    assert report.results == [20, 40, None, 80]
    assert report.skipped == ["c"]
    assert report.budget_spent == pytest.approx(6.5)


def test_skipped_items_are_never_executed_and_never_failures():
    calls = []

    def track(x):
        calls.append(x)
        return x

    report = run_tasks(
        track, [1, 2, 3], workers=1, costs=[5.0, 5.0, 5.0], budget=5.0
    )
    assert calls == [1]
    assert report.failures == []
    assert len(report.skipped) == 2


def test_zero_cost_items_are_always_admitted():
    # Cached products enter the planner's rounds with cost 0 — they must
    # pass admission even when the budget is already exhausted.
    report = run_tasks(
        _double, [1, 2, 3], workers=1, costs=[7.0, 0.0, 0.0], budget=7.0
    )
    assert report.results == [2, 4, 6]
    assert report.skipped == []
    assert report.budget_spent == pytest.approx(7.0)


def test_unsupported_refusal_refunds_its_cost_serial():
    report = run_tasks(
        _refuse_odd,
        [1, 2],
        keys=["odd", "even"],
        workers=1,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
        costs=[4.0, 1.0],
        budget=10.0,
    )
    (record,) = report.failures
    assert record.category == "unsupported"
    assert report.budget_spent == pytest.approx(1.0)  # net of the refund
    assert report.budget_refunded == pytest.approx(4.0)


def test_unsupported_refusal_refunds_its_cost_pooled():
    report = run_tasks(
        _refuse_odd,
        [1, 2, 3, 4],
        workers=2,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
        costs=[1.0, 1.0, 1.0, 1.0],
        budget=10.0,
    )
    assert len(report.failures) == 2
    assert all(r.category == "unsupported" for r in report.failures)
    assert report.budget_spent == pytest.approx(2.0)
    assert report.budget_refunded == pytest.approx(2.0)


def test_ordinary_failures_are_not_refunded():
    def boom(x):
        raise ValueError("flaky")

    report = run_tasks(
        boom,
        [1],
        workers=1,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
        costs=[3.0],
        budget=10.0,
    )
    (record,) = report.failures
    assert record.category == "exception"
    assert report.budget_spent == pytest.approx(3.0)
    assert report.budget_refunded == 0.0


def test_admission_is_identical_across_worker_counts():
    costs = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
    items = list(range(6))
    serial = run_tasks(_double, items, workers=1, costs=costs, budget=7.0)
    pooled = run_tasks(_double, items, workers=3, costs=costs, budget=7.0)
    assert serial.skipped == pooled.skipped
    assert serial.results == pooled.results
    assert serial.budget_spent == pooled.budget_spent


def test_budget_validation():
    with pytest.raises(ConfigurationError):
        run_tasks(_double, [1, 2], workers=1, costs=[1.0])  # length mismatch
    with pytest.raises(ConfigurationError):
        run_tasks(_double, [1], workers=1, budget=1.0)  # budget needs costs
    with pytest.raises(ConfigurationError):
        run_tasks(_double, [1], workers=1, costs=[-1.0])  # negative cost
    with pytest.raises(ConfigurationError):
        run_tasks(_double, [1], workers=1, costs=[1.0], budget=-2.0)


def test_everything_skipped_returns_without_running():
    calls = []

    def track(x):
        calls.append(x)
        return x

    report = run_tasks(track, [1, 2], workers=1, costs=[5.0, 5.0], budget=1.0)
    assert calls == []
    assert report.results == [None, None]
    assert len(report.skipped) == 2
    assert report.budget_spent == 0.0
