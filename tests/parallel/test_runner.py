"""Tests for the parallel experiment driver."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import default_worker_count, map_experiments


def _square(x):
    return x * x


def test_serial_map_preserves_order():
    assert map_experiments(_square, [3, 1, 2], workers=1) == [9, 1, 4]


def test_empty_items():
    assert map_experiments(_square, [], workers=1) == []


def test_single_item_runs_in_process():
    assert map_experiments(_square, [7], workers=4) == [49]


def test_default_worker_count_positive():
    assert default_worker_count() >= 1


def test_invalid_workers_rejected():
    with pytest.raises(ConfigurationError):
        map_experiments(_square, [1], workers=0)


def test_invalid_chunksize_rejected():
    with pytest.raises(ConfigurationError):
        map_experiments(_square, [1], chunksize=0)


def test_process_pool_path():
    """Runs through the pool when workers > 1 and multiple items exist."""
    results = map_experiments(_square, list(range(8)), workers=2, chunksize=2)
    assert results == [x * x for x in range(8)]
