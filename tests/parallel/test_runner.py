"""Tests for the parallel experiment driver."""

import os

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.parallel import (
    RetryPolicy,
    default_worker_count,
    map_experiments,
    run_tasks,
)


def _square(x):
    return x * x


# Sentinel-file helpers: "misbehave on the first call, succeed on the
# second" — the file system carries the attempt count across worker
# processes, so each helper is deterministic under retries.
def _fail_once(marker):
    if not os.path.exists(marker):
        with open(marker, "w") as stream:
            stream.write("attempted")
        raise ValueError("flaky first attempt")
    return "recovered"


def _always_fail(item):
    raise ValueError(f"doomed {item}")


def _hang_once(marker):
    import time

    if not os.path.exists(marker):
        with open(marker, "w") as stream:
            stream.write("attempted")
        time.sleep(60)
    return "awake"


def _crash_once(marker):
    if not os.path.exists(marker):
        with open(marker, "w") as stream:
            stream.write("attempted")
        os._exit(1)  # hard death: no exception, no cleanup
    return "respawned"


def _always_crash(item):
    os._exit(1)


def test_serial_map_preserves_order():
    assert map_experiments(_square, [3, 1, 2], workers=1) == [9, 1, 4]


def test_empty_items():
    assert map_experiments(_square, [], workers=1) == []


def test_single_item_runs_in_process():
    assert map_experiments(_square, [7], workers=4) == [49]


def test_default_worker_count_positive():
    assert default_worker_count() >= 1


def test_invalid_workers_rejected():
    with pytest.raises(ConfigurationError):
        map_experiments(_square, [1], workers=0)


def test_invalid_chunksize_rejected():
    with pytest.raises(ConfigurationError):
        map_experiments(_square, [1], chunksize=0)


def test_process_pool_path():
    """Runs through the pool when workers > 1 and multiple items exist."""
    results = map_experiments(_square, list(range(8)), workers=2, chunksize=2)
    assert results == [x * x for x in range(8)]


# ----------------------------------------------------------------------
# run_tasks: retry semantics
# ----------------------------------------------------------------------
def test_serial_retry_then_success(tmp_path):
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _fail_once,
        [marker],
        keys=["impact/flaky"],
        workers=1,
        policy=RetryPolicy(max_attempts=2, backoff_base=0.0),
    )
    assert report.results == ["recovered"]
    assert report.failures == []
    assert len(report.transients) == 1
    assert report.transients[0].category == "exception"
    assert report.transients[0].key == "impact/flaky"
    assert "flaky first attempt" in report.transients[0].message


def test_pool_retry_then_success(tmp_path):
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _fail_once,
        [marker, str(tmp_path / "other")],  # both flaky-once, distinct markers
        keys=["a", "b"],
        workers=2,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    assert report.results == ["recovered", "recovered"]
    assert report.failures == []
    assert {t.key for t in report.transients} == {"a", "b"}


def test_persistent_failure_becomes_hole_not_exception(tmp_path):
    report = run_tasks(
        _always_fail,
        ["x", "y"],
        keys=["pair/x", "pair/y"],
        workers=1,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    assert report.results == [None, None]
    assert len(report.failures) == 2
    for record in report.failures:
        assert record.category == "exception"
        assert record.attempts == 3  # charged every attempt
    # two transients per task (attempts 1 and 2), terminal attempt is not one
    assert len(report.transients) == 4


def test_mixed_success_and_failure_leaves_targeted_holes():
    def collect(index, key, value):
        landed.append((key, value))

    landed = []
    report = run_tasks(
        _square,
        [2, 3],
        keys=["good/2", "good/3"],
        workers=1,
        policy=RetryPolicy(max_attempts=1),
        on_result=collect,
    )
    assert report.results == [4, 9]
    assert landed == [("good/2", 4), ("good/3", 9)]


# ----------------------------------------------------------------------
# run_tasks: timeout enforcement
# ----------------------------------------------------------------------
def test_hung_task_is_killed_and_retried(tmp_path):
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _hang_once,
        [marker],
        keys=["impact/hang"],
        workers=2,
        policy=RetryPolicy(max_attempts=2, timeout=1.0, backoff_base=0.0),
    )
    assert report.results == ["awake"]
    assert report.failures == []
    assert report.pool_respawns >= 1
    timeouts = [t for t in report.transients if t.category == "timeout"]
    assert len(timeouts) == 1
    assert "task timeout" in timeouts[0].message


def test_single_worker_with_timeout_still_enforces(tmp_path):
    # workers=1 + timeout must not fall back to the (unkillable) serial path.
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _hang_once,
        [marker],
        keys=["impact/hang"],
        workers=1,
        policy=RetryPolicy(max_attempts=2, timeout=1.0, backoff_base=0.0),
    )
    assert report.results == ["awake"]


# ----------------------------------------------------------------------
# run_tasks: broken-pool recovery
# ----------------------------------------------------------------------
def test_worker_crash_respawns_pool_and_retries(tmp_path):
    marker = str(tmp_path / "marker")
    report = run_tasks(
        _crash_once,
        [marker, str(tmp_path / "other")],
        keys=["crash/a", "crash/b"],
        workers=2,
        policy=RetryPolicy(max_attempts=3, backoff_base=0.0),
    )
    assert report.results == ["respawned", "respawned"]
    assert report.failures == []
    assert report.pool_respawns >= 1
    assert any(t.category == "worker-crash" for t in report.transients)


def test_respawn_budget_aborts_run():
    # A crash on every attempt exhausts max_respawns: that is an
    # environment-level failure, so the run raises instead of looping.
    with pytest.raises(ExperimentError, match="max_respawns"):
        run_tasks(
            _always_crash,
            [0, 1],
            workers=2,
            policy=RetryPolicy(max_attempts=10, backoff_base=0.0, max_respawns=1),
        )


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=0.5, backoff_factor=2.0, backoff_max=3.0)
    first = policy.backoff_delay("pair/a/b", 2)
    assert first == policy.backoff_delay("pair/a/b", 2)  # same (key, attempt)
    assert policy.backoff_delay("pair/a/b", 3) != first  # attempts desync
    assert policy.backoff_delay("pair/c/d", 2) != first  # keys desync
    assert policy.backoff_delay("pair/a/b", 20) == 3.0  # ceiling
    assert RetryPolicy(backoff_base=0.0).backoff_delay("k", 2) == 0.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"backoff_base": -0.1},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"max_respawns": -1},
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(ConfigurationError):
        RetryPolicy(**kwargs)


def test_keys_length_mismatch_rejected():
    with pytest.raises(ConfigurationError, match="length mismatch"):
        run_tasks(_square, [1, 2], keys=["only-one"], workers=1)


# ----------------------------------------------------------------------
# Worker sizing
# ----------------------------------------------------------------------
def test_default_worker_count_respects_affinity_mask(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False)
    assert default_worker_count() == 2  # 3 usable cores, one reserved


def test_default_worker_count_floor_of_one(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0}, raising=False)
    assert default_worker_count() == 1
