"""Tests for LatencyCollector."""

import numpy as np
import pytest

from repro.core.measurement import LatencyCollector
from repro.errors import ExperimentError


def test_record_and_values():
    collector = LatencyCollector()
    collector.record(0.0, 1e-6, rank=0)
    collector.record(1.0, 2e-6, rank=2)
    assert collector.count == 2
    np.testing.assert_allclose(collector.values(), [1e-6, 2e-6])
    np.testing.assert_allclose(collector.times(), [0.0, 1.0])
    np.testing.assert_array_equal(collector.ranks(), [0, 2])


def test_nonpositive_latency_rejected():
    collector = LatencyCollector()
    with pytest.raises(ExperimentError):
        collector.record(0.0, 0.0, rank=0)
    with pytest.raises(ExperimentError):
        collector.record(0.0, -1e-6, rank=0)


def test_values_after_filters_warmup():
    collector = LatencyCollector()
    for t in range(10):
        collector.record(float(t), 1e-6 * (t + 1), rank=0)
    late = collector.values_after(5.0)
    assert len(late) == 5
    np.testing.assert_allclose(late, [6e-6, 7e-6, 8e-6, 9e-6, 10e-6])


def test_clear():
    collector = LatencyCollector()
    collector.record(0.0, 1e-6, rank=0)
    collector.clear()
    assert collector.count == 0
    assert len(collector.values()) == 0
