"""Tests for ProbeSignature."""

import math

import numpy as np
import pytest

from repro.core.measurement import ProbeSignature
from repro.errors import ExperimentError
from repro.queueing import ServiceEstimate
from repro.units import US


def _calibration(mean=1e-6, var=1e-13):
    return ServiceEstimate(mean=mean, variance=var, minimum=mean / 2, sample_count=100)


def test_from_samples_basic():
    sig = ProbeSignature.from_samples([1e-6, 2e-6, 3e-6])
    assert sig.mean == pytest.approx(2e-6)
    assert sig.std == pytest.approx(np.std([1e-6, 2e-6, 3e-6], ddof=1))
    assert sig.count == 3
    assert math.isnan(sig.utilization)


def test_utilization_with_calibration():
    calibration = _calibration()
    idle = ProbeSignature.from_samples([1e-6] * 10, calibration)
    loaded = ProbeSignature.from_samples([4e-6] * 10, calibration)
    assert idle.utilization == pytest.approx(0.0, abs=1e-9)
    assert 0.0 < loaded.utilization < 1.0
    assert loaded.utilization > 0.5


def test_too_few_samples_rejected():
    with pytest.raises(ExperimentError):
        ProbeSignature.from_samples([1e-6])


def test_interval_and_overlap():
    a = ProbeSignature.from_samples([1e-6, 3e-6])  # mean 2, std ~1.41
    b = ProbeSignature.from_samples([2e-6, 4e-6])  # mean 3
    low, high = a.interval
    assert low < a.mean < high
    assert a.interval_overlap(b) > 0
    assert a.interval_overlap(b) == pytest.approx(b.interval_overlap(a))


def test_disjoint_intervals_have_zero_overlap():
    a = ProbeSignature.from_samples([1.00e-6, 1.01e-6])
    b = ProbeSignature.from_samples([9.00e-6, 9.01e-6])
    assert a.interval_overlap(b) == 0.0


def test_pdf_affinity_prefers_similar():
    rng = np.random.default_rng(1)
    base = rng.normal(2e-6, 0.3e-6, 1000).clip(1e-7)
    similar = rng.normal(2e-6, 0.3e-6, 1000).clip(1e-7)
    different = rng.normal(8e-6, 0.3e-6, 1000).clip(1e-7)
    a = ProbeSignature.from_samples(base)
    assert a.pdf_affinity(ProbeSignature.from_samples(similar)) > a.pdf_affinity(
        ProbeSignature.from_samples(different)
    )


def test_serialization_roundtrip():
    sig = ProbeSignature.from_samples([1e-6, 2e-6, 8e-6], _calibration())
    restored = ProbeSignature.from_dict(sig.to_dict())
    assert restored.mean == sig.mean
    assert restored.std == sig.std
    assert restored.count == sig.count
    assert restored.utilization == sig.utilization
    assert restored.histogram.total == sig.histogram.total
