"""Tests for LatencyHistogram."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.measurement import LatencyHistogram, paper_bin_edges
from repro.errors import ExperimentError
from repro.units import US


def test_paper_bin_edges_shape():
    edges = paper_bin_edges()
    assert len(edges) == 25
    assert edges[0] == 0.0
    assert edges[-1] == pytest.approx(12 * US)


def test_paper_bin_edges_validation():
    with pytest.raises(ExperimentError):
        paper_bin_edges(bins=0)
    with pytest.raises(ExperimentError):
        paper_bin_edges(low=5.0, high=1.0)


def test_from_values_counts_and_overflow():
    edges = np.array([0.0, 1.0, 2.0])
    hist = LatencyHistogram.from_values([0.5, 0.6, 1.5, 5.0, 7.0], edges)
    np.testing.assert_array_equal(hist.counts, [2, 1])
    assert hist.overflow == 2
    assert hist.total == 5


def test_sample_on_last_edge_is_not_double_counted():
    # Regression: np.histogram puts a sample exactly equal to the last edge
    # in the final (closed) bin, and a >= overflow test counted it again —
    # [1e-6, 12e-6] against the paper edges reported total == 3.
    edges = paper_bin_edges()  # last edge is exactly 12 µs
    hist = LatencyHistogram.from_values([1e-6, 12e-6], edges)
    assert hist.total == 2
    assert hist.overflow == 0
    assert hist.counts[-1] == 1  # the edge sample lives in the last bin
    assert hist.fractions.sum() + hist.overflow_fraction == pytest.approx(1.0)


def test_overflow_is_strictly_beyond_last_edge():
    edges = np.array([0.0, 1.0, 2.0])
    hist = LatencyHistogram.from_values([0.5, 2.0, 2.0000001, 9.0], edges)
    assert hist.overflow == 2
    assert hist.total == 4


def test_fractions_sum_to_one_including_overflow():
    edges = np.array([0.0, 1.0, 2.0])
    hist = LatencyHistogram.from_values([0.5, 1.5, 9.0], edges)
    assert hist.fractions.sum() + hist.overflow_fraction == pytest.approx(1.0)


def test_empty_values_rejected():
    with pytest.raises(ExperimentError):
        LatencyHistogram.from_values([], np.array([0.0, 1.0]))


def test_mode_bin_and_fraction_above():
    edges = np.array([0.0, 1.0, 2.0, 3.0])
    hist = LatencyHistogram.from_values([0.1, 1.1, 1.2, 1.3, 2.5], edges)
    assert hist.mode_bin() == 1
    assert hist.fraction_above(2.0) == pytest.approx(0.2)
    assert hist.fraction_above(1.0) == pytest.approx(0.8)


def test_overlap_requires_same_edges():
    a = LatencyHistogram.from_values([0.5], np.array([0.0, 1.0, 2.0]))
    b = LatencyHistogram.from_values([0.5], np.array([0.0, 0.5, 1.0]))
    with pytest.raises(ExperimentError):
        a.overlap(b)


def test_overlap_is_high_for_identical_distributions():
    edges = paper_bin_edges()
    rng = np.random.default_rng(0)
    samples = rng.normal(3e-6, 0.5e-6, 2000).clip(1e-7)
    a = LatencyHistogram.from_values(samples[:1000], edges)
    b = LatencyHistogram.from_values(samples[1000:], edges)
    far = LatencyHistogram.from_values(rng.normal(9e-6, 0.5e-6, 1000).clip(1e-7), edges)
    assert a.overlap(b) > 3 * a.overlap(far)


def test_overlap_symmetry():
    edges = paper_bin_edges()
    a = LatencyHistogram.from_values([1e-6, 2e-6, 3e-6], edges)
    b = LatencyHistogram.from_values([2e-6, 4e-6], edges)
    assert a.overlap(b) == pytest.approx(b.overlap(a))


def test_serialization_roundtrip():
    hist = LatencyHistogram.from_values([1e-6, 5e-6, 20e-6], paper_bin_edges())
    restored = LatencyHistogram.from_dict(hist.to_dict())
    np.testing.assert_array_equal(restored.counts, hist.counts)
    assert restored.overflow == hist.overflow
    assert restored.total == hist.total


def test_centers():
    hist = LatencyHistogram.from_values([0.5], np.array([0.0, 1.0, 2.0]))
    np.testing.assert_allclose(hist.centers, [0.5, 1.5])


@given(st.lists(st.floats(min_value=1e-8, max_value=1e-4), min_size=1, max_size=300))
def test_property_total_mass_conserved(samples):
    hist = LatencyHistogram.from_values(samples, paper_bin_edges())
    assert hist.total == len(samples)
    assert hist.fractions.sum() + hist.overflow_fraction == pytest.approx(1.0)
