"""Run the full reproduction campaign into the sharded results cache.

Usage: python scripts/run_paper_pipeline.py [--cache results/cache]
           [--legacy-cache results/paper_cache.json] [--profile paper|quick]
           [--engine sim|analytic] [--workers N] [--chunksize N]

Roughly 330 deterministic experiment runs, fanned out over a process pool.
Each product group is flushed atomically to its own shard as results land,
so an interrupted campaign resumes from completed shards; a pre-sharding
monolithic cache is migrated automatically on first load.  With
``--engine analytic`` the same campaign is answered from closed-form M/G/1
math in seconds (separate cache namespace; fails loudly near saturation).
"""

import argparse
import time

from repro.analysis import summarize_errors
from repro.core.experiments import PipelineSettings, ReproductionPipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache",
        default="results/cache",
        help="sharded cache directory (one JSON shard per product group)",
    )
    parser.add_argument(
        "--legacy-cache",
        default="results/paper_cache.json",
        help="pre-sharding monolithic cache migrated into --cache on load",
    )
    parser.add_argument("--profile", choices=("paper", "quick"), default="paper")
    parser.add_argument(
        "--engine",
        choices=("sim", "analytic"),
        default="sim",
        help="experiment backend (sim = discrete-event reference, "
        "analytic = closed-form M/G/1 fast path)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count (default: all cores but one)",
    )
    parser.add_argument(
        "--chunksize", type=int, default=1, help="experiments per pool submission"
    )
    args = parser.parse_args()

    start = time.time()
    pipeline = ReproductionPipeline(
        settings=PipelineSettings(
            profile=args.profile, seed=args.seed, engine=args.engine
        ),
        cache_path=args.cache,
        legacy_cache=args.legacy_cache,
        workers=args.workers,
        chunksize=args.chunksize,
        verbose=True,
    )
    stats = pipeline.ensure_all()
    errors = pipeline.prediction_errors()
    print(
        f"done in {time.time() - start:.0f}s "
        f"({stats['executed']} executed, {stats['cached']} cached, "
        f"{stats['workers']} worker(s)); cache at {pipeline.cache_path}"
    )
    for model, table in errors.items():
        summary = summarize_errors(list(table.values()))
        print(
            f"  {model:16s} median |error| = {summary.median:.1f}%  "
            f"(IQR {summary.q1:.1f}–{summary.q3:.1f}%)"
        )


if __name__ == "__main__":
    main()
