"""Run the full reproduction campaign into the sharded results cache.

Usage: python scripts/run_paper_pipeline.py [--cache results/cache]
           [--legacy-cache results/paper_cache.json] [--profile paper|quick]
           [--engine sim|analytic] [--workers N] [--chunksize N]
           [--max-attempts N] [--task-timeout S] [--retry-backoff S]
           [--failure-budget N]

Roughly 330 deterministic experiment runs, fanned out over a process pool.
Each product group is flushed atomically to its own checksummed shard as
results land, so an interrupted campaign resumes from completed shards;
corrupt shards are quarantined and recomputed; a pre-sharding monolithic
cache is migrated automatically on first load.  Failing experiments are
retried with backoff (``--max-attempts``), hung ones are killed after
``--task-timeout`` seconds, and up to ``--failure-budget`` permanent
failures leave holes plus a ``failure_report.json`` instead of aborting.
With ``--engine analytic`` the same campaign is answered from closed-form
M/G/1 math in seconds (separate cache namespace; fails loudly near
saturation).
"""

import argparse
import sys
import time

from repro.analysis import summarize_errors
from repro.core.experiments import PipelineSettings, ReproductionPipeline
from repro.parallel import RetryPolicy


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache",
        default="results/cache",
        help="sharded cache directory (one JSON shard per product group)",
    )
    parser.add_argument(
        "--legacy-cache",
        default="results/paper_cache.json",
        help="pre-sharding monolithic cache migrated into --cache on load",
    )
    parser.add_argument("--profile", choices=("paper", "quick"), default="paper")
    parser.add_argument(
        "--engine",
        choices=("sim", "analytic"),
        default="sim",
        help="experiment backend (sim = discrete-event reference, "
        "analytic = closed-form M/G/1 fast path)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count (default: all usable cores but one)",
    )
    parser.add_argument(
        "--chunksize", type=int, default=1, help="experiments per pool submission"
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="attempts per experiment before it becomes a recorded hole",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-experiment wall-clock budget in seconds (default: none)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base seconds of (jittered, exponential) backoff between attempts",
    )
    parser.add_argument(
        "--failure-budget",
        type=int,
        default=0,
        help="permanent failures tolerated before the campaign errors out",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        default=None,
        help="collect metrics/spans and write telemetry.json next to the "
        "shards (default: the REPRO_TELEMETRY env var)",
    )
    args = parser.parse_args()

    start = time.time()
    pipeline = ReproductionPipeline(
        settings=PipelineSettings(
            profile=args.profile, seed=args.seed, engine=args.engine
        ),
        cache_path=args.cache,
        legacy_cache=args.legacy_cache,
        workers=args.workers,
        chunksize=args.chunksize,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            timeout=args.task_timeout,
            backoff_base=args.retry_backoff,
        ),
        failure_budget=args.failure_budget,
        verbose=True,
        telemetry=args.telemetry,
    )
    stats = pipeline.ensure_all()
    print(
        f"campaign in {time.time() - start:.0f}s "
        f"({stats['executed']} executed, {stats['cached']} cached, "
        f"{stats['failed']} failed, {stats['workers']} worker(s)); "
        f"cache at {pipeline.cache_path}"
    )
    if stats.get("telemetry_report"):
        print(f"telemetry report at {stats['telemetry_report']}")
    if stats["failed"]:
        print(
            f"warning: {stats['failed']} hole(s) within the failure budget; "
            f"report at {stats['failure_report']} — skipping model summaries"
        )
        return 2
    errors = pipeline.prediction_errors()
    for model, table in errors.items():
        summary = summarize_errors(list(table.values()))
        print(
            f"  {model:16s} median |error| = {summary.median:.1f}%  "
            f"(IQR {summary.q1:.1f}–{summary.q3:.1f}%)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
