"""Run the full paper-profile reproduction campaign into the results cache.

Usage: python scripts/run_paper_pipeline.py [cache_path]

Roughly 330 deterministic simulation runs; progress is printed per product.
Re-running is incremental thanks to the JSON cache.
"""

import sys
import time

from repro.core.experiments import PipelineSettings, ReproductionPipeline


def main() -> None:
    cache = sys.argv[1] if len(sys.argv) > 1 else "results/paper_cache.json"
    start = time.time()
    pipeline = ReproductionPipeline(
        settings=PipelineSettings(profile="paper"),
        cache_path=cache,
        verbose=True,
    )
    pipeline.ensure_all()
    errors = pipeline.prediction_errors()
    print(f"done in {time.time() - start:.0f}s; cache at {cache}")
    for model, table in errors.items():
        values = sorted(table.values())
        median = values[len(values) // 2]
        print(f"  {model:16s} median |error| = {median:.1f}%")


if __name__ == "__main__":
    main()
