"""End-to-end serving smoke: registry lifecycle + hot reload under live load.

Usage: python scripts/serving_load_smoke.py [--workdir results/serving-smoke]
           [--threads 6] [--settle 0.4]

Exercises the operator's whole playbook through the real CLI and HTTP
surfaces, in one process:

1. Run two analytic campaigns (seeds 0 and 1) and ``repro fit`` each into
   a checksummed artifact.
2. ``repro registry publish`` both as immutable versions ``v1``/``v2``;
   ``repro registry promote v1``.
3. Serve the registry with a fast CURRENT-pointer watcher and drive
   sustained concurrent load from N client threads.
4. ``repro registry promote v2`` *mid-load*, then keep the load running.

Asserts: zero failed requests across the flip, every client thread's
observed version stream flips ``v1 -> v2`` exactly once (never back), the
server records exactly one reload, and post-flip predictions are
bit-identical to an engine rebuilt from the registry's ``v2`` artifact.
Exits non-zero on any violation.
"""

import argparse
import concurrent.futures
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.cli import main as repro
from repro.serving import ModelRegistry, PredictionServer


def run_cli(*argv: str) -> None:
    code = repro(list(argv))
    if code != 0:
        raise SystemExit(f"`repro {' '.join(argv)}` exited {code}")


def get(port: int, path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return json.loads(response.read())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="results/serving-smoke")
    parser.add_argument("--threads", type=int, default=6)
    parser.add_argument(
        "--settle",
        type=float,
        default=0.4,
        help="seconds of load before (and after) the mid-load promotion",
    )
    args = parser.parse_args()
    workdir = Path(args.workdir)
    registry_root = workdir / "registry"

    # 1. Two fitted artifact versions from two campaign seeds.
    for seed, version in ((0, "v1"), (1, "v2")):
        cache = str(workdir / f"cache-seed{seed}")
        artifact = str(workdir / f"model-{version}.json")
        run_cli(
            "--engine", "analytic", "--seed", str(seed), "--cache", cache,
            "campaign", "--workers", "2",
        )
        run_cli(
            "--engine", "analytic", "--seed", str(seed), "--cache", cache,
            "fit", "--out", artifact,
        )
        # 2. Published through the CLI as an immutable registry version.
        run_cli(
            "registry", "publish", "--registry", str(registry_root),
            "--model", artifact, "--version", version,
        )
    run_cli("registry", "promote", "--registry", str(registry_root), "--version", "v1")
    run_cli("registry", "list", "--registry", str(registry_root))

    # 3. Serve the registry and hammer it from N client threads.
    registry = ModelRegistry(registry_root)
    server = PredictionServer(registry=registry, port=0, reload_interval=0.05)
    server.serve_background()
    port = server.server_port
    apps = get(port, "/healthz")["apps"]
    stop = threading.Event()
    failures: list = []
    versions_per_thread: list = []

    def client(index: int) -> int:
        made = 0
        seen: list = []
        while not stop.is_set():
            app = apps[(index + made) % len(apps)]
            other = apps[(index + made + 1) % len(apps)]
            try:
                document = get(port, f"/predict?app={app}&other={other}")
            except Exception as exc:  # noqa: BLE001 - recorded, asserted empty
                failures.append(repr(exc))
                continue
            finally:
                made += 1
            if not seen or seen[-1] != document["version"]:
                seen.append(document["version"])
        versions_per_thread.append(seen)
        return made

    try:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=args.threads
        ) as pool:
            workers = [pool.submit(client, i) for i in range(args.threads)]
            time.sleep(args.settle)
            # 4. The mid-load promotion, through the CLI like an operator.
            run_cli(
                "registry", "promote", "--registry", str(registry_root),
                "--version", "v2",
            )
            deadline = time.monotonic() + 10.0
            while server.state.version != "v2":
                if time.monotonic() > deadline:
                    raise SystemExit("server never picked up the v2 promotion")
                time.sleep(0.01)
            time.sleep(args.settle)
            stop.set()
            made = sum(worker.result(timeout=30) for worker in workers)

        if failures:
            raise SystemExit(
                f"{len(failures)} requests failed across the flip: {failures[:5]}"
            )
        for seen in versions_per_thread:
            if seen not in (["v1", "v2"], ["v1"], ["v2"]):
                raise SystemExit(f"version stream flapped: {seen}")
        if not any(seen == ["v1", "v2"] for seen in versions_per_thread):
            raise SystemExit("no client thread observed the v1 -> v2 flip")
        health = get(port, "/healthz")
        if health["reloads"] != 1 or health["reload_failures"] != 0:
            raise SystemExit(f"expected exactly one clean reload: {health}")

        # Post-flip answers match an engine rebuilt from the v2 artifact.
        v2_engine = registry.load("v2").engine()
        for app in apps:
            other = apps[(apps.index(app) + 1) % len(apps)]
            document = get(port, f"/predict?app={app}&other={other}")
            assert document["version"] == "v2", document
            for model, predicted in document["predictions"].items():
                expected = v2_engine.predict(app, other, model)
                assert predicted == expected, (app, other, model)
    finally:
        server.shutdown()
        server.server_close()

    flipped = sum(1 for seen in versions_per_thread if seen == ["v1", "v2"])
    print(
        f"OK: {made} requests over {args.threads} threads, 0 failures; "
        f"{flipped} thread(s) observed the v1->v2 flip; exactly 1 reload; "
        "post-flip predictions bit-identical to the re-loaded v2 artifact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
