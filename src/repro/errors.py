"""Exception hierarchy and failure taxonomy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.

The module also defines :class:`FailureRecord`, the structured unit of the
campaign's failure accounting: a partial campaign does not raise a stack
trace, it finishes with holes and a machine-readable list of these records.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProcessFailure",
    "MPIError",
    "MatchingError",
    "EstimationError",
    "ExperimentError",
    "AnalyticModelError",
    "UnsupportedScenario",
    "ModelError",
    "ArtifactError",
    "RegistryError",
    "InjectedFault",
    "FailureRecord",
    "FAILURE_CATEGORIES",
    "CampaignError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or broke down."""


class ProcessFailure(SimulationError):
    """A simulated process raised an exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process_name: str, message: str = "") -> None:
        self.process_name = process_name
        detail = f": {message}" if message else ""
        super().__init__(f"simulated process {process_name!r} failed{detail}")


class MPIError(ReproError):
    """Misuse of the simulated message-passing layer."""


class MatchingError(MPIError):
    """A receive could not be matched or a request was misused."""


class EstimationError(ReproError):
    """A queueing-theory estimator could not produce a valid estimate."""


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""


class AnalyticModelError(ExperimentError):
    """The analytic engine was asked for a product outside its validity range.

    The closed-form M/G/1 backend assumes Poisson packet arrivals and a
    stable, lightly-to-moderately loaded switch; rather than extrapolate
    silently it refuses loudly.  Callers should fall back to the simulation
    engine for such experiments.
    """


class UnsupportedScenario(AnalyticModelError):
    """A scenario exceeds the chosen engine's declared capabilities.

    Raised by registry-level capability dispatch
    (:func:`repro.engine.ensure_scenario_supported`) before an engine ever
    sees the descriptor — a scenario an engine cannot model must never
    silently receive wrong answers (e.g. single-switch math for a faulted
    fabric).  The message names the engines that *do* support the scenario;
    the packet-level simulation engine handles every scenario.
    """


class ModelError(ReproError):
    """A prediction model was queried before being fitted, or misused."""


class ArtifactError(ReproError):
    """A fitted-model artifact is corrupt, truncated, or incompatible.

    Raised by :mod:`repro.serving.artifact` when a file fails the checksum
    envelope, carries an unknown format version, or lacks required fields —
    a damaged artifact is rejected loudly, never served from.
    """


class RegistryError(ReproError):
    """A model-registry operation was invalid or the registry is damaged.

    Raised by :mod:`repro.serving.registry` when a version is unknown, a
    version name collides or is malformed, the ``CURRENT`` pointer is
    garbled, or a rollback is requested with no promotion history.  Artifact
    *content* damage keeps raising :class:`ArtifactError` — promotion
    verifies the artifact before the pointer ever moves.
    """


class InjectedFault(ReproError):
    """A deliberate failure raised by the fault-injection hook.

    Never raised in normal operation — only when a fault plan
    (:mod:`repro.faults`) names the current experiment and attempt.  Tests
    and CI use it to exercise every recovery path deterministically.
    """


#: The closed set of ways one campaign task can fail.
#:
#: ``exception``    — the experiment function raised.
#: ``timeout``      — the task exceeded its per-task deadline and its worker
#:                    was killed.
#: ``worker-crash`` — the hosting worker process died (segfault, ``os._exit``,
#:                    OOM kill) and took the pool down with it.
#: ``dependency``   — never attempted: an input product (e.g. the app's
#:                    baseline) failed upstream.
#: ``unsupported``  — the engine deterministically refused the scenario
#:                    (:class:`AnalyticModelError`: model-domain limit such
#:                    as utilization beyond the validity ceiling), or the
#:                    product depends on such a refusal.  Deterministic, so
#:                    never retried; a documented hole, exempt from the
#:                    failure budget (which guards against infrastructure
#:                    flakiness, not model limits).
FAILURE_CATEGORIES = ("exception", "timeout", "worker-crash", "dependency", "unsupported")

#: Exception type names whose task failures are model refusals, not bugs:
#: deterministic "this scenario is outside my validity domain" errors.  The
#: runner sees worker exceptions stringified as ``"TypeName: detail"``, so
#: classification is by concrete type name.
MODEL_REFUSAL_TYPES = ("AnalyticModelError", "UnsupportedScenario")


def classify_failure_message(message: str) -> str:
    """Failure category for a stringified task exception (``"TypeName: detail"``).

    Model refusals (:data:`MODEL_REFUSAL_TYPES`) classify as ``unsupported``;
    everything else is a plain ``exception``.
    """
    type_name = message.split(":", 1)[0]
    return "unsupported" if type_name in MODEL_REFUSAL_TYPES else "exception"


@dataclass
class FailureRecord:
    """One task's terminal (or retried) failure, machine-readable.

    Attributes:
        key: the product's cache key.
        category: one of :data:`FAILURE_CATEGORIES`.
        message: ``"TypeName: detail"`` of the underlying error.
        attempts: attempts consumed when the record was cut (0 for
            ``dependency`` records, which never run).
        kind: experiment kind (``impact``, ``pair``, …); filled in by the
            pipeline, empty for generic tasks.
        elapsed: seconds spent across all attempts, where known.
    """

    key: str
    category: str
    message: str
    attempts: int = 1
    kind: str = ""
    elapsed: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in FAILURE_CATEGORIES:
            raise ConfigurationError(
                f"unknown failure category {self.category!r}; "
                f"expected one of {', '.join(FAILURE_CATEGORIES)}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable form (the failure report's row format)."""
        return {
            "key": self.key,
            "category": self.category,
            "message": self.message,
            "attempts": self.attempts,
            "kind": self.kind,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            key=data["key"],
            category=data["category"],
            message=data["message"],
            attempts=int(data.get("attempts", 1)),
            kind=data.get("kind", ""),
            elapsed=float(data.get("elapsed", 0.0)),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.key} [{self.category}] after {self.attempts} attempt(s): "
            f"{self.message}"
        )


class CampaignError(ExperimentError):
    """The campaign's permanent failures exceeded its failure budget.

    Carries the full list of :class:`FailureRecord` s so callers can emit a
    structured report even when the budget is blown.
    """

    def __init__(self, message: str, failures: "list[FailureRecord]" = ()) -> None:  # type: ignore[assignment]
        self.failures = list(failures)
        super().__init__(message)
