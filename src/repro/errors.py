"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProcessFailure",
    "MPIError",
    "MatchingError",
    "EstimationError",
    "ExperimentError",
    "AnalyticModelError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or broke down."""


class ProcessFailure(SimulationError):
    """A simulated process raised an exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process_name: str, message: str = "") -> None:
        self.process_name = process_name
        detail = f": {message}" if message else ""
        super().__init__(f"simulated process {process_name!r} failed{detail}")


class MPIError(ReproError):
    """Misuse of the simulated message-passing layer."""


class MatchingError(MPIError):
    """A receive could not be matched or a request was misused."""


class EstimationError(ReproError):
    """A queueing-theory estimator could not produce a valid estimate."""


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""


class AnalyticModelError(ExperimentError):
    """The analytic engine was asked for a product outside its validity range.

    The closed-form M/G/1 backend assumes Poisson packet arrivals and a
    stable, lightly-to-moderately loaded switch; rather than extrapolate
    silently it refuses loudly.  Callers should fall back to the simulation
    engine for such experiments.
    """


class ModelError(ReproError):
    """A prediction model was queried before being fitted, or misused."""
