"""Command-line interface: regenerate any of the paper's artifacts.

Examples::

    repro calibrate
    repro impact fftw
    repro fig6 --profile quick
    repro campaign --workers 4           # run the whole campaign in parallel
    repro campaign --engine analytic     # closed-form M/G/1 campaign, seconds
    repro campaign --topology leaf-spine --faults lossy-spine   # fabric scenario
    repro fabric-report --topology leaf-spine --faults lossy-spine \
        --out results/artifacts/fabric_report.json   # compare vs baseline
    repro campaign --telemetry --json    # machine-readable stats + telemetry.json
    repro telemetry --cache results/cache          # last campaign's metrics/spans
    repro telemetry --trace-out trace.json         # Chrome trace for Perfetto
    repro table1 --cache results/cache
    repro predict fftw milc --cache results/cache
    repro fit --out model.json --cache results/cache  # export fitted models
    repro predict fftw milc --model model.json        # predict, no cache needed
    repro serve --model model.json --port 8100        # batch prediction HTTP API
    repro fit --registry results/registry             # publish a new version
    repro registry list --registry results/registry
    repro registry promote --registry results/registry --version v0001
    repro serve --registry results/registry --port 8100 \
        --http-workers 4 --batch-window 2  # sharded, hot-reloading, batching
    repro registry rollback --registry results/registry  # serving tier flips back
    repro top --cache results/cache      # live view of a campaign in flight
    repro campaign --telemetry --log campaign.jsonl   # structured task logs
    repro report --cache results/cache
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import telemetry as telemetry_mod
from .analysis import (
    render_fig6,
    render_fig7_series,
    render_fig8,
    render_fig9,
    render_histogram,
    render_table1,
    summarize_errors,
)
from .core.experiments import PipelineSettings, ReproductionPipeline
from .parallel import RetryPolicy

__all__ = ["main", "build_parser"]

# Applied after parsing (see build_parser for why not via argparse defaults).
_COMMON_DEFAULTS = {
    "profile": "paper",
    "engine": "sim",
    "seed": 0,
    "cache": "results/cache",
    "legacy_cache": "results/paper_cache.json",
    "workers": None,
    "chunksize": 1,
    "max_attempts": 2,
    "task_timeout": None,
    "retry_backoff": 0.1,
    "failure_budget": 0,
    "telemetry": None,
    "log": None,
    "json": False,
    "topology": "single",
    "leaves": 2,
    "nodes_per_leaf": 9,
    "spines": 2,
    "ecmp_seed": 0,
    "faults": "",
}


def build_parser() -> argparse.ArgumentParser:
    # Shared options work both before and after the subcommand
    # (``repro --cache X table1`` and ``repro table1 --cache X``).  The
    # options must SUPPRESS their defaults: subparsers parse into a fresh
    # namespace whose contents overwrite the outer one, so a plain default
    # (or set_defaults, which rewrites the shared parent actions) silently
    # clobbers any value given before the subcommand.  The real defaults
    # are filled in after parsing from _COMMON_DEFAULTS.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--profile",
        choices=("paper", "quick"),
        default=argparse.SUPPRESS,
        help="CompressionB catalog size (paper=40 configs, quick=10)",
    )
    common.add_argument(
        "--engine",
        choices=("sim", "analytic", "fluid"),
        default=argparse.SUPPRESS,
        help="experiment backend: 'sim' (discrete-event reference, default), "
        "'analytic' (closed-form M/G/1 fast path; single switch only), or "
        "'fluid' (flow-level per-link fixed points; healthy fabrics up to "
        "1000+ nodes).  Non-default engines use their own cache namespace "
        "and fail loudly near saturation; see `repro engines`",
    )
    common.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="root RNG seed"
    )
    common.add_argument(
        "--cache",
        default=argparse.SUPPRESS,
        help="sharded result-cache directory, one JSON shard per product "
        "group (created as needed; a legacy monolithic .json file is "
        "migrated automatically; default results/cache)",
    )
    common.add_argument(
        "--legacy-cache",
        default=argparse.SUPPRESS,
        help="pre-sharding monolithic cache migrated into --cache on load "
        "(default results/paper_cache.json; pass '' to disable)",
    )
    common.add_argument(
        "--workers",
        type=int,
        default=argparse.SUPPRESS,
        help="campaign process count (default: all cores but one)",
    )
    common.add_argument(
        "--chunksize",
        type=int,
        default=argparse.SUPPRESS,
        help="experiments per pool task submission",
    )
    common.add_argument(
        "--max-attempts",
        type=int,
        default=argparse.SUPPRESS,
        help="attempts per experiment before it becomes a recorded hole "
        "(default 2 = retry once)",
    )
    common.add_argument(
        "--task-timeout",
        type=float,
        default=argparse.SUPPRESS,
        help="per-experiment wall-clock budget in seconds; a hung task's "
        "worker is killed and the task retried (default: no timeout)",
    )
    common.add_argument(
        "--retry-backoff",
        type=float,
        default=argparse.SUPPRESS,
        help="base seconds of exponential backoff between attempts "
        "(deterministically jittered; default 0.1)",
    )
    common.add_argument(
        "--failure-budget",
        type=int,
        default=argparse.SUPPRESS,
        help="how many experiments may fail permanently before the campaign "
        "errors out; failures within budget leave holes plus a "
        "failure_report.json next to the shards (default 0)",
    )
    common.add_argument(
        "--telemetry",
        dest="telemetry",
        action="store_true",
        default=argparse.SUPPRESS,
        help="collect metrics/spans during campaigns and write telemetry.json "
        "next to the cache shards (purely observational: products are "
        "bit-identical either way; default: the REPRO_TELEMETRY env var)",
    )
    common.add_argument(
        "--no-telemetry",
        dest="telemetry",
        action="store_false",
        default=argparse.SUPPRESS,
        help="force telemetry off, overriding REPRO_TELEMETRY",
    )
    common.add_argument(
        "--log",
        metavar="TARGET",
        default=argparse.SUPPRESS,
        help="JSON-lines structured log sink: 'stderr' or a file path "
        "(appended); overrides the REPRO_LOG env var (default: REPRO_LOG, "
        "off when unset)",
    )
    common.add_argument(
        "--json",
        action="store_true",
        default=argparse.SUPPRESS,
        help="emit machine-readable JSON on stdout (human/progress lines go "
        "to stderr, so the output pipes cleanly into other tools)",
    )
    common.add_argument(
        "--topology",
        choices=("single", "leaf-spine"),
        default=argparse.SUPPRESS,
        help="fabric layout: 'single' (the paper's one-switch platform, "
        "default) or 'leaf-spine' (2-level fabric with ECMP flow hashing; "
        "shape set by --leaves/--nodes-per-leaf/--spines)",
    )
    common.add_argument(
        "--leaves",
        type=int,
        default=argparse.SUPPRESS,
        help="leaf switches in the leaf-spine fabric (default 2)",
    )
    common.add_argument(
        "--nodes-per-leaf",
        type=int,
        default=argparse.SUPPRESS,
        help="compute nodes per leaf switch (default 9, keeping Cab's 18)",
    )
    common.add_argument(
        "--spines",
        type=int,
        default=argparse.SUPPRESS,
        help="spine switches (ECMP spreads flows across them; default 2)",
    )
    common.add_argument(
        "--ecmp-seed",
        type=int,
        default=argparse.SUPPRESS,
        help="seed folded into the ECMP flow hash (re-deals flows onto "
        "spines without touching any other randomness; default 0)",
    )
    common.add_argument(
        "--faults",
        metavar="SPEC",
        default=argparse.SUPPRESS,
        help="per-link fault scenario: a preset name (lossy-spine, "
        "degraded-spine, corrupting-spine, flaky-spine), inline JSON "
        "(a rule object or list of rules), or @file.json; requires "
        "--topology leaf-spine",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Casas & Bronevetsky (IPPS 2014) artifacts.",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def command(name, help_text):
        return sub.add_parser(name, help=help_text, parents=[common])

    def add_planner_arguments(cmd, *, include_plan_out: bool) -> None:
        cmd.add_argument(
            "--planner",
            choices=("greedy", "uncertainty"),
            default=None,
            help="run an adaptive planned campaign instead of the exhaustive "
            "one: 'uncertainty' refines where the degradation trend's "
            "confidence band is widest, 'greedy' maximizes utilization "
            "coverage per estimated cost",
        )
        cmd.add_argument(
            "--measurement-budget",
            type=float,
            default=None,
            metavar="SECONDS",
            help="estimated simulated experiment-seconds the planned campaign "
            "may spend (cached products are free; unsupported refusals are "
            "refunded; default: unbudgeted, stop on error stability)",
        )
        cmd.add_argument(
            "--max-rounds",
            type=int,
            default=8,
            help="adaptive planning rounds after the bootstrap (default 8)",
        )
        cmd.add_argument(
            "--labels-per-round",
            type=int,
            default=2,
            help="CompressionB configs whose degradation rows each round "
            "completes (default 2)",
        )
        cmd.add_argument(
            "--cost-from",
            metavar="FILE",
            default=None,
            help="calibrate per-kind cost estimates from a previous "
            "campaign's telemetry.json (deterministic given the file; "
            "default: estimates derived from the campaign durations)",
        )
        if include_plan_out:
            cmd.add_argument(
                "--plan-out",
                metavar="FILE",
                default=None,
                help="write the deterministic plan trace (rounds, selections, "
                "budget accounting, holdout errors) as JSON",
            )

    command("calibrate", "idle-switch service estimate (µ, Var(S))")
    campaign_cmd = command(
        "campaign", "run every pending experiment of the evaluation"
    )
    add_planner_arguments(campaign_cmd, include_plan_out=True)
    plan_cmd = command(
        "plan",
        "preview a planned campaign: per-kind cost estimates, the bootstrap "
        "sweep, and what a measurement budget would admit (no experiments run)",
    )
    add_planner_arguments(plan_cmd, include_plan_out=False)
    command(
        "engines",
        "list registered experiment engines and their declared capabilities",
    )

    tele = command("telemetry", "render the last campaign's telemetry report")
    tele.add_argument(
        "--trace-out",
        metavar="FILE",
        help="also write the span records as Chrome trace_event JSON "
        "(open in Perfetto: https://ui.perfetto.dev)",
    )

    impact = command("impact", "probe one application's signature")
    impact.add_argument("app", help="application name (fftw, lulesh, mcb, milc, vpfft, amg)")

    command("fig3", "probe latency distributions (idle + all apps)")
    command("fig6", "CompressionB switch-utilization catalog")
    command("fig7", "per-app degradation vs utilization curves")
    command("table1", "measured pairwise slowdowns")
    command("fig8", "per-pairing prediction errors of all models")
    command("fig9", "quartile error summary per model")
    command("report", "everything: table1 + fig6-9 summaries")

    predict = command("predict", "predict one pairing with all models")
    predict.add_argument("app", help="the application whose slowdown is predicted")
    predict.add_argument("other", help="its co-runner")
    predict.add_argument(
        "--model",
        dest="artifact",
        metavar="FILE",
        help="predict from a fitted-model artifact (see `repro fit`) instead "
        "of the campaign cache; skips the measured-slowdown line",
    )

    fit = command("fit", "export the fitted-model artifact for serving")
    fit.add_argument(
        "--out",
        default="model.json",
        metavar="FILE",
        help="artifact path (checksummed JSON; default model.json)",
    )

    fit.add_argument(
        "--registry",
        dest="registry",
        metavar="DIR",
        help="also publish the artifact into this model registry as a new "
        "immutable version (does not move the CURRENT pointer; promote "
        "explicitly with `repro registry promote`)",
    )

    serve = command("serve", "serve batch predictions over HTTP")
    serve.add_argument(
        "--model",
        dest="artifact",
        metavar="FILE",
        help="fitted-model artifact to serve (default: fit from the cache)",
    )
    serve.add_argument(
        "--registry",
        dest="registry",
        metavar="DIR",
        help="serve the registry's CURRENT version and hot-reload on "
        "promotion/rollback (mutually exclusive with --model)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=8100, help="bind port (default 8100; 0 = ephemeral)"
    )
    serve.add_argument(
        "--reload-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="registry CURRENT-pointer poll interval (default 1.0)",
    )
    serve.add_argument(
        "--http-workers",
        type=int,
        default=1,
        metavar="N",
        help="pre-forked server processes sharing the port via SO_REUSEPORT "
        "(default 1 = single threaded server in this process; requires "
        "--port != 0 sources served from disk, i.e. --model or --registry)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="MS",
        help="micro-batching window in milliseconds: concurrent /predict "
        "calls inside one window are coalesced into a single "
        "predict_batch solve (default 0 = off)",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=64,
        metavar="N",
        help="max coalesced requests per micro-batch solve (default 64)",
    )
    serve.add_argument(
        "--stats-dir",
        metavar="DIR",
        help="directory for the per-shard stats rendezvous backing "
        "/metrics/fleet (default: a private temp dir when sharded, "
        "standalone fleet-of-one otherwise)",
    )
    serve.add_argument(
        "--stats-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between periodic per-shard stats publishes "
        "(default 2.0; shards also publish before answering "
        "/metrics/fleet and /healthz)",
    )

    top = command("top", "live view of a running campaign (tails telemetry.live.json)")
    top.add_argument(
        "--refresh",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between screen refreshes (default 2.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no screen clearing; for scripts/CI)",
    )

    registry_cmd = command(
        "registry",
        "manage the versioned model registry (list/publish/promote/rollback)",
    )
    registry_cmd.add_argument(
        "verb",
        choices=("list", "publish", "promote", "rollback"),
        help="list versions, publish a new immutable version, atomically "
        "promote one to CURRENT (checksum-verified first), or roll back "
        "to the previously served version",
    )
    registry_cmd.add_argument(
        "--registry",
        dest="registry",
        default="results/registry",
        metavar="DIR",
        help="registry directory (default results/registry)",
    )
    registry_cmd.add_argument(
        "--model",
        dest="artifact",
        metavar="FILE",
        help="publish: artifact file to register (default: fit from the cache)",
    )
    registry_cmd.add_argument(
        "--version",
        metavar="NAME",
        help="publish: version name (default auto vNNNN); promote: required",
    )

    profile = command("profile", "trace one application's compute/wait/sleep breakdown")
    profile.add_argument("app", help="application name")

    whatif = command(
        "whatif", "run one application on progressively weaker networks"
    )
    whatif.add_argument("app", help="application name")
    whatif.add_argument(
        "--factors",
        type=float,
        nargs="+",
        default=[1.0, 2.0, 4.0],
        help="network slowdown factors (first is the baseline)",
    )

    fabric = command(
        "fabric-report",
        "compare a fabric scenario's prediction errors to the single-switch "
        "baseline (runs both campaigns if their products are not cached)",
    )
    fabric.add_argument(
        "--out",
        metavar="FILE",
        help="also write the comparison as a JSON artifact",
    )

    return parser


def _parse_faults(spec: str):
    """Resolve a --faults SPEC into a tuple of LinkFaultConfig rules.

    Accepts a preset name from :data:`repro.cluster.FAULT_SCENARIOS`,
    inline JSON (one rule object or a list of them), or ``@path`` to a
    JSON file with the same shape.
    """
    import json as json_mod

    from .cluster import FAULT_SCENARIOS, fault_scenario
    from .config import LinkFaultConfig

    spec = spec.strip()
    if not spec:
        return ()
    if spec.startswith("@"):
        spec = Path(spec[1:]).read_text().strip()
    if spec.startswith(("[", "{")):
        data = json_mod.loads(spec)
        if isinstance(data, dict):
            data = [data]
        return tuple(LinkFaultConfig.from_dict(rule) for rule in data)
    if spec in FAULT_SCENARIOS:
        return fault_scenario(spec)
    raise SystemExit(
        f"repro: unknown fault scenario {spec!r}; "
        f"known presets: {', '.join(sorted(FAULT_SCENARIOS))} "
        "(or pass inline JSON / @file.json)"
    )


def _machine_config(args: argparse.Namespace):
    """Build the machine the common fabric flags describe."""
    from .cluster import cab_config, leaf_spine_config

    faults = _parse_faults(args.faults)
    if args.topology == "single":
        if faults:
            raise SystemExit(
                "repro: --faults requires --topology leaf-spine (a single "
                "switch has no inter-switch links to degrade)"
            )
        return cab_config(seed=args.seed)
    return leaf_spine_config(
        seed=args.seed,
        leaf_count=args.leaves,
        nodes_per_leaf=args.nodes_per_leaf,
        spine_count=args.spines,
        ecmp_seed=args.ecmp_seed,
        faults=faults,
    )


def _pipeline(
    args: argparse.Namespace, machine_config=None
) -> ReproductionPipeline:
    return ReproductionPipeline(
        settings=PipelineSettings(
            profile=args.profile, seed=args.seed, engine=args.engine
        ),
        machine_config=machine_config
        if machine_config is not None
        else _machine_config(args),
        cache_path=args.cache,
        legacy_cache=args.legacy_cache,
        workers=args.workers,
        chunksize=args.chunksize,
        retry=RetryPolicy(
            max_attempts=args.max_attempts,
            timeout=args.task_timeout,
            backoff_base=args.retry_backoff,
        ),
        failure_budget=args.failure_budget,
        verbose=True,
        telemetry=args.telemetry,
    )


def _fig3(pipeline: ReproductionPipeline) -> str:
    chunks = []
    idle = pipeline.idle_signature()
    chunks.append(
        render_histogram(
            idle.histogram.fractions, idle.histogram.edges, title="No App"
        )
    )
    for name in pipeline.app_names:
        signature = pipeline.app_impact(name).signature
        chunks.append(
            render_histogram(
                signature.histogram.fractions,
                signature.histogram.edges,
                title=f"{name} (mean {signature.mean * 1e6:.2f}µs)",
            )
        )
    return "\n\n".join(chunks)


def _fig6(pipeline: ReproductionPipeline) -> str:
    utilizations = {
        obs.label: obs.utilization for obs in pipeline.compression_signatures()
    }
    return render_fig6(utilizations)


def _fig7(pipeline: ReproductionPipeline) -> str:
    curves = {}
    signatures = {obs.label: obs for obs in pipeline.compression_signatures()}
    for name in pipeline.app_names:
        curves[name] = [
            (signatures[label].utilization, degradation)
            for label, degradation in pipeline.degradation_table()[name].items()
        ]
    return render_fig7_series(curves)


def _table1(pipeline: ReproductionPipeline) -> str:
    return render_table1(pipeline.app_names, pipeline.measured_pairs())


def _fig8(pipeline: ReproductionPipeline) -> str:
    return render_fig8(pipeline.prediction_errors(), pipeline.app_names)


def _fig9(pipeline: ReproductionPipeline) -> str:
    summaries = {
        model: summarize_errors(list(table.values()))
        for model, table in pipeline.prediction_errors().items()
    }
    return render_fig9(summaries)


def _registry_main(args: argparse.Namespace, pipeline, human) -> int:
    """The `repro registry list|publish|promote|rollback` verbs."""
    from .errors import ArtifactError, RegistryError
    from .serving import ModelRegistry, load_artifact

    registry = ModelRegistry(args.registry)
    try:
        return _registry_verb(args, pipeline, human, registry, load_artifact)
    except (RegistryError, ArtifactError) as exc:
        print(f"repro registry {args.verb}: {exc}", file=sys.stderr)
        return 1


def _registry_verb(
    args: argparse.Namespace, pipeline, human, registry, load_artifact
) -> int:
    if args.verb == "list":
        document = registry.describe()
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            if not document["versions"]:
                print(f"registry {registry.root}: no versions published")
            for row in document["versions"]:
                marker = "*" if row["current"] else " "
                print(f"{marker} {row['version']:16s} sha256={row['sha256'][:12]}…")
            if document["current"] is None:
                print("(nothing promoted yet)")
    elif args.verb == "publish":
        if getattr(args, "artifact", None):
            artifact = load_artifact(args.artifact)
        else:
            artifact = pipeline.model_artifact()
        version = registry.publish(artifact, version=args.version)
        print(
            f"published version {version} "
            f"({len(artifact.observations)} configs, "
            f"{len(artifact.signatures)} apps) in {registry.root}",
            file=human,
        )
        if args.json:
            print(json.dumps({"version": version, "root": str(registry.root)}))
    elif args.verb == "promote":
        if not args.version:
            print("repro registry promote: --version is required", file=sys.stderr)
            return 1
        registry.promote(args.version)
        print(f"promoted {args.version} to CURRENT in {registry.root}", file=human)
        if args.json:
            print(json.dumps(registry.describe(), indent=2, sort_keys=True))
    elif args.verb == "rollback":
        version, _artifact = registry.rollback()
        print(f"rolled back to {version} in {registry.root}", file=human)
        if args.json:
            print(json.dumps(registry.describe(), indent=2, sort_keys=True))
    return 0


def _top_main(args: argparse.Namespace) -> int:
    """The `repro top` command: tail ``telemetry.live.json`` as a live table."""
    import time as _time

    from .telemetry.live import LIVE_REPORT_NAME, load_live, render_top

    path = Path(args.cache) / LIVE_REPORT_NAME
    refresh = max(0.1, args.refresh)
    announced = False
    try:
        while True:
            document = load_live(path)
            if document is None:
                if args.once:
                    print(
                        f"repro top: no live document at {path} — is a "
                        "campaign running with telemetry on?",
                        file=sys.stderr,
                    )
                    return 1
                if not announced:
                    print(f"repro top: waiting for {path} ...", file=sys.stderr)
                    announced = True
                _time.sleep(refresh)
                continue
            frame = render_top(document)
            if args.once:
                print(frame, end="")
                return 0
            # ANSI clear + home keeps the table refreshing in place.
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
            sys.stdout.flush()
            if document.get("complete"):
                return 0
            _time.sleep(refresh)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _serve_main(args: argparse.Namespace, pipeline) -> int:
    """The `repro serve` command: single-process or pre-forked sharding."""
    from .serving import (
        ModelRegistry,
        PredictionServer,
        ShardedPredictionServer,
        load_artifact,
        save_artifact,
    )

    # Serving metrics are the server's access log; collect them unless
    # the user forced telemetry off.
    if args.telemetry is not False:
        telemetry_mod.enable()
    if getattr(args, "registry", None) and getattr(args, "artifact", None):
        print("repro serve: --model and --registry are mutually exclusive",
              file=sys.stderr)
        return 1
    batch_window = args.batch_window / 1000.0  # CLI takes milliseconds
    endpoints = (
        "(endpoints: /healthz /models /predict /predict/batch "
        "/metrics /metrics/fleet)"
    )

    if args.http_workers > 1:
        # Pre-forked sharding: workers re-load the source from disk, so an
        # in-memory pipeline fit must be parked in a file first.
        artifact_path = getattr(args, "artifact", None)
        registry_root = getattr(args, "registry", None)
        if not artifact_path and not registry_root:
            artifact_path = str(Path(args.cache) / "served_model.json")
            save_artifact(pipeline.model_artifact(), artifact_path)
            print(f"fitted artifact parked at {artifact_path}", file=sys.stderr)
        sharded = ShardedPredictionServer(
            artifact_path=artifact_path,
            registry_root=registry_root,
            host=args.host,
            port=args.port,
            workers=args.http_workers,
            reload_interval=args.reload_interval,
            batch_window=batch_window,
            batch_max_size=args.batch_max,
            stats_dir=args.stats_dir,
            stats_interval=args.stats_interval,
        )
        sharded.start()
        print(
            f"serving on http://{args.host}:{sharded.port} across "
            f"{args.http_workers} SO_REUSEPORT shards "
            f"(fleet stats dir: {sharded.stats_dir}) {endpoints}",
            file=sys.stderr,
            flush=True,
        )
        try:
            while sharded.alive():
                import time as _time

                _time.sleep(1.0)
            print("all serving shards exited", file=sys.stderr)
            return 1
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
        finally:
            sharded.stop()

    if getattr(args, "registry", None):
        from .errors import ArtifactError, RegistryError

        try:
            server = PredictionServer(
                registry=ModelRegistry(args.registry),
                host=args.host,
                port=args.port,
                reload_interval=args.reload_interval,
                batch_window=batch_window,
                batch_max_size=args.batch_max,
                stats_dir=args.stats_dir,
                stats_interval=args.stats_interval,
            )
        except (RegistryError, ArtifactError) as exc:
            print(f"repro serve: {exc}", file=sys.stderr)
            return 1
    else:
        if getattr(args, "artifact", None):
            artifact = load_artifact(args.artifact)
        else:
            artifact = pipeline.model_artifact()
        server = PredictionServer(
            artifact,
            host=args.host,
            port=args.port,
            batch_window=batch_window,
            batch_max_size=args.batch_max,
            stats_dir=args.stats_dir,
            stats_interval=args.stats_interval,
        )
    state = server.state
    print(
        f"serving version {state.version}: {len(state.artifact.signatures)} "
        f"apps × {len(state.engine.model_names)} models on "
        f"http://{server.server_address[0]}:{server.server_port} {endpoints}",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    for key, value in _COMMON_DEFAULTS.items():
        if not hasattr(args, key):
            setattr(args, key, value)
    if args.telemetry is True:
        telemetry_mod.enable()
    elif args.telemetry is False:
        telemetry_mod.disable()
    if args.log is not None:
        telemetry_mod.logs.configure(args.log)
    # Artifact-backed predict/serve, the registry listing, and `repro top`
    # never touch the cache: skip building the pipeline entirely, so they
    # neither create the cache directory nor trigger the legacy-cache
    # migration (`top` only reads the live file's path).
    cache_free = (
        args.command in ("engines", "top")
        or (args.command in ("predict", "serve") and getattr(args, "artifact", None))
        or (args.command == "serve" and getattr(args, "registry", None))
        or (
            args.command == "registry"
            and (args.verb != "publish" or getattr(args, "artifact", None))
        )
    )
    pipeline = None if cache_free else _pipeline(args)
    # With --json, stdout carries only the JSON document; human summaries
    # join the progress lines on stderr.
    human = sys.stderr if args.json else sys.stdout

    if args.command == "engines":
        from .analysis import engine_catalog, render_engine_catalog

        catalog = engine_catalog()
        if args.json:
            print(json.dumps(catalog, indent=2, sort_keys=True))
        else:
            print(render_engine_catalog(catalog))
        return 0

    if args.command == "campaign" and getattr(args, "planner", None):
        from .planner import CostModel, PlannedCampaign, get_planner

        cost_model = (
            CostModel.from_telemetry_report(args.cost_from, pipeline.settings)
            if args.cost_from
            else None
        )
        campaign = PlannedCampaign(
            pipeline,
            get_planner(args.planner, labels_per_round=args.labels_per_round),
            measurement_budget=args.measurement_budget,
            max_rounds=args.max_rounds,
            cost_model=cost_model,
        )
        result = campaign.run()
        final = result.final_error
        print(
            f"planned campaign ({args.planner}) done: {result.executed} "
            f"executed, {result.cached} cached, {result.skipped} skipped, "
            f"{result.failed} failed of {result.total_products} total "
            f"products in {len(result.rounds)} round(s) "
            f"({result.stop_reason}); "
            f"budget spent {result.budget_spent:.3f}s"
            + (f" of {result.budget:.3f}s" if result.budget is not None else "")
            + (
                f"; holdout error {final:.2f} points"
                if final is not None
                else "; no holdout error available"
            )
            + f"; cache at {pipeline.cache_path}",
            file=human,
        )
        if args.plan_out:
            Path(args.plan_out).write_text(
                json.dumps(result.trace_document(), indent=2, sort_keys=True)
                + "\n"
            )
            print(f"plan trace written to {args.plan_out}", file=human)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        # Mirror the exhaustive campaign's exit semantics: refusals are
        # documented limits, infrastructure holes are failures.
        if result.failed > result.unsupported:
            return 2
        return 0

    if args.command == "plan":
        from .planner import CostModel

        cost_model = (
            CostModel.from_telemetry_report(args.cost_from, pipeline.settings)
            if args.cost_from
            else CostModel.from_settings(pipeline.settings)
        )
        raw_keys = [
            key.rsplit(":", 1)[-1] for key in pipeline.product_keys()
        ]
        pending = [raw for raw in raw_keys if not pipeline.has_product(raw)]
        budget = args.measurement_budget
        by_kind: dict = {}
        for raw in pending:
            kind = raw.split("/", 1)[0]
            entry = by_kind.setdefault(
                kind, {"count": 0, "unit_cost": cost_model.cost_of(raw), "cost": 0.0}
            )
            entry["count"] += 1
            entry["cost"] += cost_model.cost_of(raw)
        total_cost = sum(entry["cost"] for entry in by_kind.values())
        admitted = len(pending)
        if budget is not None:
            spent = 0.0
            admitted = 0
            for raw in pending:
                cost = cost_model.cost_of(raw)
                if spent + cost <= budget + 1e-9:
                    spent += cost
                    admitted += 1
        document = {
            "planner": args.planner or "uncertainty",
            "cost_model": cost_model.to_dict(),
            "total_products": len(raw_keys),
            "cached": len(raw_keys) - len(pending),
            "pending": len(pending),
            "estimated_cost": total_cost,
            "budget": budget,
            "budget_admits": admitted,
            "by_kind": by_kind,
        }
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(
                f"plan preview (cost estimates from {cost_model.source}): "
                f"{len(pending)} pending of {len(raw_keys)} products, "
                f"estimated {total_cost:.3f} experiment-seconds"
            )
            for kind in sorted(by_kind):
                entry = by_kind[kind]
                print(
                    f"  {kind:12s} {entry['count']:4d} × "
                    f"{entry['unit_cost']:.4f}s = {entry['cost']:.3f}s"
                )
            if budget is not None:
                print(
                    f"  a budget of {budget:.3f}s admits {admitted} of "
                    f"{len(pending)} pending experiments up front "
                    "(an adaptive campaign re-plans each round, so its "
                    "selection will differ)"
                )
        return 0

    if args.command == "campaign":
        stats = pipeline.ensure_all()
        print(
            f"campaign done: {stats['executed']} executed, "
            f"{stats['cached']} cached, {stats['failed']} failed, "
            f"{stats['total']} total products "
            f"in {stats['elapsed']:.1f}s with {stats['workers']} worker(s); "
            f"cache at {pipeline.cache_path}",
            file=human,
        )
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        if stats["failed"]:
            unsupported = stats.get("unsupported", 0)
            note = (
                f" ({unsupported} unsupported by engine {args.engine!r})"
                if unsupported
                else ""
            )
            print(
                f"warning: campaign finished with {stats['failed']} hole(s)"
                f"{note}; see {stats['failure_report']}",
                file=human,
            )
            # Model refusals are documented limits, not failures: only
            # infrastructure holes make the campaign exit non-zero.
            if stats["failed"] > unsupported:
                return 2
    elif args.command == "telemetry":
        from .telemetry.report import (
            TELEMETRY_REPORT_NAME,
            load_report,
            render_report,
            trace_from_report,
        )

        path = (
            pipeline.cache_path / TELEMETRY_REPORT_NAME
            if pipeline.cache_path is not None
            else None
        )
        if path is None or not path.exists():
            print(
                f"no telemetry report at {path}; "
                "run `repro campaign --telemetry` first",
                file=sys.stderr,
            )
            return 1
        document = load_report(path)
        if args.trace_out:
            trace = trace_from_report(document)
            Path(args.trace_out).write_text(json.dumps(trace) + "\n")
            print(
                f"wrote Chrome trace ({len(trace['traceEvents'])} events) to "
                f"{args.trace_out} — open in https://ui.perfetto.dev",
                file=sys.stderr,
            )
        if args.json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(render_report(document))
    elif args.command == "calibrate":
        estimate = pipeline.calibration()
        print(
            f"idle service estimate: mean={estimate.mean * 1e6:.3f}µs "
            f"(µ={estimate.rate:.3e}/s) var={estimate.variance:.3e}s² "
            f"scv={estimate.scv:.2f} n={estimate.sample_count}"
        )
    elif args.command == "impact":
        result = pipeline.app_impact(args.app)
        signature = result.signature
        print(
            f"{args.app}: probe mean={signature.mean * 1e6:.2f}µs "
            f"std={signature.std * 1e6:.2f}µs "
            f"utilization(P-K)={signature.utilization * 100:.1f}% "
            f"true={result.true_utilization * 100:.1f}%"
        )
    elif args.command == "fig3":
        print(_fig3(pipeline))
    elif args.command == "fig6":
        print(_fig6(pipeline))
    elif args.command == "fig7":
        print(_fig7(pipeline))
    elif args.command == "table1":
        print(_table1(pipeline))
    elif args.command == "fig8":
        print(_fig8(pipeline))
    elif args.command == "fig9":
        print(_fig9(pipeline))
    elif args.command == "report":
        from .analysis import full_report

        print(full_report(pipeline))
    elif args.command == "predict":
        if getattr(args, "artifact", None):
            # Serving path: everything comes from the artifact, no cache —
            # there is no measured slowdown to compare against.
            from .serving import load_artifact

            engine = load_artifact(args.artifact).engine()
        else:
            engine = pipeline.engine()
            measured = pipeline.pair_slowdown(args.app, args.other)
            print(f"measured: {measured:.1f}%")
        for prediction in engine.predict_pair(args.app, args.other):
            print(f"{prediction.model:16s} predicted {prediction.predicted:6.1f}%")
    elif args.command == "fit":
        from .serving import ModelRegistry, save_artifact

        artifact = pipeline.model_artifact()
        path = save_artifact(artifact, args.out)
        print(
            f"wrote fitted-model artifact ({len(artifact.observations)} configs, "
            f"{len(artifact.signatures)} apps) to {path}",
            file=human,
        )
        version = None
        if getattr(args, "registry", None):
            version = ModelRegistry(args.registry).publish(artifact)
            print(
                f"published as version {version} in {args.registry} "
                f"(promote with `repro registry promote --registry "
                f"{args.registry} --version {version}`)",
                file=human,
            )
        if args.json:
            print(
                json.dumps(
                    {
                        "path": str(path),
                        "metadata": artifact.metadata,
                        "version": version,
                    }
                )
            )
    elif args.command == "registry":
        return _registry_main(args, pipeline, human)
    elif args.command == "serve":
        return _serve_main(args, pipeline)
    elif args.command == "top":
        return _top_main(args)
    elif args.command == "profile":
        from .core.experiments.catalog import paper_applications
        from .trace import profile_workload, render_profile

        apps = paper_applications()
        if args.app not in apps:
            print(f"unknown application {args.app!r}; choose from {sorted(apps)}")
            return 1
        profile = profile_workload(pipeline.machine_config, apps[args.app])
        print(render_profile(profile))
    elif args.command == "whatif":
        from .core.experiments import network_scaling_study
        from .core.experiments.catalog import paper_applications

        apps = paper_applications()
        if args.app not in apps:
            print(f"unknown application {args.app!r}; choose from {sorted(apps)}")
            return 1
        points = network_scaling_study(
            pipeline.machine_config, apps[args.app], factors=args.factors
        )
        print(f"{args.app} on progressively weaker networks:")
        for point in points:
            print(
                f"  {point.factor:5.1f}x slower network: "
                f"{point.elapsed * 1e3:8.2f}ms  ({point.slowdown_percent:+.1f}%)"
            )
    elif args.command == "fabric-report":
        from .analysis import (
            fabric_comparison,
            render_fabric_comparison,
            write_fabric_report,
        )
        from .cluster import cab_config

        if args.topology == "single":
            print(
                "repro fabric-report: pass --topology leaf-spine (and "
                "optionally --faults) to describe the fabric scenario",
                file=sys.stderr,
            )
            return 1
        baseline = _pipeline(args, machine_config=cab_config(seed=args.seed))
        for side, pipe in (("baseline", baseline), ("fabric", pipeline)):
            pending = len(pipe.pending_keys())
            if pending:
                print(
                    f"[fabric-report] {side}: {pending} products pending, running…",
                    file=sys.stderr,
                )
            pipe.ensure_all()
        comparison = fabric_comparison(baseline, pipeline)
        print(render_fabric_comparison(comparison), file=human)
        if args.out:
            path = write_fabric_report(comparison, args.out)
            print(f"wrote fabric comparison to {path}", file=sys.stderr)
        if args.json:
            print(
                json.dumps(
                    {
                        "baseline_tag": comparison["baseline_tag"],
                        "fabric_tag": comparison["fabric_tag"],
                        "delta": comparison["delta"],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
