"""Fault-tolerant parallel experiment driver (process pool with retry/timeout)."""

from .runner import (
    RetryPolicy,
    RunReport,
    default_worker_count,
    map_experiments,
    run_tasks,
)

__all__ = [
    "map_experiments",
    "run_tasks",
    "default_worker_count",
    "RetryPolicy",
    "RunReport",
]
