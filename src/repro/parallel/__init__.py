"""Parallel experiment driver (process-pool map with serial fallback)."""

from .runner import default_worker_count, map_experiments

__all__ = ["map_experiments", "default_worker_count"]
