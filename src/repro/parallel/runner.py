"""Parallel experiment execution.

The reproduction campaign is embarrassingly parallel: every experiment
builds its own machine and shares nothing.  :func:`map_experiments` runs a
pure function over experiment descriptors with an optional process pool —
on multi-core hosts the 330-run campaign scales nearly linearly; on a single
core it degrades gracefully to a serial loop.

Functions and items must be picklable (top-level functions, dataclass
configs) for the process-pool path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["map_experiments", "default_worker_count"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def default_worker_count() -> int:
    """Workers to use by default: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 1) - 1)


def map_experiments(
    function: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int] = None,
    chunksize: int = 1,
    on_result: Optional[Callable[[ResultT], None]] = None,
) -> List[ResultT]:
    """Apply ``function`` to every item, possibly in parallel.

    Args:
        function: pure experiment function (must be picklable for workers>1).
        items: experiment descriptors.
        workers: process count; ``None`` → :func:`default_worker_count`;
            ``1`` (or a single-core host) → serial in-process execution.
        chunksize: items per task submission (larger amortizes IPC for many
            small experiments).
        on_result: optional callback invoked in the driver process with each
            result *as it lands*, in item order — the hook the pipeline uses
            for incremental shard flushing and progress reporting.

    Returns:
        Results in item order.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    count = workers if workers is not None else default_worker_count()
    results: List[ResultT] = []
    if count == 1 or len(items) <= 1:
        for item in items:
            value = function(item)
            if on_result is not None:
                on_result(value)
            results.append(value)
        return results
    with ProcessPoolExecutor(max_workers=count) as pool:
        for value in pool.map(function, items, chunksize=chunksize):
            if on_result is not None:
                on_result(value)
            results.append(value)
    return results
