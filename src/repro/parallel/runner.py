"""Fault-tolerant parallel experiment execution.

The reproduction campaign is embarrassingly parallel: every experiment
builds its own machine and shares nothing.  :func:`run_tasks` runs a pure
function over task items with per-task future scheduling and a
:class:`RetryPolicy` — bounded retries with exponential backoff and
deterministic jitter, a per-task timeout that kills and recycles hung
workers, and recovery from a broken process pool (respawn, requeue the
in-flight items).  A task that exhausts its attempts becomes a structured
:class:`~repro.errors.FailureRecord` instead of taking the campaign down.

:func:`map_experiments` is the simple all-or-nothing facade kept for callers
that want the old ``pool.map`` semantics (results in item order, first
failure raises).

Functions and items must be picklable (top-level functions, dataclass
configs) for the process-pool path.
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .. import faults, telemetry
from ..telemetry import logs
from ..errors import (
    ConfigurationError,
    ExperimentError,
    FailureRecord,
    classify_failure_message,
)

__all__ = [
    "map_experiments",
    "run_tasks",
    "default_worker_count",
    "RetryPolicy",
    "RunReport",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def _available_cpu_count() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count()`` reports the machine's cores, which overcounts under
    CPU affinity masks and cgroup CPU sets (CI containers, ``taskset``,
    k8s limits); the scheduler affinity mask is the honest number where the
    platform exposes it.
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return len(getter(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def default_worker_count() -> int:
    """Workers to use by default: all usable cores but one, at least 1."""
    return max(1, _available_cpu_count() - 1)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring one task permanently failed.

    Attributes:
        max_attempts: total attempts per task (1 = no retry; the default 2
            preserves the campaign's historical retry-once behavior).
        timeout: per-task wall-clock budget in seconds; ``None`` disables
            timeouts.  Enforced only on the pool path — a hung task's worker
            is killed, the pool respawned, and the task retried.  (With
            ``workers=1`` a configured timeout forces a single-worker pool so
            it can still be enforced.)
        backoff_base: sleep before the second attempt, in seconds.
        backoff_factor: multiplier per further attempt (exponential).
        backoff_max: backoff ceiling in seconds.
        jitter: fractional jitter added to each backoff, derived
            deterministically from ``(task key, attempt)`` so reruns behave
            identically.
        max_respawns: how many times the process pool may be rebuilt (after
            crashes or timeout kills) before the run aborts.
    """

    max_attempts: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    max_respawns: int = 5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ConfigurationError("invalid backoff parameters")
        if not 0 <= self.jitter <= 1:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (2-based).

        Exponential in the attempt number with a deterministic jitter seeded
        from ``(key, attempt)``: two runs of the same campaign back off
        identically, but different tasks desynchronize.
        """
        if self.backoff_base == 0:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** max(0, attempt - 2)
        unit = random.Random(f"{key}:{attempt}").random()
        return min(self.backoff_max, raw * (1.0 + self.jitter * unit))


@dataclass
class RunReport:
    """Outcome of one :func:`run_tasks` call.

    Attributes:
        results: per-item results in item order; ``None`` where the task
            failed permanently or was skipped for budget (check ``failures``
            / ``skipped`` to distinguish a ``None`` result from a hole).
        failures: terminal :class:`~repro.errors.FailureRecord` s.
        transients: attempt-level failures that were later retried
            (successfully or not) — the observability trail of the retry
            machinery.
        pool_respawns: times the process pool was rebuilt.
        skipped: keys of tasks never scheduled because their estimated cost
            did not fit the remaining measurement budget (in item order).
        budget_spent: estimated cost charged against the budget — admitted
            tasks' costs minus any refunds.
        budget_refunded: cost given back for tasks that turned out to be
            deterministic model refusals (``unsupported``): a refusal is
            free knowledge, not a spent experiment.
    """

    results: List[Optional[object]] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    transients: List[FailureRecord] = field(default_factory=list)
    pool_respawns: int = 0
    skipped: List[str] = field(default_factory=list)
    budget_spent: float = 0.0
    budget_refunded: float = 0.0


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_chunk(
    function: Callable[[ItemT], ResultT],
    entries: List[Tuple[int, str, int, ItemT]],
    capture_telemetry: bool = False,
) -> Tuple[List[Tuple[int, Optional[ResultT], Optional[str]]], Optional[dict]]:
    """Worker entry point: run a chunk of ``(index, key, attempt, item)``.

    Per-item exceptions are captured as strings so one bad experiment never
    poisons its chunk-mates or the pool; only a hard process death (crash
    fault, segfault, OOM) escapes, surfacing driver-side as a broken pool.

    Returns ``(outcomes, telemetry_payload)``.  With ``capture_telemetry``
    the worker's registry/tracer are reset at chunk start (discarding any
    state inherited from a fork) and their delta — per-task spans plus
    whatever the task function itself recorded — is snapshotted into the
    envelope for the driver to merge; otherwise the payload is ``None``.
    """
    if capture_telemetry:
        telemetry.enable()
        telemetry.reset()
    outcomes: List[Tuple[int, Optional[ResultT], Optional[str]]] = []
    for index, key, attempt, item in entries:
        faults.set_current_attempt(attempt)
        try:
            with telemetry.span(f"task:{key}", "runner", attempt=attempt):
                outcomes.append((index, function(item), None))
        except Exception as exc:
            outcomes.append((index, None, f"{type(exc).__name__}: {exc}"))
        finally:
            faults.set_current_attempt(1)
    payload = telemetry.snapshot() if capture_telemetry else None
    return outcomes, payload


# ----------------------------------------------------------------------
# Driver-side telemetry & structured task lifecycle log
# ----------------------------------------------------------------------
def _record_task_scheduled(key: str, attempt: int) -> None:
    if logs.enabled():
        logs.log_event("runner.task_scheduled", key=key, attempt=attempt)


def _record_task_landed(key: str, attempt: int, elapsed: float) -> None:
    if telemetry.enabled():
        registry = telemetry.registry()
        registry.counter_inc("runner.tasks_completed")
        registry.observe("runner.task_seconds", elapsed)
    if logs.enabled():
        logs.log_event(
            "runner.task_completed",
            key=key,
            attempt=attempt,
            seconds=round(elapsed, 6),
        )


def _record_attempt_failure(
    key: str,
    category: str,
    terminal: bool,
    attempt: int,
    message: str,
    delay: float = 0.0,
) -> None:
    """Count one failed attempt: terminal hole vs retried transient.

    With structured logging on, the same bookkeeping emits
    ``runner.task_failed`` / ``runner.task_retry`` events keyed by the
    experiment descriptor (timeout kills arrive with
    ``category="timeout"``), so a fleet log join reconstructs every task's
    attempt history.
    """
    if logs.enabled():
        if terminal:
            logs.log_event(
                "runner.task_failed",
                key=key,
                category=category,
                attempts=attempt,
                message=message,
            )
        else:
            logs.log_event(
                "runner.task_retry",
                key=key,
                category=category,
                attempt=attempt,
                delay=round(delay, 3),
                message=message,
            )
    if not telemetry.enabled():
        return
    registry = telemetry.registry()
    if terminal:
        registry.counter_inc("runner.tasks_failed", category=category)
    else:
        registry.counter_inc("runner.tasks_retried", category=category)
        if delay > 0:
            registry.counter_inc("runner.backoff_sleeps")
            registry.counter_inc("runner.backoff_seconds", delay)
    if category == "timeout":
        registry.counter_inc("runner.timeouts")


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
@dataclass
class _Task:
    """Driver-side state of one item across its attempts."""

    index: int
    key: str
    item: object
    attempt: int = 1
    started: float = 0.0
    cost: float = 0.0


class _Scheduler:
    """Per-task future scheduling with retry, timeout, and pool recovery."""

    def __init__(
        self,
        function: Callable,
        tasks: List[_Task],
        workers: int,
        chunksize: int,
        policy: RetryPolicy,
        on_result: Optional[Callable[[int, str, object], None]],
        report: Optional[RunReport] = None,
    ) -> None:
        self.function = function
        self.tasks = {task.index: task for task in tasks}
        self.workers = workers
        self.chunksize = chunksize
        self.policy = policy
        self.on_result = on_result
        self.report = report if report is not None else RunReport(results=[None] * len(tasks))
        # ready: chunks runnable now; waiting: (ready_at, chunk) backoff queue.
        self.ready: deque = deque()
        self.waiting: List[Tuple[float, List[_Task]]] = []
        for start in range(0, len(tasks), chunksize):
            self.ready.append(tasks[start : start + chunksize])
        self.in_flight: Dict[Future, Tuple[List[_Task], Optional[float]]] = {}
        self.pool: Optional[ProcessPoolExecutor] = None
        # Decided once in the driver: workers only pay for telemetry capture
        # (and ship snapshot envelopes back) when the campaign asked for it.
        self.capture_telemetry = telemetry.enabled()

    # -- pool lifecycle -------------------------------------------------
    def _spawn_pool(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=self.workers)

    def _respawn_pool(self) -> None:
        self.report.pool_respawns += 1
        if telemetry.enabled():
            telemetry.registry().counter_inc("runner.pool_respawns")
        if self.report.pool_respawns > self.policy.max_respawns:
            raise ExperimentError(
                f"process pool broke {self.report.pool_respawns} times "
                f"(max_respawns={self.policy.max_respawns}); aborting — "
                "the environment, not individual experiments, is failing"
            )
        if self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)
        self._spawn_pool()

    def _kill_pool_processes(self) -> None:
        """Terminate the pool's workers (the only way to stop a hung task)."""
        assert self.pool is not None
        processes = getattr(self.pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()

    # -- outcome bookkeeping --------------------------------------------
    def _land(self, task: _Task, value: object) -> None:
        self.report.results[task.index] = value
        elapsed = time.monotonic() - task.started if task.started else 0.0
        _record_task_landed(task.key, task.attempt, elapsed)
        if self.on_result is not None:
            self.on_result(task.index, task.key, value)
        del self.tasks[task.index]

    def _fail_attempt(self, task: _Task, category: str, message: str) -> None:
        """Charge one failed attempt; requeue with backoff or record the hole.

        ``unsupported`` failures (deterministic model refusals) go terminal
        on the first attempt — retrying a deterministic refusal can only
        waste the retry budget's wall clock.
        """
        elapsed = time.monotonic() - task.started if task.started else 0.0
        record = FailureRecord(
            key=task.key,
            category=category,
            message=message,
            attempts=task.attempt,
            elapsed=elapsed,
        )
        if task.attempt >= self.policy.max_attempts or category == "unsupported":
            self.report.failures.append(record)
            if category == "unsupported":
                _refund_cost(self.report, task)
            _record_attempt_failure(
                task.key, category, terminal=True, attempt=task.attempt, message=message
            )
            del self.tasks[task.index]
            return
        self.report.transients.append(record)
        delay = self.policy.backoff_delay(task.key, task.attempt + 1)
        _record_attempt_failure(
            task.key,
            category,
            terminal=False,
            attempt=task.attempt,
            message=message,
            delay=delay,
        )
        task.attempt += 1
        self.waiting.append((time.monotonic() + delay, [task]))

    def _requeue(self, tasks: List[_Task]) -> None:
        """Put innocent (killed-through-no-fault) tasks back, uncharged."""
        live = [task for task in tasks if task.index in self.tasks]
        if live:
            self.ready.append(live)

    # -- main loop -------------------------------------------------------
    def run(self) -> RunReport:
        self._spawn_pool()
        try:
            while self.ready or self.waiting or self.in_flight:
                self._promote_waiting()
                self._submit_ready()
                if not self.in_flight:
                    self._sleep_until_next_waiting()
                    continue
                self._collect()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
        return self.report

    def _promote_waiting(self) -> None:
        now = time.monotonic()
        still_waiting = []
        for ready_at, chunk in self.waiting:
            if ready_at <= now:
                self.ready.append(chunk)
            else:
                still_waiting.append((ready_at, chunk))
        self.waiting = still_waiting

    def _submit_ready(self) -> None:
        while self.ready and len(self.in_flight) < self.workers:
            chunk = [task for task in self.ready.popleft() if task.index in self.tasks]
            if not chunk:
                continue
            now = time.monotonic()
            for task in chunk:
                task.started = now
                _record_task_scheduled(task.key, task.attempt)
            entries = [
                (task.index, task.key, task.attempt, task.item) for task in chunk
            ]
            try:
                future = self.pool.submit(
                    _run_chunk, self.function, entries, self.capture_telemetry
                )
            except BrokenProcessPool:
                self.ready.appendleft(chunk)
                self._recover_from_broken_pool()
                continue
            deadline = (
                now + self.policy.timeout * len(chunk)
                if self.policy.timeout is not None
                else None
            )
            self.in_flight[future] = (chunk, deadline)

    def _sleep_until_next_waiting(self) -> None:
        if not self.waiting:
            return
        delay = min(ready_at for ready_at, _ in self.waiting) - time.monotonic()
        if delay > 0:
            time.sleep(min(delay, 0.5))

    def _collect(self) -> None:
        now = time.monotonic()
        timeout = None
        deadlines = [dl for _, dl in self.in_flight.values() if dl is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        if self.waiting:
            next_ready = min(ready_at for ready_at, _ in self.waiting) - now
            timeout = max(0.0, next_ready) if timeout is None else min(timeout, max(0.0, next_ready))
        done, _ = wait(list(self.in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
        if done:
            self._process_done(done)
        else:
            self._enforce_timeouts()

    def _chunk_outcomes(self, future: Future) -> List[Tuple[int, object, Optional[str]]]:
        """Unpack a finished chunk envelope, folding its telemetry delta in."""
        outcomes, payload = future.result()
        telemetry.merge_worker(payload)
        return outcomes

    def _process_done(self, done) -> None:
        broken = False
        for future in done:
            chunk, _deadline = self.in_flight.pop(future)
            exc = future.exception()
            if exc is None:
                for index, value, error in self._chunk_outcomes(future):
                    task = self.tasks.get(index)
                    if task is None:
                        continue
                    if error is None:
                        self._land(task, value)
                    else:
                        self._fail_attempt(task, classify_failure_message(error), error)
            elif isinstance(exc, BrokenProcessPool):
                broken = True
                for task in chunk:
                    if task.index in self.tasks:
                        self._fail_attempt(
                            task, "worker-crash", f"{type(exc).__name__}: {exc}"
                        )
            else:
                # Driver-side failure (e.g. unpicklable result): charge it.
                for task in chunk:
                    if task.index in self.tasks:
                        self._fail_attempt(
                            task, "exception", f"{type(exc).__name__}: {exc}"
                        )
        if broken:
            self._recover_from_broken_pool()

    def _recover_from_broken_pool(self) -> None:
        """Drain doomed futures, charge crash attempts, respawn the pool.

        Once the pool is broken every in-flight future completes (with
        ``BrokenProcessPool``) almost immediately; the culprit is not
        identifiable, so every in-flight task is charged one
        ``worker-crash`` attempt.
        """
        for future, (chunk, _deadline) in list(self.in_flight.items()):
            exc = future.exception()  # blocks briefly; broken futures resolve fast
            del self.in_flight[future]
            if exc is None:
                for index, value, error in self._chunk_outcomes(future):
                    task = self.tasks.get(index)
                    if task is None:
                        continue
                    if error is None:
                        self._land(task, value)
                    else:
                        self._fail_attempt(task, classify_failure_message(error), error)
            else:
                for task in chunk:
                    if task.index in self.tasks:
                        self._fail_attempt(
                            task, "worker-crash", f"{type(exc).__name__}: {exc}"
                        )
        self._respawn_pool()

    def _enforce_timeouts(self) -> None:
        now = time.monotonic()
        guilty = {
            future
            for future, (_chunk, deadline) in self.in_flight.items()
            if deadline is not None and now >= deadline
        }
        if not guilty:
            return
        # A running future cannot be cancelled: kill the workers, which
        # breaks the pool, then sort the wreckage — the timed-out chunk is
        # charged a timeout attempt, bystanders are requeued uncharged, and
        # anything that squeaked through before the kill still lands.
        self._kill_pool_processes()
        for future, (chunk, _deadline) in list(self.in_flight.items()):
            exc = future.exception()  # wait for the break to propagate
            del self.in_flight[future]
            if exc is None:
                for index, value, error in self._chunk_outcomes(future):
                    task = self.tasks.get(index)
                    if task is None:
                        continue
                    if error is None:
                        self._land(task, value)
                    else:
                        self._fail_attempt(task, classify_failure_message(error), error)
            elif future in guilty:
                for task in chunk:
                    if task.index in self.tasks:
                        self._fail_attempt(
                            task,
                            "timeout",
                            f"exceeded the {self.policy.timeout}s task timeout; "
                            "worker killed",
                        )
            else:
                self._requeue(chunk)
        self._respawn_pool()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _refund_cost(report: RunReport, task: _Task) -> None:
    """Give a deterministic refusal's estimated cost back to the budget."""
    if task.cost <= 0:
        return
    report.budget_spent -= task.cost
    report.budget_refunded += task.cost
    if telemetry.enabled():
        telemetry.registry().counter_inc("runner.budget_refunded", task.cost)


def _admit_for_budget(
    tasks: List[_Task], budget: Optional[float], report: RunReport
) -> List[_Task]:
    """Budget admission control: the scheduling half of the planner seam.

    Tasks are admitted in item order while their estimated cost still fits
    the remaining budget; a task that does not fit is recorded in
    ``report.skipped`` (later, cheaper tasks may still be admitted).  The
    decision is made once, up front, from the deterministic cost estimates
    — never from wall-clock measurements or completion order — so the same
    items, costs, and budget always admit the same subset, whatever the
    worker count.  With ``budget=None`` every task is admitted and
    ``budget_spent`` simply accumulates the estimated costs.
    """
    admitted: List[_Task] = []
    for task in tasks:
        if budget is not None and report.budget_spent + task.cost > budget + 1e-9:
            report.skipped.append(task.key)
            continue
        admitted.append(task)
        report.budget_spent += task.cost
    if report.skipped and telemetry.enabled():
        telemetry.registry().counter_inc(
            "runner.tasks_skipped", float(len(report.skipped)), reason="budget"
        )
    return admitted


def _run_serial(
    function: Callable[[ItemT], ResultT],
    tasks: List[_Task],
    policy: RetryPolicy,
    on_result: Optional[Callable[[int, str, object], None]],
    report: Optional[RunReport] = None,
) -> RunReport:
    if report is None:
        report = RunReport(results=[None] * len(tasks))
    for task in tasks:
        while True:
            faults.set_current_attempt(task.attempt)
            task.started = time.monotonic()
            _record_task_scheduled(task.key, task.attempt)
            try:
                with telemetry.span(f"task:{task.key}", "runner", attempt=task.attempt):
                    value = function(task.item)  # type: ignore[arg-type]
            except Exception as exc:
                message = f"{type(exc).__name__}: {exc}"
                category = classify_failure_message(message)
                record = FailureRecord(
                    key=task.key,
                    category=category,
                    message=message,
                    attempts=task.attempt,
                    elapsed=time.monotonic() - task.started,
                )
                if task.attempt >= policy.max_attempts or category == "unsupported":
                    report.failures.append(record)
                    if category == "unsupported":
                        _refund_cost(report, task)
                    _record_attempt_failure(
                        task.key,
                        category,
                        terminal=True,
                        attempt=task.attempt,
                        message=message,
                    )
                    break
                report.transients.append(record)
                task.attempt += 1
                delay = policy.backoff_delay(task.key, task.attempt)
                _record_attempt_failure(
                    task.key,
                    category,
                    terminal=False,
                    attempt=task.attempt - 1,
                    message=message,
                    delay=delay,
                )
                if delay > 0:
                    time.sleep(delay)
                continue
            finally:
                faults.set_current_attempt(1)
            report.results[task.index] = value
            _record_task_landed(
                task.key, task.attempt, time.monotonic() - task.started
            )
            if on_result is not None:
                on_result(task.index, task.key, value)
            break
    return report


def run_tasks(
    function: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    keys: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    chunksize: int = 1,
    policy: Optional[RetryPolicy] = None,
    on_result: Optional[Callable[[int, str, object], None]] = None,
    costs: Optional[Sequence[float]] = None,
    budget: Optional[float] = None,
) -> RunReport:
    """Run ``function`` over ``items`` fault-tolerantly; never raises per-task.

    Args:
        function: pure task function (must be picklable for workers > 1).
        items: task inputs.
        keys: stable per-item labels used in failure records, fault matching,
            and backoff jitter (default: the item's index as a string).
        workers: process count; ``None`` → :func:`default_worker_count`;
            ``1`` runs serially in-process **unless** the policy sets a
            timeout (timeouts need a killable worker, so a single-worker
            pool is used instead).
        chunksize: items per pool submission (amortizes IPC for many small
            tasks; timeouts scale with chunk length; retries always resubmit
            individually).
        policy: retry/timeout/backoff knobs (default :class:`RetryPolicy`).
        on_result: called in the driver as each item lands (in completion
            order) with ``(index, key, value)``.
        costs: estimated cost per item, same length as ``items``.  Costs
            accumulate into ``report.budget_spent``; without a ``budget``
            they are purely informational.
        budget: admission ceiling over ``costs``.  Items are admitted in
            order while their estimated cost fits the remaining budget;
            the rest land in ``report.skipped`` with ``results[i] = None``
            and are never scheduled.  Admission is decided up front from
            the estimates, so it is deterministic regardless of worker
            count or completion order.  An item that terminally fails as
            ``unsupported`` refunds its cost (reported, not re-admitted).

    Returns:
        A :class:`RunReport`: per-item results (``None`` at the holes),
        terminal failures, transient (retried) failures, pool respawns,
        and budget accounting (``skipped``/``budget_spent``/
        ``budget_refunded``).

    Raises:
        ConfigurationError: invalid ``workers``/``chunksize``/``keys``/
            ``costs``/``budget``.
        ExperimentError: the pool broke more than ``policy.max_respawns``
            times — an environment-level failure no retry can fix.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    if keys is not None and len(keys) != len(items):
        raise ConfigurationError(
            f"keys/items length mismatch: {len(keys)} != {len(items)}"
        )
    if costs is not None and len(costs) != len(items):
        raise ConfigurationError(
            f"costs/items length mismatch: {len(costs)} != {len(items)}"
        )
    if budget is not None:
        if costs is None:
            raise ConfigurationError("budget requires per-item costs")
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
    policy = policy if policy is not None else RetryPolicy()
    count = workers if workers is not None else default_worker_count()
    labels = list(keys) if keys is not None else [str(i) for i in range(len(items))]
    tasks = [_Task(index=i, key=labels[i], item=item) for i, item in enumerate(items)]
    if costs is not None:
        for task, cost in zip(tasks, costs):
            if cost < 0:
                raise ConfigurationError(
                    f"cost for task {task.key!r} must be >= 0, got {cost}"
                )
            task.cost = float(cost)
    if not tasks:
        return RunReport()
    report = RunReport(results=[None] * len(tasks))
    tasks = _admit_for_budget(tasks, budget, report)
    if not tasks:
        return report
    serial = (count == 1 or len(tasks) == 1) and policy.timeout is None
    if telemetry.enabled():
        registry = telemetry.registry()
        registry.counter_inc("runner.tasks_submitted", float(len(tasks)))
        registry.gauge_max("runner.workers", 1.0 if serial else float(count))
    if serial:
        return _run_serial(function, tasks, policy, on_result, report=report)
    return _Scheduler(
        function, tasks, count, chunksize, policy, on_result, report=report
    ).run()


def map_experiments(
    function: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int] = None,
    chunksize: int = 1,
    on_result: Optional[Callable[[ResultT], None]] = None,
) -> List[ResultT]:
    """Apply ``function`` to every item, possibly in parallel (all-or-nothing).

    The simple facade over :func:`run_tasks`: no retries, no timeout,
    results returned — and streamed to ``on_result`` — in item order.  The
    first failing item raises :class:`~repro.errors.ExperimentError`.
    Callers that need partial results, retries, or timeouts should use
    :func:`run_tasks` directly.
    """
    pending = 0
    buffered: Dict[int, ResultT] = {}

    def stream(index: int, _key: str, value: object) -> None:
        nonlocal pending
        buffered[index] = value  # type: ignore[assignment]
        while pending in buffered:
            on_result(buffered.pop(pending))  # type: ignore[misc]
            pending += 1

    report = run_tasks(
        function,
        items,
        workers=workers,
        chunksize=chunksize,
        policy=RetryPolicy(max_attempts=1, backoff_base=0.0),
        on_result=stream if on_result is not None else None,
    )
    if report.failures:
        first = report.failures[0]
        raise ExperimentError(f"experiment {first.key} failed: {first.message}")
    return report.results  # type: ignore[return-value]
