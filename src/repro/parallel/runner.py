"""Parallel experiment execution.

The reproduction campaign is embarrassingly parallel: every experiment
builds its own machine and shares nothing.  :func:`map_experiments` runs a
pure function over experiment descriptors with an optional process pool —
on multi-core hosts the 330-run campaign scales nearly linearly; on a single
core it degrades gracefully to a serial loop.

Functions and items must be picklable (top-level functions, dataclass
configs) for the process-pool path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

__all__ = ["map_experiments", "default_worker_count"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def default_worker_count() -> int:
    """Workers to use by default: all cores but one, at least 1."""
    return max(1, (os.cpu_count() or 1) - 1)


def map_experiments(
    function: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[ResultT]:
    """Apply ``function`` to every item, possibly in parallel.

    Args:
        function: pure experiment function (must be picklable for workers>1).
        items: experiment descriptors.
        workers: process count; ``None`` → :func:`default_worker_count`;
            ``1`` (or a single-core host) → serial in-process execution.
        chunksize: items per task submission (larger amortizes IPC for many
            small experiments).

    Returns:
        Results in item order.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    count = workers if workers is not None else default_worker_count()
    if count == 1 or len(items) <= 1:
        return [function(item) for item in items]
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(function, items, chunksize=chunksize))
