"""Deterministic fault injection for exercising recovery paths.

Production measurement fleets treat partial failure as the normal case; to
*prove* the campaign driver survives worker crashes, hangs, poisoned
experiments, and corrupted cache shards, every one of those faults must be
reproducible on demand.  This module defines a declarative :class:`FaultPlan`
and a process-wide activation point that the experiment seam
(:func:`repro.core.experiments.pipeline.run_experiment`) and the sharded
cache consult.

A plan is a small JSON document::

    {
      "fail":  {"pair/fftw/mcb": "*"},        # raise InjectedFault (every attempt)
      "crash": {"baseline/mcb": [1]},         # os._exit the worker on attempt 1
      "hang":  {"impact/fftw": [1]},          # sleep hang_seconds on attempt 1
      "hang_seconds": 60.0,
      "corrupt_shards": ["degradation"]       # garble the shard's next write
    }

Activation is either programmatic (:func:`set_fault_plan`, used by tests) or
via the ``REPRO_FAULTS`` environment variable holding the JSON inline or
``@path/to/plan.json``.  Environment activation is what makes the plan reach
pool *workers*: child processes inherit the environment, so the same plan
fires identically in the driver and in every worker, serial or parallel.

Attempt numbers are 1-based and provided by the task scheduler through
:func:`set_current_attempt` — a fault keyed on attempt 1 only exercises the
retry path, a fault keyed ``"*"`` is a persistent hole.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Set, Tuple

from .errors import ConfigurationError, InjectedFault

__all__ = [
    "FaultPlan",
    "ENV_VAR",
    "set_fault_plan",
    "active_fault_plan",
    "set_current_attempt",
    "current_attempt",
]

ENV_VAR = "REPRO_FAULTS"

#: Attempt spec: a set of 1-based attempt numbers, or None meaning "every
#: attempt" (the JSON form is a list of ints or the string "*").
_Attempts = Optional[FrozenSet[int]]


def _parse_attempts(raw: object, context: str) -> _Attempts:
    if raw == "*" or raw == "all":
        return None
    if isinstance(raw, int):
        return frozenset({raw})
    if isinstance(raw, (list, tuple)) and all(isinstance(a, int) for a in raw):
        return frozenset(raw)
    raise ConfigurationError(
        f"fault plan {context}: attempts must be an int, a list of ints, "
        f'or "*", got {raw!r}'
    )


def _matches(attempts: _Attempts, attempt: int) -> bool:
    return attempts is None or attempt in attempts


@dataclass
class FaultPlan:
    """A declarative set of faults to inject, keyed by cache key / shard group.

    Attributes:
        fail: experiment key → attempts on which to raise
            :class:`~repro.errors.InjectedFault`.
        crash: experiment key → attempts on which the hosting process exits
            hard (``os._exit``) — from a pool worker this breaks the pool.
        hang: experiment key → attempts on which the experiment sleeps
            ``hang_seconds`` (long enough to trip any sane task timeout).
        hang_seconds: how long a hung experiment sleeps.
        corrupt_shards: shard groups whose *next* on-disk write is garbled
            after landing (consumed once per group per process).
    """

    fail: Dict[str, _Attempts] = field(default_factory=dict)
    crash: Dict[str, _Attempts] = field(default_factory=dict)
    hang: Dict[str, _Attempts] = field(default_factory=dict)
    hang_seconds: float = 3600.0
    corrupt_shards: Tuple[str, ...] = ()
    _corrupted: Set[str] = field(default_factory=set, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {"fail", "crash", "hang", "hang_seconds", "corrupt_shards"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"fault plan has unknown field(s): {', '.join(sorted(unknown))}"
            )

        def spec(name: str) -> Dict[str, _Attempts]:
            raw = data.get(name, {})
            if not isinstance(raw, dict):
                raise ConfigurationError(f"fault plan {name!r} must be an object")
            return {
                key: _parse_attempts(value, f"{name}[{key!r}]")
                for key, value in raw.items()
            }

        corrupt = data.get("corrupt_shards", ())
        if not isinstance(corrupt, (list, tuple)) or not all(
            isinstance(g, str) for g in corrupt
        ):
            raise ConfigurationError(
                "fault plan 'corrupt_shards' must be a list of shard groups"
            )
        return cls(
            fail=spec("fail"),
            crash=spec("crash"),
            hang=spec("hang"),
            hang_seconds=float(data.get("hang_seconds", 3600.0)),
            corrupt_shards=tuple(corrupt),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("fault plan JSON must be an object")
        return cls.from_dict(data)

    def is_empty(self) -> bool:
        return not (self.fail or self.crash or self.hang or self.corrupt_shards)

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def on_experiment(self, key: str, attempt: int) -> None:
        """Fire any fault this plan holds for ``key`` on ``attempt``.

        Called by :func:`repro.core.experiments.pipeline.run_experiment`
        before dispatching to the engine — i.e. inside whichever process
        (driver or pool worker) actually executes the experiment.
        """
        if _matches(self.crash.get(key, frozenset()), attempt):
            os._exit(23)  # simulated hard worker death: no cleanup, no excuse
        if _matches(self.hang.get(key, frozenset()), attempt):
            time.sleep(self.hang_seconds)
        if _matches(self.fail.get(key, frozenset()), attempt):
            raise InjectedFault(f"injected failure for {key!r} (attempt {attempt})")

    def take_shard_corruption(self, group: str) -> bool:
        """True exactly once per group listed in ``corrupt_shards``."""
        if group in self.corrupt_shards and group not in self._corrupted:
            self._corrupted.add(group)
            return True
        return False


# ----------------------------------------------------------------------
# Process-wide activation
# ----------------------------------------------------------------------
_override: Optional[FaultPlan] = None
_override_set = False
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Programmatically activate ``plan`` (or ``None`` to clear the override).

    An explicit plan takes precedence over ``REPRO_FAULTS``; clearing the
    override falls back to the environment again.  Tests should pair this
    with a ``finally: set_fault_plan(None)`` (or use the env var + monkeypatch).
    """
    global _override, _override_set
    _override = plan
    _override_set = plan is not None


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan currently in force, or ``None`` (the overwhelmingly common case).

    Environment plans are parsed once per distinct ``REPRO_FAULTS`` value and
    cached, so the consumed-once state of shard corruption survives repeated
    lookups within one process.
    """
    global _env_cache
    if _override_set:
        return _override
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _env_cache[0] == raw:
        return _env_cache[1]
    text = Path(raw[1:]).read_text() if raw.startswith("@") else raw
    plan = FaultPlan.from_json(text)
    _env_cache = (raw, plan if not plan.is_empty() else None)
    return _env_cache[1]


# ----------------------------------------------------------------------
# Attempt context (set by the task scheduler, read by the injection point)
# ----------------------------------------------------------------------
_current_attempt = 1


def set_current_attempt(attempt: int) -> None:
    """Record which attempt of the current task is executing (1-based)."""
    global _current_attempt
    _current_attempt = attempt


def current_attempt() -> int:
    """The executing task's attempt number (1 outside any scheduler)."""
    return _current_attempt
