"""The campaign telemetry report: build, persist, load, render.

``ensure_all`` writes one ``telemetry.json`` next to ``failure_report.json``
after every telemetry-enabled campaign: the merged metrics snapshot (driver
plus all workers), the span records and their per-name summary, wall/CPU
per dependency phase, and any workload-level state profiles that were
collected.  The ``repro telemetry`` CLI subcommand renders the document as
a human table or converts its spans into a Chrome trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from .spans import chrome_trace, span_summary

__all__ = [
    "TELEMETRY_REPORT_NAME",
    "TELEMETRY_VERSION",
    "build_report",
    "write_report",
    "load_report",
    "render_report",
    "trace_from_report",
]

#: File written into the cache/results directory (reserved: never a shard).
TELEMETRY_REPORT_NAME = "telemetry.json"

#: Document format version.
TELEMETRY_VERSION = 1


def build_report(
    metrics_snapshot: Mapping[str, object],
    span_records: List[dict],
    phases: Optional[Mapping[str, Mapping[str, float]]] = None,
    campaign: Optional[Mapping[str, object]] = None,
    workloads: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> dict:
    """Assemble the ``telemetry.json`` document (pure, JSON-ready)."""
    return {
        "version": TELEMETRY_VERSION,
        "campaign": dict(campaign) if campaign else {},
        "phases": {name: dict(values) for name, values in (phases or {}).items()},
        "counters": dict(metrics_snapshot.get("counters", {})),  # type: ignore[arg-type]
        "gauges": dict(metrics_snapshot.get("gauges", {})),  # type: ignore[arg-type]
        "histograms": dict(metrics_snapshot.get("histograms", {})),  # type: ignore[arg-type]
        "spans": {
            "count": len(span_records),
            "by_name": span_summary(span_records),
            "records": span_records,
        },
        "workloads": {
            name: dict(values) for name, values in (workloads or {}).items()
        },
    }


def write_report(path: Path, document: Mapping[str, object]) -> Path:
    """Write the document as indented JSON (trailing newline, UTF-8)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: Path) -> dict:
    """Read a ``telemetry.json`` back (raises on missing/invalid files)."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "version" not in document:
        raise ValueError(f"{path} is not a telemetry report")
    return document


def trace_from_report(document: Mapping[str, object]) -> dict:
    """Chrome ``trace_event`` JSON from a loaded report's span records."""
    records = document.get("spans", {}).get("records", [])  # type: ignore[union-attr]
    return chrome_trace(records)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.6g}"


def render_report(document: Mapping[str, object]) -> str:
    """Human-readable table of a telemetry report."""
    lines: List[str] = []
    campaign: Dict[str, object] = dict(document.get("campaign", {}))  # type: ignore[arg-type]
    if campaign:
        head = " · ".join(
            f"{key}={campaign[key]}"
            for key in ("engine", "profile", "workers", "elapsed")
            if key in campaign
        )
        lines.append(f"campaign: {head}")
    phases: Dict[str, Mapping[str, float]] = dict(document.get("phases", {}))  # type: ignore[arg-type]
    if phases:
        lines.append("phases:")
        for name, values in phases.items():
            wall = values.get("wall", 0.0)
            cpu = values.get("cpu", 0.0)
            lines.append(f"  {name:24s} wall {wall:8.3f}s  cpu {cpu:8.3f}s")
    counters: Dict[str, float] = dict(document.get("counters", {}))  # type: ignore[arg-type]
    if counters:
        lines.append("counters:")
        for key in sorted(counters):
            lines.append(f"  {key:48s} {_format_value(counters[key]):>14s}")
    gauges: Dict[str, float] = dict(document.get("gauges", {}))  # type: ignore[arg-type]
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            lines.append(f"  {key:48s} {_format_value(gauges[key]):>14s}")
    histograms: Dict[str, dict] = dict(document.get("histograms", {}))  # type: ignore[arg-type]
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            state = histograms[key]
            count = int(state.get("count", 0))
            mean = float(state.get("sum", 0.0)) / count if count else 0.0
            lines.append(
                f"  {key:48s} n={count:<8d} mean={mean:.6g} "
                f"min={state.get('min')} max={state.get('max')}"
            )
    spans: Dict[str, object] = dict(document.get("spans", {}))  # type: ignore[arg-type]
    by_name: Dict[str, dict] = dict(spans.get("by_name", {}))  # type: ignore[arg-type]
    if by_name:
        lines.append(f"spans ({spans.get('count', 0)} total):")
        ordered = sorted(by_name.items(), key=lambda kv: -kv[1]["total_s"])
        for name, entry in ordered:
            lines.append(
                f"  {name:48s} n={entry['count']:<6d} "
                f"total {entry['total_s']:9.3f}s  max {entry['max_s']:8.3f}s"
            )
    workloads: Dict[str, Mapping[str, float]] = dict(document.get("workloads", {}))  # type: ignore[arg-type]
    if workloads:
        lines.append("workload state profiles:")
        for name, values in sorted(workloads.items()):
            parts = "  ".join(
                f"{state}={fraction * 100:5.1f}%" for state, fraction in values.items()
            )
            lines.append(f"  {name:16s} {parts}")
    return "\n".join(lines) if lines else "(empty telemetry report)"
