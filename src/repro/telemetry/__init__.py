"""End-to-end telemetry: metrics registry, span tracing, campaign reports.

The paper's argument is that the right measurements predict application
behaviour; this subsystem applies the same discipline to the reproduction
stack itself.  Every layer — the sim kernel, the engines, the parallel
runner, the pipeline — records into one process-local
:class:`~repro.telemetry.metrics.MetricsRegistry` and one
:class:`~repro.telemetry.spans.SpanTracer`, both exposed here as
process-wide singletons behind a single cheap on/off switch.

Telemetry is **off by default** and purely observational: enabling it
never touches an RNG stream, a product value, or a cache shard, so
campaign results are bit-identical with and without it.  Overhead when off
is one boolean check per instrumentation site; when on, instrumentation
happens at run/solve/task granularity, never inside the kernel's per-event
hot loop.

Enablement:

* programmatic — :func:`enable` / :func:`disable` (what the pipeline's
  ``telemetry=`` knob and the CLI's ``--telemetry`` flag call);
* environment — ``REPRO_TELEMETRY=1`` turns it on at import time (and is
  how spawned pool workers can inherit the setting; forked workers inherit
  the flag directly, and the chunk protocol re-enables explicitly either
  way).

Worker processes accumulate into their own registry/tracer copies; the
parallel runner resets them per chunk, snapshots the delta, and ships it
back in the result envelope for the driver to :func:`merge_worker`.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import ContextManager, List, Mapping, Optional

from .metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    histogram_percentile,
    merge_snapshots,
    parse_key,
    serialize_key,
)
from .exposition import (
    PROMETHEUS_CONTENT_TYPE,
    lint_exposition,
    parse_exposition,
    render_prometheus,
)
from .spans import SpanTracer, chrome_trace, span_summary
from .live import LIVE_REPORT_NAME, LiveReporter, load_live, render_top
from . import logs
from .report import (
    TELEMETRY_REPORT_NAME,
    build_report,
    load_report,
    render_report,
    trace_from_report,
    write_report,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanTracer",
    "merge_snapshots",
    "parse_key",
    "serialize_key",
    "histogram_percentile",
    "PROMETHEUS_CONTENT_TYPE",
    "lint_exposition",
    "parse_exposition",
    "render_prometheus",
    "chrome_trace",
    "span_summary",
    "logs",
    "LIVE_REPORT_NAME",
    "LiveReporter",
    "load_live",
    "render_top",
    "TELEMETRY_REPORT_NAME",
    "build_report",
    "load_report",
    "render_report",
    "trace_from_report",
    "write_report",
    "ENV_VAR",
    "enabled",
    "enable",
    "disable",
    "registry",
    "tracer",
    "span",
    "snapshot",
    "merge_worker",
    "reset",
]

#: Environment switch: any value other than ""/"0" enables telemetry.
ENV_VAR = "REPRO_TELEMETRY"

_registry = MetricsRegistry()
_tracer = SpanTracer()
_enabled = os.environ.get(ENV_VAR, "") not in ("", "0")


def enabled() -> bool:
    """Whether telemetry is currently being collected in this process."""
    return _enabled


def enable() -> None:
    """Turn collection on (idempotent; existing data is kept)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn collection off (idempotent; existing data is kept)."""
    global _enabled
    _enabled = False


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (collects only while enabled)."""
    return _registry


def tracer() -> SpanTracer:
    """The process-wide span tracer (collects only while enabled)."""
    return _tracer


def span(name: str, category: str = "repro", **args: object) -> ContextManager[None]:
    """Context manager timing a block as one span; no-op when disabled.

    The disabled path costs one boolean check and a shared
    ``nullcontext`` — safe to leave in warm-ish code.
    """
    if not _enabled:
        return nullcontext()
    return _tracer.span(name, category, **args)


def snapshot() -> dict:
    """Picklable delta of this process's telemetry: metrics + spans."""
    return {"metrics": _registry.snapshot(), "spans": _tracer.snapshot()}


def merge_worker(payload: Optional[Mapping[str, object]]) -> None:
    """Fold one worker's :func:`snapshot` payload into this process."""
    if not payload:
        return
    metrics = payload.get("metrics")
    if metrics:
        _registry.merge(metrics)  # type: ignore[arg-type]
    spans: List[dict] = payload.get("spans") or []  # type: ignore[assignment]
    if spans:
        _tracer.merge(spans)


def reset() -> None:
    """Clear all collected metrics and spans (enablement is unchanged)."""
    _registry.reset()
    _tracer.reset()
