"""Hierarchical timed spans with Chrome ``trace_event`` export.

A span is one timed region of work — a campaign, a dependency stage, one
experiment, one engine solve — recorded as a plain dict so span lists are
picklable (workers ship theirs back through the pool's result envelope) and
JSON-serializable (they ride inside ``telemetry.json``).

Record shape::

    {"name": str, "cat": str, "ts": float, "dur": float,
     "pid": int, "tid": int, "args": {...}}

``ts`` is wall-clock epoch seconds (shared across processes, so driver and
worker spans live on one timebase), ``dur`` is seconds.  Nesting is implied
by time containment within one ``(pid, tid)`` track, which is exactly how
Chrome's trace viewer and Perfetto reconstruct hierarchy from complete
(``"ph": "X"``) events.

:func:`chrome_trace` converts a record list into a ``trace_event`` JSON
document: one process track, one thread row per original process, complete
events in microseconds rebased to the earliest span — open it at
https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = ["SpanTracer", "chrome_trace", "span_summary"]


class SpanTracer:
    """Collects span records for one process (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._records: List[dict] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, category: str = "repro", **args: object
    ) -> Iterator[None]:
        """Time a ``with`` block as one span (recorded even on exceptions)."""
        start = time.time()
        try:
            yield
        finally:
            self.record(name, start, time.time() - start, category, args or None)

    def record(
        self,
        name: str,
        ts: float,
        dur: float,
        category: str = "repro",
        args: Optional[Mapping[str, object]] = None,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        """Append one finished span."""
        entry = {
            "name": name,
            "cat": category,
            "ts": float(ts),
            "dur": max(0.0, float(dur)),
            "pid": os.getpid() if pid is None else int(pid),
            "tid": threading.get_native_id() if tid is None else int(tid),
            "args": dict(args) if args else {},
        }
        with self._lock:
            self._records.append(entry)

    # ------------------------------------------------------------------
    # Snapshot protocol (what crosses the process pool)
    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """Picklable copy of every record (args copied shallowly)."""
        with self._lock:
            return [dict(record) for record in self._records]

    def merge(self, records: Iterable[Mapping[str, object]]) -> None:
        """Absorb records from another tracer's snapshot."""
        with self._lock:
            self._records.extend(dict(record) for record in records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def span_summary(records: Iterable[Mapping[str, object]]) -> Dict[str, dict]:
    """Per-name aggregate: count, total seconds, max seconds.

    This is the human-scale view stored in ``telemetry.json`` alongside the
    raw records — enough to spot the dominant phase without opening a trace
    viewer.
    """
    summary: Dict[str, dict] = {}
    for record in records:
        name = str(record["name"])
        entry = summary.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        duration = float(record["dur"])
        entry["count"] += 1
        entry["total_s"] += duration
        entry["max_s"] = max(entry["max_s"], duration)
    return summary


def chrome_trace(records: Iterable[Mapping[str, object]]) -> dict:
    """Build a Chrome ``trace_event`` document from span records.

    All spans are mapped into a single process track (the driver's pid)
    with one thread row per original ``(pid, tid)`` pair, labelled through
    ``thread_name`` metadata — worker experiment spans line up under the
    campaign span on the shared wall-clock timebase.  Timestamps are
    microseconds rebased to the earliest span; events are ordered by
    ``(tid, ts)`` so timestamps are monotonic within each thread row.
    """
    spans = sorted(records, key=lambda r: (r["pid"], r["tid"], r["ts"]))
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = min(float(record["ts"]) for record in spans)
    display_pid = int(spans[0]["pid"])
    track_of: Dict[tuple, int] = {}
    events: List[dict] = []
    for record in spans:
        source = (int(record["pid"]), int(record["tid"]))
        if source not in track_of:
            track_of[source] = len(track_of) + 1
            label = (
                "driver"
                if source[0] == display_pid and len(track_of) == 1
                else f"worker pid={source[0]} tid={source[1]}"
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "ts": 0,
                    "pid": display_pid,
                    "tid": track_of[source],
                    "args": {"name": label},
                }
            )
        events.append(
            {
                "ph": "X",
                "name": str(record["name"]),
                "cat": str(record.get("cat", "repro")),
                "ts": round((float(record["ts"]) - origin) * 1e6),
                "dur": round(float(record["dur"]) * 1e6),
                "pid": display_pid,
                "tid": track_of[source],
                "args": dict(record.get("args") or {}),
            }
        )
    # Stable order: metadata first, then complete events by (tid, ts) so
    # every thread row's timestamps are non-decreasing in file order.
    events.sort(key=lambda e: (e["tid"], 0 if e["ph"] == "M" else 1, e["ts"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
