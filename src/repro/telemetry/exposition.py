"""Prometheus text exposition for :class:`~repro.telemetry.metrics.MetricsRegistry` snapshots.

The registry's snapshot document is a plain JSON object, which is ideal for
merging and archiving but invisible to the standard scrape ecosystem.  This
module renders any snapshot in the Prometheus text exposition format
(version 0.0.4):

* counters become ``<name>_total`` sample lines;
* gauges become plain sample lines;
* log₂ histograms become cumulative ``_bucket{le="..."}`` series — bucket
  exponent ``i`` covers ``[2^i, 2^(i+1))`` so its upper edge is
  ``2^(i+1)`` — plus ``_sum`` and ``_count``.  The ``zero`` bucket folds
  into the lowest edge (``le="0"``); ``nonfinite`` samples appear only in
  ``le="+Inf"`` and ``_count``, matching their exclusion from ``sum``.

Metric names are sanitized to the Prometheus charset (dots become
underscores); label values are escaped per the exposition spec.  Output is
sorted, so a fixed snapshot renders byte-identically — the golden-file test
relies on this.

Two consumers beyond the server live here too: :func:`parse_exposition`
(inverse enough for tests and CI to sum counters across scrapes) and
:func:`lint_exposition` (a regex-based format checker applied to live
``/metrics`` scrapes in tests and the CI observability-smoke job).
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Tuple

from .metrics import NONFINITE_BUCKET, MetricsSnapshot, parse_key

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "lint_exposition",
    "parse_exposition",
    "render_prometheus",
]

#: Content type negotiated for ``GET /metrics`` with ``Accept: text/plain``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def _metric_name(name: str) -> str:
    """Sanitize an instrument name to the Prometheus metric charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _label_name(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or not _LABEL_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_block(labels: Mapping[str, str], extra: "Tuple[Tuple[str, str], ...]" = ()) -> str:
    pairs = [(_label_name(k), str(v)) for k, v in sorted(labels.items())]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _grouped(
    table: Mapping[str, object], suffix: str = ""
) -> "Dict[str, List[Tuple[Dict[str, str], object]]]":
    """Group serialized-key entries by sanitized Prometheus family name."""
    families: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
    for key in sorted(table):
        name, labels = parse_key(key)
        family = _metric_name(name) + suffix
        families.setdefault(family, []).append((labels, table[key]))
    return families


def _histogram_edges(buckets: Mapping[str, int]) -> "List[Tuple[float, int]]":
    """Cumulative (upper_edge, count) pairs for finite samples, ascending."""
    edges: List[Tuple[float, int]] = []
    cumulative = buckets.get("zero", 0)
    if cumulative:
        edges.append((0.0, cumulative))
    for exponent in sorted(
        int(label) for label in buckets if label not in ("zero", NONFINITE_BUCKET)
    ):
        cumulative += buckets[str(exponent)]
        edges.append((2.0 ** (exponent + 1), cumulative))
    return edges


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render a metrics snapshot as Prometheus text exposition (0.0.4).

    Deterministic for a given snapshot: families and samples are sorted, so
    the output is diff-able and golden-testable.  Ends with a newline, as
    the format requires.
    """
    lines: List[str] = []

    counters = _grouped(snapshot.get("counters", {}), suffix="_total")
    for family in sorted(counters):
        lines.append(f"# TYPE {family} counter")
        for labels, value in counters[family]:
            lines.append(f"{family}{_label_block(labels)} {_format_value(value)}")

    gauges = _grouped(snapshot.get("gauges", {}))
    for family in sorted(gauges):
        lines.append(f"# TYPE {family} gauge")
        for labels, value in gauges[family]:
            lines.append(f"{family}{_label_block(labels)} {_format_value(value)}")

    histograms = _grouped(snapshot.get("histograms", {}))
    for family in sorted(histograms):
        lines.append(f"# TYPE {family} histogram")
        for labels, state in histograms[family]:
            buckets: Mapping[str, int] = state.get("buckets", {})  # type: ignore[union-attr]
            total = int(state.get("count", 0))  # type: ignore[arg-type]
            for edge, cumulative in _histogram_edges(buckets):
                block = _label_block(labels, (("le", _format_value(edge)),))
                lines.append(f"{family}_bucket{block} {cumulative}")
            block = _label_block(labels, (("le", "+Inf"),))
            lines.append(f"{family}_bucket{block} {total}")
            lines.append(
                f"{family}_sum{_label_block(labels)} "
                f"{_format_value(float(state.get('sum', 0.0)))}"  # type: ignore[arg-type]
            )
            lines.append(f"{family}_count{_label_block(labels)} {total}")

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Parsing & linting (test/CI consumers)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>NaN|[+-]Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
    r"(?: [0-9]+)?$"
)
_LABEL_RE = re.compile(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"\s*(,|$)')


def _parse_label_body(body: str) -> "Dict[str, str]":
    labels: Dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(f"malformed label block: {body!r}")
        raw = match.group(2)
        labels[match.group(1)] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = match.end()
    return labels


def _parse_value(text: str) -> float:
    if text == "NaN":
        return float("nan")
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(text: str) -> "Dict[str, float]":
    """Parse sample lines into ``name{k="v",...} -> value``.

    Labels are re-serialized sorted, so two scrapes of the same instrument
    map to the same key regardless of label order — which is what lets the
    fleet property test sum counters across per-shard scrapes.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        labels = _parse_label_body(match.group("labels") or "")
        block = ""
        if labels:
            block = (
                "{"
                + ",".join(
                    f'{k}="{_escape_label_value(labels[k])}"' for k in sorted(labels)
                )
                + "}"
            )
        samples[match.group("name") + block] = _parse_value(match.group("value"))
    return samples


def lint_exposition(text: str) -> List[str]:
    """Check text against the exposition format; return a list of problems.

    An empty list means the document passed.  Checks: sample-line syntax,
    one ``# TYPE`` per family declared before its first sample, counters
    named ``*_total``, histogram bucket counts cumulative and
    non-decreasing with a ``+Inf`` bucket equal to ``_count``, and a
    trailing newline.
    """
    problems: List[str] = []
    if text and not text.endswith("\n"):
        problems.append("document does not end with a newline")

    declared: Dict[str, str] = {}
    bucket_series: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    inf_buckets: Dict[str, float] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and declared.get(
                sample_name[: -len(suffix)]
            ) == "histogram":
                return sample_name[: -len(suffix)]
        return sample_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            family = parts[2]
            if family in declared:
                problems.append(f"line {lineno}: duplicate TYPE for {family}")
            declared[family] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name = match.group("name")
        try:
            labels = _parse_label_body(match.group("labels") or "")
        except ValueError as error:
            problems.append(f"line {lineno}: {error}")
            continue
        family = family_of(name)
        kind = declared.get(family)
        if kind is None:
            problems.append(f"line {lineno}: sample {name} has no preceding TYPE")
            continue
        if kind == "counter" and not name.endswith("_total"):
            problems.append(f"line {lineno}: counter sample {name} not named *_total")
        value = _parse_value(match.group("value"))
        if kind == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                problems.append(f"line {lineno}: histogram bucket missing le label")
                continue
            series = family + _label_block(
                {k: v for k, v in labels.items() if k != "le"}
            )
            bucket_series.setdefault(series, []).append(value)
            if labels["le"] == "+Inf":
                inf_buckets[series] = value
        elif kind == "histogram" and name.endswith("_count"):
            counts[family + _label_block(labels)] = value

    for series, values in bucket_series.items():
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"histogram {series}: bucket counts not non-decreasing")
        if series not in inf_buckets:
            problems.append(f"histogram {series}: no le=\"+Inf\" bucket")
    for series, count in counts.items():
        if series in inf_buckets and inf_buckets[series] != count:
            problems.append(
                f"histogram {series}: +Inf bucket {inf_buckets[series]} != _count {count}"
            )
    return problems
