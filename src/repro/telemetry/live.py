"""Live campaign watch: the ``telemetry.live.json`` file and its renderer.

``telemetry.json`` only materializes after a campaign exits; this module
gives a campaign a pulse while it runs.  The pipeline's ``ensure_all``
holds a :class:`LiveReporter` and calls :meth:`LiveReporter.publish` on
every landed task; the reporter throttles to one atomic rewrite of
``telemetry.live.json`` per ``interval`` seconds (tempfile + ``os.replace``,
so a tailing reader never sees a torn document), with a final forced write
marked ``complete`` when the campaign finishes.

The document is self-contained: campaign progress and ETA per stage,
failure/retry counters, and the driver's merged metrics snapshot.  The
``repro top`` subcommand tails it and renders :func:`render_top` — task
throughput, retry/failure counters, and hot histogram percentiles — as a
refreshing terminal table.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from .metrics import histogram_percentile

__all__ = [
    "LIVE_REPORT_NAME",
    "LiveReporter",
    "load_live",
    "render_top",
]

#: File name of the live campaign document, next to the cache shards.
LIVE_REPORT_NAME = "telemetry.live.json"

_EMPTY_METRICS: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}


def _atomic_write_json(path: Path, document: Mapping[str, object]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(document, stream, sort_keys=True)
            stream.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class LiveReporter:
    """Throttled atomic publisher of the live campaign document.

    ``publish`` is cheap to call per landed task: unless ``force`` is set
    or ``interval`` seconds have passed since the last write, it returns
    immediately.  Writes never raise — a full disk must not kill the
    campaign it is observing.
    """

    def __init__(self, path: "Path | str", interval: float = 2.0) -> None:
        self.path = Path(path)
        self.interval = float(interval)
        self._last_write: Optional[float] = None

    def publish(
        self,
        progress: Mapping[str, object],
        metrics: "Optional[Mapping[str, object] | Callable[[], Mapping[str, object]]]" = None,
        *,
        complete: bool = False,
        force: bool = False,
    ) -> bool:
        """Maybe rewrite the live file; returns whether a write happened.

        ``metrics`` may be a snapshot or a zero-arg callable producing one;
        the callable is only invoked when a write actually happens, so the
        per-task cost of a throttled call stays a clock read.
        """
        now = time.monotonic()
        if (
            not force
            and not complete
            and self._last_write is not None
            and now - self._last_write < self.interval
        ):
            return False
        if callable(metrics):
            metrics = metrics()
        document = {
            "version": 1,
            "updated_at": time.time(),
            "complete": bool(complete),
            "progress": dict(progress),
            "metrics": dict(metrics) if metrics else dict(_EMPTY_METRICS),
        }
        try:
            _atomic_write_json(self.path, document)
        except OSError:
            return False
        self._last_write = now
        return True


def load_live(path: "Path | str") -> Optional[dict]:
    """Read a live document; ``None`` if absent or mid-replace unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, ValueError):
        return None


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _format_quantity(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_top(document: Mapping[str, object], *, now: Optional[float] = None) -> str:
    """Render one ``repro top`` frame from a live document (plain text)."""
    now = time.time() if now is None else now
    progress: Mapping[str, object] = document.get("progress", {})  # type: ignore[assignment]
    metrics: Mapping[str, object] = document.get("metrics", {})  # type: ignore[assignment]
    updated_at = float(document.get("updated_at", now))  # type: ignore[arg-type]
    age = max(0.0, now - updated_at)

    lines: List[str] = []
    state = "complete" if document.get("complete") else "in flight"
    stage = progress.get("stage", "?")
    lines.append(f"repro top — campaign {state} · stage {stage} · updated {age:.1f}s ago")

    done = int(progress.get("done", 0))  # type: ignore[arg-type]
    total = int(progress.get("total", 0))  # type: ignore[arg-type]
    elapsed = float(progress.get("elapsed", 0.0))  # type: ignore[arg-type]
    rate = done / elapsed if elapsed > 0 else 0.0
    pct = 100.0 * done / total if total else 0.0
    eta = progress.get("eta")
    lines.append(
        f"  tasks {done}/{total} ({pct:.1f}%) · {rate:.2f} tasks/s · "
        f"elapsed {_format_eta(elapsed)} · eta {_format_eta(eta)}"  # type: ignore[arg-type]
    )
    failed = int(progress.get("failed", 0))  # type: ignore[arg-type]
    retried = int(progress.get("retried", 0))  # type: ignore[arg-type]
    lines.append(f"  failures {failed} · retries {retried}")

    stages: List[Mapping[str, object]] = progress.get("stages", [])  # type: ignore[assignment]
    if stages:
        lines.append("")
        lines.append(f"  {'stage':<24} {'done':>8} {'total':>8} {'seconds':>9}")
        for entry in stages:
            lines.append(
                f"  {str(entry.get('stage', '?')):<24} "
                f"{int(entry.get('done', 0)):>8} "  # type: ignore[arg-type]
                f"{int(entry.get('total', 0)):>8} "  # type: ignore[arg-type]
                f"{float(entry.get('elapsed', 0.0)):>9.2f}"  # type: ignore[arg-type]
            )

    counters: Mapping[str, float] = metrics.get("counters", {})  # type: ignore[assignment]
    if counters:
        lines.append("")
        lines.append(f"  {'counter':<52} {'value':>12}")
        hot = sorted(counters.items(), key=lambda item: (-item[1], item[0]))[:10]
        for key, value in hot:
            lines.append(f"  {key[:52]:<52} {_format_quantity(float(value)):>12}")

    histograms: Mapping[str, Mapping[str, object]] = metrics.get("histograms", {})  # type: ignore[assignment]
    if histograms:
        lines.append("")
        lines.append(
            f"  {'histogram':<40} {'count':>8} {'mean':>10} {'p50':>10} {'p90':>10} {'p99':>10}"
        )
        hot_hists = sorted(
            histograms.items(),
            key=lambda item: (-int(item[1].get("count", 0)), item[0]),  # type: ignore[arg-type]
        )[:8]
        for key, state_doc in hot_hists:
            count = int(state_doc.get("count", 0))  # type: ignore[arg-type]
            total_sum = float(state_doc.get("sum", 0.0))  # type: ignore[arg-type]
            nonfinite = int(state_doc.get("buckets", {}).get("nonfinite", 0))  # type: ignore[union-attr]
            finite = max(0, count - nonfinite)
            mean = total_sum / finite if finite else 0.0
            cells = []
            for quantile in (0.5, 0.9, 0.99):
                estimate = histogram_percentile(state_doc, quantile)
                cells.append("--" if estimate is None else f"{estimate:.4g}")
            lines.append(
                f"  {key[:40]:<40} {count:>8} {mean:>10.4g} "
                f"{cells[0]:>10} {cells[1]:>10} {cells[2]:>10}"
            )
    return "\n".join(lines) + "\n"
