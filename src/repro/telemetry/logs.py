"""JSON-lines structured logging behind a ``REPRO_LOG`` knob.

Human-facing progress already goes to stderr; this channel is for
machines: one JSON object per line, one line per event, so a fleet's
worth of serving shards and campaign workers can be grepped, joined on
``request_id``, and loaded into any log pipeline without a parser.

Off by default.  ``REPRO_LOG`` (or :func:`configure`) selects the sink:

* ``""`` / unset / ``"0"`` — disabled (one boolean check per site);
* ``"stderr"``, ``"1"``, or ``"-"`` — JSON lines on stderr;
* anything else — a file path, opened in append mode.  Appends are
  line-buffered and short, so pre-forked shards can share one file; each
  process reopens its own handle after fork.

Every record carries ``ts`` (epoch seconds), ``pid``, and ``event``; the
current request id — set per handler thread via :func:`set_request_id` —
is attached automatically, which is how microbatch-flush events emitted
from a leader's thread inherit the leader's ``X-Request-Id``.

Event vocabulary (see docs/architecture.md for the field schema):
``serving.request``, ``serving.microbatch_flush``, ``serving.reload``,
``serving.reload_failed``, ``runner.task_scheduled``,
``runner.task_completed``, ``runner.task_retry``, ``runner.task_failed``.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import threading
import time
from typing import IO, Optional

__all__ = [
    "ENV_VAR",
    "configure",
    "enabled",
    "log_event",
    "set_request_id",
    "current_request_id",
    "target",
]

#: Environment switch: "" / "0" off, "stderr"/"1"/"-" stderr, else file path.
ENV_VAR = "REPRO_LOG"

_STDERR_TOKENS = ("stderr", "1", "-")

_lock = threading.Lock()
_target: Optional[str] = None
_stream: Optional[IO[str]] = None
_stream_pid: Optional[int] = None

_request_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_log_request_id", default=None
)


def _normalize(raw: Optional[str]) -> Optional[str]:
    if raw is None:
        return None
    value = raw.strip()
    if value in ("", "0"):
        return None
    if value in _STDERR_TOKENS:
        return "stderr"
    return value


_target = _normalize(os.environ.get(ENV_VAR))


def enabled() -> bool:
    """Whether structured logging is currently emitting in this process."""
    return _target is not None


def target() -> Optional[str]:
    """The active sink: ``None`` (off), ``"stderr"``, or a file path."""
    return _target


def configure(raw: Optional[str]) -> None:
    """Programmatically (re)configure the sink; ``None``/``""`` disables.

    Accepts the same values as the environment variable.  Any open file
    handle is closed, so tests can redirect and restore freely.
    """
    global _target, _stream, _stream_pid
    with _lock:
        if _stream is not None:
            try:
                _stream.close()
            except OSError:
                pass
        _stream = None
        _stream_pid = None
        _target = _normalize(raw)


def set_request_id(request_id: Optional[str]) -> None:
    """Bind a request id to the current thread's context (``None`` clears).

    Subsequent :func:`log_event` calls on this thread attach it
    automatically — including events emitted from nested work like a
    microbatch flush running on the leader's thread.
    """
    _request_id.set(request_id)


def current_request_id() -> Optional[str]:
    """The request id bound to the current thread's context, if any."""
    return _request_id.get()


def _sink() -> IO[str]:
    global _stream, _stream_pid
    if _target == "stderr":
        return sys.stderr
    pid = os.getpid()
    if _stream is None or _stream_pid != pid:
        if _stream is not None:
            try:
                _stream.close()
            except OSError:
                pass
        _stream = open(_target, "a", encoding="utf-8")  # type: ignore[arg-type]
        _stream_pid = pid
    return _stream


def log_event(event: str, **fields: object) -> None:
    """Emit one structured log line (no-op unless logging is enabled).

    ``ts``/``pid``/``event`` are stamped automatically; the thread's bound
    request id is attached unless the caller supplies one explicitly.
    Values that are not JSON-native are stringified rather than raised on —
    a log line must never take down the code it observes.
    """
    if _target is None:
        return
    record: dict = {"ts": round(time.time(), 6), "pid": os.getpid(), "event": event}
    request_id = _request_id.get()
    if request_id is not None and "request_id" not in fields:
        record["request_id"] = request_id
    record.update(fields)
    try:
        line = json.dumps(record, sort_keys=True, default=str)
    except (TypeError, ValueError):
        line = json.dumps({"ts": record["ts"], "pid": record["pid"], "event": event})
    with _lock:
        try:
            sink = _sink()
            sink.write(line + "\n")
            sink.flush()
        except OSError:
            pass
