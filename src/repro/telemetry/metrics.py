"""Dependency-free metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is a thread-safe, process-local store of named
instruments.  Three instrument families cover everything the reproduction
stack needs to observe about itself:

* **counters** — monotone tallies (events executed, cache hits, retries);
* **gauges** — last-known or high-water values (max heap depth, workload
  wait fractions);
* **histograms** — value distributions in fixed log₂ buckets (switch
  utilization samples, fixed-point residuals, per-run wall seconds).

Every instrument is addressed by a name plus optional labels, serialized
into a stable ``name{key=value,...}`` string, which makes a registry
snapshot a plain JSON object — picklable across the process pool, mergeable
across workers, and diff-able across campaigns.

The merge algebra is deliberately associative and commutative (counters
add, gauges take the max, histograms add bucket-wise and combine extrema),
so merging N worker snapshots in any order or grouping yields the same
totals as running everything in one process — a property the test suite
checks both algebraically and against a real two-worker campaign.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "NONFINITE_BUCKET",
    "histogram_percentile",
    "merge_snapshots",
    "parse_key",
    "serialize_key",
]

#: Snapshot document shape: three JSON objects keyed by serialized names.
MetricsSnapshot = Dict[str, Dict[str, object]]

#: Histogram bucket clamp: values outside [2^-64, 2^64) land on the edges.
_BUCKET_MIN = -64
_BUCKET_MAX = 64

#: Histogram bucket that tallies NaN/±inf samples (kept out of sum/extrema).
NONFINITE_BUCKET = "nonfinite"

#: Characters that would make ``name{k=v,...}`` ambiguous if they appeared
#: raw inside a label value; each is backslash-escaped on serialize.
_KEY_SPECIALS = "\\={,}"


def _escape_label_value(value: str) -> str:
    out = []
    for ch in value:
        if ch in _KEY_SPECIALS:
            out.append("\\" + ch)
        elif ch == "\n":
            out.append("\\n")
        else:
            out.append(ch)
    return "".join(out)


def serialize_key(name: str, labels: Mapping[str, object]) -> str:
    """Stable string address of one instrument: ``name{k=v,...}``.

    Labels are sorted, so the same logical instrument always serializes to
    the same key no matter the call-site keyword order.  Label values are
    backslash-escaped (``\\`` ``=`` ``,`` ``{`` ``}`` and newlines) so that
    hostile or merely unlucky values — request paths, error strings — can
    never collide with a differently-labelled instrument.  :func:`parse_key`
    is the exact inverse.
    """
    if not labels:
        return name
    parts = ",".join(
        f"{k}={_escape_label_value(str(labels[k]))}" for k in sorted(labels)
    )
    return f"{name}{{{parts}}}"


def parse_key(key: str) -> "tuple[str, Dict[str, str]]":
    """Invert :func:`serialize_key`: ``name{k=v,...}`` → ``(name, labels)``.

    Backslash escapes produced by :func:`serialize_key` are undone, so
    ``parse_key(serialize_key(n, l))`` round-trips for any label values.
    Keys without labels parse as ``(key, {})``.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed instrument key: {key!r}")
    name = key[:brace]
    body = key[brace + 1 : -1]
    labels: Dict[str, str] = {}
    if not body:
        return name, labels
    label_key: Optional[str] = None
    current: list = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            current.append("\n" if nxt == "n" else nxt)
            i += 2
            continue
        if ch == "=" and label_key is None:
            label_key = "".join(current)
            current = []
        elif ch == "," and label_key is not None:
            labels[label_key] = "".join(current)
            label_key = None
            current = []
        else:
            current.append(ch)
        i += 1
    if label_key is None:
        raise ValueError(f"malformed instrument key: {key!r}")
    labels[label_key] = "".join(current)
    return name, labels


def _bucket_of(value: float) -> str:
    """Log₂ bucket label of a finite value (``"zero"`` for v <= 0)."""
    if not math.isfinite(value):
        return NONFINITE_BUCKET
    if value <= 0.0:
        return "zero"
    index = int(math.floor(math.log2(value)))
    return str(max(_BUCKET_MIN, min(_BUCKET_MAX, index)))


def _empty_histogram() -> Dict[str, object]:
    return {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}


class MetricsRegistry:
    """A thread-safe store of counters, gauges, and histograms.

    All updates go through methods (no instrument objects to plumb around);
    the internal state *is* the snapshot shape, so :meth:`snapshot` is a
    cheap deep copy and :meth:`merge` needs no parsing.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def counter_inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` to a counter (created at zero on first touch)."""
        key = serialize_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to ``value`` (last write wins within a process)."""
        key = serialize_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise a gauge to ``value`` if it is higher (high-water marks)."""
        key = serialize_key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into a histogram.

        Non-finite samples (NaN, ±inf) are tallied in the dedicated
        :data:`NONFINITE_BUCKET` and counted, but kept out of ``sum`` and
        the extrema — one bad sample must not poison a whole campaign's
        aggregates with NaN.
        """
        key = serialize_key(name, labels)
        sample = float(value)
        finite = math.isfinite(sample)
        with self._lock:
            state = self._histograms.get(key)
            if state is None:
                state = self._histograms[key] = _empty_histogram()
            state["count"] = int(state["count"]) + 1  # type: ignore[arg-type]
            if finite:
                state["sum"] = float(state["sum"]) + sample  # type: ignore[arg-type]
                state["min"] = sample if state["min"] is None else min(state["min"], sample)  # type: ignore[type-var]
                state["max"] = sample if state["max"] is None else max(state["max"], sample)  # type: ignore[type-var]
            buckets: Dict[str, int] = state["buckets"]  # type: ignore[assignment]
            bucket = _bucket_of(sample)
            buckets[bucket] = buckets.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 if never touched)."""
        with self._lock:
            return self._counters.get(serialize_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of one gauge (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(serialize_key(name, labels))

    def histogram_state(self, name: str, **labels: object) -> Dict[str, object]:
        """A copy of one histogram's state (empty shape if never observed)."""
        with self._lock:
            state = self._histograms.get(serialize_key(name, labels))
            if state is None:
                return _empty_histogram()
            copy = dict(state)
            copy["buckets"] = dict(state["buckets"])  # type: ignore[arg-type]
            return copy

    def snapshot(self) -> MetricsSnapshot:
        """JSON-ready copy of everything: counters, gauges, histograms."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {**state, "buckets": dict(state["buckets"])}  # type: ignore[arg-type]
                    for key, state in self._histograms.items()
                },
            }

    # ------------------------------------------------------------------
    # Merge & reset
    # ------------------------------------------------------------------
    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add; gauges keep the max; histograms add counts/sums
        bucket-wise and combine extrema — the same algebra as
        :func:`merge_snapshots`, so driver-side accumulation over worker
        deltas is order-independent.
        """
        with self._lock:
            merged = merge_snapshots(self.snapshot(), snapshot)
            self._counters = merged["counters"]  # type: ignore[assignment]
            self._gauges = merged["gauges"]  # type: ignore[assignment]
            self._histograms = merged["histograms"]  # type: ignore[assignment]

    def reset(self) -> None:
        """Drop every instrument (workers call this at chunk start)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _merge_histogram(
    left: Mapping[str, object], right: Mapping[str, object]
) -> Dict[str, object]:
    buckets: Dict[str, int] = dict(left.get("buckets", {}))  # type: ignore[arg-type]
    for bucket, count in right.get("buckets", {}).items():  # type: ignore[union-attr]
        buckets[bucket] = buckets.get(bucket, 0) + count
    extrema = [v for v in (left.get("min"), right.get("min")) if v is not None]
    maxima = [v for v in (left.get("max"), right.get("max")) if v is not None]
    return {
        "count": int(left.get("count", 0)) + int(right.get("count", 0)),  # type: ignore[arg-type]
        "sum": float(left.get("sum", 0.0)) + float(right.get("sum", 0.0)),  # type: ignore[arg-type]
        "min": min(extrema) if extrema else None,
        "max": max(maxima) if maxima else None,
        "buckets": buckets,
    }


def merge_snapshots(
    left: Mapping[str, object], right: Mapping[str, object]
) -> MetricsSnapshot:
    """Merge two registry snapshots into a new one (pure function).

    Associative and commutative by construction: counters add, gauges take
    the max, histograms merge bucket-wise.  Inputs are not modified.
    """
    counters: Dict[str, float] = dict(left.get("counters", {}))  # type: ignore[arg-type]
    for key, value in right.get("counters", {}).items():  # type: ignore[union-attr]
        counters[key] = counters.get(key, 0.0) + value
    gauges: Dict[str, float] = dict(left.get("gauges", {}))  # type: ignore[arg-type]
    for key, value in right.get("gauges", {}).items():  # type: ignore[union-attr]
        current = gauges.get(key)
        gauges[key] = value if current is None else max(current, value)
    histograms: Dict[str, Dict[str, object]] = {
        key: {**state, "buckets": dict(state.get("buckets", {}))}  # type: ignore[arg-type]
        for key, state in left.get("histograms", {}).items()  # type: ignore[union-attr]
    }
    for key, state in right.get("histograms", {}).items():  # type: ignore[union-attr]
        histograms[key] = _merge_histogram(histograms.get(key, _empty_histogram()), state)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_percentile(state: Mapping[str, object], quantile: float) -> Optional[float]:
    """Upper-edge percentile estimate from a log₂ histogram state.

    Walks buckets in value order (``zero`` first, then ascending exponents)
    until the cumulative count covers ``quantile`` of the finite samples and
    returns that bucket's upper edge (``2^(i+1)``) — a conservative bound,
    exact to within one bucket width.  Non-finite samples are excluded; an
    empty histogram returns ``None``.
    """
    buckets: Mapping[str, int] = state.get("buckets", {})  # type: ignore[assignment]
    finite_total = sum(
        count for label, count in buckets.items() if label != NONFINITE_BUCKET
    )
    if finite_total <= 0:
        return None
    maximum = state.get("max")
    target = quantile * finite_total
    seen = buckets.get("zero", 0)
    if seen >= target:
        return 0.0
    for exponent in sorted(
        int(label) for label in buckets if label not in ("zero", NONFINITE_BUCKET)
    ):
        seen += buckets[str(exponent)]
        if seen >= target:
            edge = 2.0 ** (exponent + 1)
            # The observed maximum is a tighter bound than the top edge of
            # the final bucket the quantile lands in.
            return min(edge, float(maximum)) if maximum is not None else edge
    return float(maximum) if maximum is not None else None
