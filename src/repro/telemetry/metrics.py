"""Dependency-free metrics: counters, gauges, and histograms with labels.

A :class:`MetricsRegistry` is a thread-safe, process-local store of named
instruments.  Three instrument families cover everything the reproduction
stack needs to observe about itself:

* **counters** — monotone tallies (events executed, cache hits, retries);
* **gauges** — last-known or high-water values (max heap depth, workload
  wait fractions);
* **histograms** — value distributions in fixed log₂ buckets (switch
  utilization samples, fixed-point residuals, per-run wall seconds).

Every instrument is addressed by a name plus optional labels, serialized
into a stable ``name{key=value,...}`` string, which makes a registry
snapshot a plain JSON object — picklable across the process pool, mergeable
across workers, and diff-able across campaigns.

The merge algebra is deliberately associative and commutative (counters
add, gauges take the max, histograms add bucket-wise and combine extrema),
so merging N worker snapshots in any order or grouping yields the same
totals as running everything in one process — a property the test suite
checks both algebraically and against a real two-worker campaign.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Mapping, Optional

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "serialize_key",
]

#: Snapshot document shape: three JSON objects keyed by serialized names.
MetricsSnapshot = Dict[str, Dict[str, object]]

#: Histogram bucket clamp: values outside [2^-64, 2^64) land on the edges.
_BUCKET_MIN = -64
_BUCKET_MAX = 64


def serialize_key(name: str, labels: Mapping[str, object]) -> str:
    """Stable string address of one instrument: ``name{k=v,...}``.

    Labels are sorted, so the same logical instrument always serializes to
    the same key no matter the call-site keyword order.
    """
    if not labels:
        return name
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{parts}}}"


def _bucket_of(value: float) -> str:
    """Log₂ bucket label of a positive value (``"zero"`` for v <= 0)."""
    if value <= 0.0 or not math.isfinite(value):
        return "zero"
    index = int(math.floor(math.log2(value)))
    return str(max(_BUCKET_MIN, min(_BUCKET_MAX, index)))


def _empty_histogram() -> Dict[str, object]:
    return {"count": 0, "sum": 0.0, "min": None, "max": None, "buckets": {}}


class MetricsRegistry:
    """A thread-safe store of counters, gauges, and histograms.

    All updates go through methods (no instrument objects to plumb around);
    the internal state *is* the snapshot shape, so :meth:`snapshot` is a
    cheap deep copy and :meth:`merge` needs no parsing.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def counter_inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` to a counter (created at zero on first touch)."""
        key = serialize_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge to ``value`` (last write wins within a process)."""
        key = serialize_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise a gauge to ``value`` if it is higher (high-water marks)."""
        key = serialize_key(name, labels)
        with self._lock:
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into a histogram."""
        key = serialize_key(name, labels)
        with self._lock:
            state = self._histograms.get(key)
            if state is None:
                state = self._histograms[key] = _empty_histogram()
            state["count"] = int(state["count"]) + 1  # type: ignore[arg-type]
            state["sum"] = float(state["sum"]) + float(value)  # type: ignore[arg-type]
            state["min"] = value if state["min"] is None else min(state["min"], value)  # type: ignore[type-var]
            state["max"] = value if state["max"] is None else max(state["max"], value)  # type: ignore[type-var]
            buckets: Dict[str, int] = state["buckets"]  # type: ignore[assignment]
            bucket = _bucket_of(float(value))
            buckets[bucket] = buckets.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter (0.0 if never touched)."""
        with self._lock:
            return self._counters.get(serialize_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of one gauge (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(serialize_key(name, labels))

    def histogram_state(self, name: str, **labels: object) -> Dict[str, object]:
        """A copy of one histogram's state (empty shape if never observed)."""
        with self._lock:
            state = self._histograms.get(serialize_key(name, labels))
            if state is None:
                return _empty_histogram()
            copy = dict(state)
            copy["buckets"] = dict(state["buckets"])  # type: ignore[arg-type]
            return copy

    def snapshot(self) -> MetricsSnapshot:
        """JSON-ready copy of everything: counters, gauges, histograms."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {**state, "buckets": dict(state["buckets"])}  # type: ignore[arg-type]
                    for key, state in self._histograms.items()
                },
            }

    # ------------------------------------------------------------------
    # Merge & reset
    # ------------------------------------------------------------------
    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters add; gauges keep the max; histograms add counts/sums
        bucket-wise and combine extrema — the same algebra as
        :func:`merge_snapshots`, so driver-side accumulation over worker
        deltas is order-independent.
        """
        with self._lock:
            merged = merge_snapshots(self.snapshot(), snapshot)
            self._counters = merged["counters"]  # type: ignore[assignment]
            self._gauges = merged["gauges"]  # type: ignore[assignment]
            self._histograms = merged["histograms"]  # type: ignore[assignment]

    def reset(self) -> None:
        """Drop every instrument (workers call this at chunk start)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _merge_histogram(
    left: Mapping[str, object], right: Mapping[str, object]
) -> Dict[str, object]:
    buckets: Dict[str, int] = dict(left.get("buckets", {}))  # type: ignore[arg-type]
    for bucket, count in right.get("buckets", {}).items():  # type: ignore[union-attr]
        buckets[bucket] = buckets.get(bucket, 0) + count
    extrema = [v for v in (left.get("min"), right.get("min")) if v is not None]
    maxima = [v for v in (left.get("max"), right.get("max")) if v is not None]
    return {
        "count": int(left.get("count", 0)) + int(right.get("count", 0)),  # type: ignore[arg-type]
        "sum": float(left.get("sum", 0.0)) + float(right.get("sum", 0.0)),  # type: ignore[arg-type]
        "min": min(extrema) if extrema else None,
        "max": max(maxima) if maxima else None,
        "buckets": buckets,
    }


def merge_snapshots(
    left: Mapping[str, object], right: Mapping[str, object]
) -> MetricsSnapshot:
    """Merge two registry snapshots into a new one (pure function).

    Associative and commutative by construction: counters add, gauges take
    the max, histograms merge bucket-wise.  Inputs are not modified.
    """
    counters: Dict[str, float] = dict(left.get("counters", {}))  # type: ignore[arg-type]
    for key, value in right.get("counters", {}).items():  # type: ignore[union-attr]
        counters[key] = counters.get(key, 0.0) + value
    gauges: Dict[str, float] = dict(left.get("gauges", {}))  # type: ignore[arg-type]
    for key, value in right.get("gauges", {}).items():  # type: ignore[union-attr]
        current = gauges.get(key)
        gauges[key] = value if current is None else max(current, value)
    histograms: Dict[str, Dict[str, object]] = {
        key: {**state, "buckets": dict(state.get("buckets", {}))}  # type: ignore[arg-type]
        for key, state in left.get("histograms", {}).items()  # type: ignore[union-attr]
    }
    for key, state in right.get("histograms", {}).items():  # type: ignore[union-attr]
        histograms[key] = _merge_histogram(histograms.get(key, _empty_histogram()), state)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
