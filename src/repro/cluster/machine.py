"""The simulated machine: kernel + nodes + interconnect in one container."""

from __future__ import annotations

from typing import List, Sequence

from ..config import MachineConfig
from ..errors import ConfigurationError
from ..network import InterconnectNetwork, Topology
from ..sim import RandomStreams, Simulator
from .node import Core, Node
from .placement import Placement

__all__ = ["Machine"]


class Machine:
    """A complete simulated cluster.

    Owns the simulation kernel, the random streams, the nodes, and the
    interconnect; workloads are launched on it through
    :class:`repro.mpi.MPIWorld`.

    Args:
        config: full machine description (defaults are Cab-like).
        topology: override the interconnect layout (default: whatever
            ``config.topology`` declares — the paper's single switch
            unless a leaf-spine fabric was configured).
    """

    def __init__(self, config: MachineConfig, topology: Topology | None = None) -> None:
        if topology is None:
            topology = config.topology.build(config.node_count)
        if topology.node_count != config.node_count:
            raise ConfigurationError(
                f"topology has {topology.node_count} nodes, config says {config.node_count}"
            )
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.nodes: List[Node] = [Node(i, config.node) for i in range(config.node_count)]
        self.network = InterconnectNetwork(self.sim, topology, config.network, self.streams)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def allocate(self, placement: Placement, label: str) -> List[Core]:
        """Reserve cores for a job, enforcing exclusive occupancy."""
        cores = placement.select(self.nodes)
        for core in cores:
            self.nodes[core.node_id].allocate(core, label)
        return cores

    def release(self, cores: Sequence[Core]) -> None:
        """Free a job's cores."""
        for core in cores:
            self.nodes[core.node_id].release(core)

    def free_core_count(self) -> int:
        """Total free cores across the machine."""
        return sum(len(node.free_cores) for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Machine {self.node_count} nodes x {self.config.node.cores} cores, "
            f"t={self.sim.now:.6f}s>"
        )
