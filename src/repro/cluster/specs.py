"""Named machine specifications.

:func:`cab_config` mirrors the paper's experimental platform (§II): 18 dual
socket nodes (two 8-core 2.6 GHz Xeon E5-2670) per QLogic 12300 leaf switch,
~1 µs network latency, 5 GB/s links.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from ..config import (
    LinkFaultConfig,
    MachineConfig,
    NetworkConfig,
    NodeConfig,
    TopologyConfig,
)
from ..errors import ConfigurationError
from ..network.service_time import default_fabric_service, default_port_overhead
from ..units import GB, GHZ, KB, US

__all__ = [
    "cab_config",
    "small_test_config",
    "leaf_spine_config",
    "FAULT_SCENARIOS",
    "fault_scenario",
]


def cab_config(seed: int = 0, node_count: int = 18) -> MachineConfig:
    """The Cab bottom-level-switch configuration used throughout the paper."""
    return MachineConfig(
        node_count=node_count,
        node=NodeConfig(sockets=2, cores_per_socket=8, clock_hz=2.6 * GHZ),
        network=NetworkConfig(
            link_bandwidth=5.0 * GB,
            link_latency=0.1 * US,
            egress_latency=0.25 * US,
            mtu=8 * KB,
            nic_overhead=0.15 * US,
            switch_mode="output_queued",
            port_overhead=default_port_overhead(),
            fabric_service=default_fabric_service(),
        ),
        seed=seed,
    )


#: Named fault presets for the leaf-spine scenario matrix (loss, degraded
#: speed, corruption, flap — the LinkGuardian failure taxonomy).  Every
#: preset targets the links touching spine0, leaving the other spines
#: healthy, so ECMP keeps some flows on clean paths while others suffer.
FAULT_SCENARIOS: Dict[str, Tuple[LinkFaultConfig, ...]] = {
    "lossy-spine": (
        LinkFaultConfig(link="*->spine0", drop_probability=0.02),
        LinkFaultConfig(link="spine0->*", drop_probability=0.02),
    ),
    "degraded-spine": (
        LinkFaultConfig(link="*->spine0", speed_factor=0.25),
        LinkFaultConfig(link="spine0->*", speed_factor=0.25),
    ),
    "corrupting-spine": (
        LinkFaultConfig(link="*->spine0", corrupt_probability=0.02),
        LinkFaultConfig(link="spine0->*", corrupt_probability=0.02),
    ),
    "flaky-spine": (
        LinkFaultConfig(link="*->spine0", down=((0.005, 0.01), (0.02, 0.025))),
        LinkFaultConfig(link="spine0->*", down=((0.005, 0.01), (0.02, 0.025))),
    ),
}


def fault_scenario(name: str) -> Tuple[LinkFaultConfig, ...]:
    """Look up a named fault preset, with a helpful error on typos."""
    try:
        return FAULT_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; "
            f"known: {', '.join(sorted(FAULT_SCENARIOS))}"
        ) from None


def leaf_spine_config(
    seed: int = 0,
    leaf_count: int = 2,
    nodes_per_leaf: int = 9,
    spine_count: int = 2,
    ecmp_seed: int = 0,
    faults: Tuple[LinkFaultConfig, ...] = (),
) -> MachineConfig:
    """Cab's 18 nodes re-cabled as a 2-level leaf-spine fabric.

    The default 2×9 shape keeps the paper's node count and per-node
    hardware, but spreads the ranks across two leaves so cross-leaf traffic
    exercises the spine links — the configuration the fault scenarios
    (``faults=fault_scenario("lossy-spine")``) are designed around.
    """
    base = cab_config(seed=seed, node_count=leaf_count * nodes_per_leaf)
    return replace(
        base,
        topology=TopologyConfig(
            kind="leaf-spine",
            leaf_count=leaf_count,
            nodes_per_leaf=nodes_per_leaf,
            spine_count=spine_count,
            ecmp_seed=ecmp_seed,
        ),
        network=replace(base.network, link_faults=tuple(faults)),
    )


def large_fabric_config(
    seed: int = 0,
    leaf_count: int = 16,
    nodes_per_leaf: int = 32,
    spine_count: int = 8,
    ecmp_seed: int = 0,
) -> MachineConfig:
    """A datacenter-scale leaf-spine preset (default 512 nodes: 16×32, 8 spines).

    The shape the fluid engine exists for — far beyond what the packet
    engine can simulate in reasonable time, and beyond the analytic tier's
    single-switch domain.  Per-node hardware stays Cab's; only the fabric
    grows.  Same knobs as :func:`leaf_spine_config`, different defaults.
    """
    return leaf_spine_config(
        seed=seed,
        leaf_count=leaf_count,
        nodes_per_leaf=nodes_per_leaf,
        spine_count=spine_count,
        ecmp_seed=ecmp_seed,
    )


def small_test_config(seed: int = 0, node_count: int = 4) -> MachineConfig:
    """A small, fast configuration for unit tests (2 sockets × 2 cores)."""
    return MachineConfig(
        node_count=node_count,
        node=NodeConfig(sockets=2, cores_per_socket=2, clock_hz=2.6 * GHZ),
        network=NetworkConfig(
            link_bandwidth=5.0 * GB,
            link_latency=0.1 * US,
            egress_latency=0.25 * US,
            mtu=8 * KB,
            nic_overhead=0.15 * US,
            switch_mode="output_queued",
            port_overhead=default_port_overhead(),
        ),
        seed=seed,
    )
