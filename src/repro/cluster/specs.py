"""Named machine specifications.

:func:`cab_config` mirrors the paper's experimental platform (§II): 18 dual
socket nodes (two 8-core 2.6 GHz Xeon E5-2670) per QLogic 12300 leaf switch,
~1 µs network latency, 5 GB/s links.
"""

from __future__ import annotations

from ..config import MachineConfig, NetworkConfig, NodeConfig
from ..network.service_time import default_fabric_service, default_port_overhead
from ..units import GB, GHZ, KB, US

__all__ = ["cab_config", "small_test_config"]


def cab_config(seed: int = 0, node_count: int = 18) -> MachineConfig:
    """The Cab bottom-level-switch configuration used throughout the paper."""
    return MachineConfig(
        node_count=node_count,
        node=NodeConfig(sockets=2, cores_per_socket=8, clock_hz=2.6 * GHZ),
        network=NetworkConfig(
            link_bandwidth=5.0 * GB,
            link_latency=0.1 * US,
            egress_latency=0.25 * US,
            mtu=8 * KB,
            nic_overhead=0.15 * US,
            switch_mode="output_queued",
            port_overhead=default_port_overhead(),
            fabric_service=default_fabric_service(),
        ),
        seed=seed,
    )


def small_test_config(seed: int = 0, node_count: int = 4) -> MachineConfig:
    """A small, fast configuration for unit tests (2 sockets × 2 cores)."""
    return MachineConfig(
        node_count=node_count,
        node=NodeConfig(sockets=2, cores_per_socket=2, clock_hz=2.6 * GHZ),
        network=NetworkConfig(
            link_bandwidth=5.0 * GB,
            link_latency=0.1 * US,
            egress_latency=0.25 * US,
            mtu=8 * KB,
            nic_overhead=0.15 * US,
            switch_mode="output_queued",
            port_overhead=default_port_overhead(),
        ),
        seed=seed,
    )
