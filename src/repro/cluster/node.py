"""Compute-node model: sockets and cores as placement slots.

Cores do not execute anything themselves (compute phases are simulated as
time advances); they exist so placement policies can reproduce the paper's
careful process-to-core assignments — e.g. "2 ImpactB processes per node,
one on each socket" — and so oversubscription is caught as an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import NodeConfig
from ..errors import ConfigurationError

__all__ = ["Core", "Node"]


@dataclass(frozen=True)
class Core:
    """One placement slot: (node, socket, index within socket)."""

    node_id: int
    socket: int
    index: int

    def __str__(self) -> str:
        return f"n{self.node_id}s{self.socket}c{self.index}"


class Node:
    """A compute node: a grid of cores with occupancy tracking."""

    def __init__(self, node_id: int, config: NodeConfig) -> None:
        self.node_id = node_id
        self.config = config
        self._cores: List[Core] = [
            Core(node_id, socket, index)
            for socket in range(config.sockets)
            for index in range(config.cores_per_socket)
        ]
        self._occupant: dict[Core, str] = {}

    @property
    def cores(self) -> List[Core]:
        """All cores in (socket-major) order."""
        return list(self._cores)

    @property
    def free_cores(self) -> List[Core]:
        """Cores not currently allocated."""
        return [core for core in self._cores if core not in self._occupant]

    def free_cores_on_socket(self, socket: int) -> List[Core]:
        """Free cores on one socket, in index order."""
        if not 0 <= socket < self.config.sockets:
            raise ConfigurationError(
                f"socket {socket} out of range [0, {self.config.sockets})"
            )
        return [
            core
            for core in self._cores
            if core.socket == socket and core not in self._occupant
        ]

    def occupant(self, core: Core) -> Optional[str]:
        """The job label holding ``core``, or None."""
        return self._occupant.get(core)

    def allocate(self, core: Core, label: str) -> None:
        """Mark ``core`` as used by job ``label``.

        Raises:
            ConfigurationError: if the core is already occupied (the paper's
                experiments never share cores between workloads).
        """
        holder = self._occupant.get(core)
        if holder is not None:
            raise ConfigurationError(
                f"core {core} already occupied by {holder!r} (wanted by {label!r})"
            )
        self._occupant[core] = label

    def release(self, core: Core) -> None:
        """Free a previously allocated core."""
        if core not in self._occupant:
            raise ConfigurationError(f"core {core} is not allocated")
        del self._occupant[core]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        used = len(self._occupant)
        return f"<Node {self.node_id}: {used}/{len(self._cores)} cores used>"
