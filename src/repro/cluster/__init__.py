"""Cluster substrate: nodes, cores, placement, and the Machine container."""

from .machine import Machine
from .node import Core, Node
from .placement import (
    BlockPlacement,
    ExplicitPlacement,
    PerSocketPlacement,
    Placement,
    RoundRobinPlacement,
)
from .specs import (
    FAULT_SCENARIOS,
    cab_config,
    fault_scenario,
    large_fabric_config,
    leaf_spine_config,
    small_test_config,
)

__all__ = [
    "Machine",
    "Node",
    "Core",
    "Placement",
    "PerSocketPlacement",
    "BlockPlacement",
    "RoundRobinPlacement",
    "ExplicitPlacement",
    "cab_config",
    "small_test_config",
    "leaf_spine_config",
    "large_fabric_config",
    "FAULT_SCENARIOS",
    "fault_scenario",
]
