"""Process-to-core placement policies.

The paper is specific about placement (§III-A): probe benchmarks get one
process per socket; applications get a fixed number of processes per socket
on all (or a subset of) nodes; co-running workloads never share cores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .node import Core, Node

__all__ = [
    "Placement",
    "PerSocketPlacement",
    "BlockPlacement",
    "RoundRobinPlacement",
    "ExplicitPlacement",
]


class Placement(ABC):
    """Chooses cores for a job's ranks on a set of nodes."""

    @abstractmethod
    def select(self, nodes: Sequence[Node]) -> List[Core]:
        """Return one core per rank, in rank order.

        Implementations must only return currently-free cores.
        """


class PerSocketPlacement(Placement):
    """``ranks_per_socket`` ranks on every socket of the first ``node_count``
    nodes — the paper's layout for both probes and applications.

    Rank order is node-major then socket-major, matching the paper's
    "my_rank + tasks_per_node" neighbour arithmetic.
    """

    def __init__(self, ranks_per_socket: int, node_count: Optional[int] = None) -> None:
        if ranks_per_socket < 1:
            raise ConfigurationError(
                f"ranks_per_socket must be >= 1, got {ranks_per_socket}"
            )
        if node_count is not None and node_count < 1:
            raise ConfigurationError(f"node_count must be >= 1, got {node_count}")
        self.ranks_per_socket = ranks_per_socket
        self.node_count = node_count

    def select(self, nodes: Sequence[Node]) -> List[Core]:
        count = self.node_count if self.node_count is not None else len(nodes)
        if count > len(nodes):
            raise ConfigurationError(
                f"placement wants {count} nodes but machine has {len(nodes)}"
            )
        chosen: List[Core] = []
        for node in nodes[:count]:
            for socket in range(node.config.sockets):
                free = node.free_cores_on_socket(socket)
                if len(free) < self.ranks_per_socket:
                    raise ConfigurationError(
                        f"node {node.node_id} socket {socket} has {len(free)} free "
                        f"cores, need {self.ranks_per_socket}"
                    )
                chosen.extend(free[: self.ranks_per_socket])
        return chosen

    @property
    def ranks_per_node_factor(self) -> int:
        """Ranks placed on each node (sockets resolved at select time)."""
        return self.ranks_per_socket


class BlockPlacement(Placement):
    """Fill nodes one at a time with ``total_ranks`` ranks."""

    def __init__(self, total_ranks: int) -> None:
        if total_ranks < 1:
            raise ConfigurationError(f"total_ranks must be >= 1, got {total_ranks}")
        self.total_ranks = total_ranks

    def select(self, nodes: Sequence[Node]) -> List[Core]:
        chosen: List[Core] = []
        for node in nodes:
            for core in node.free_cores:
                chosen.append(core)
                if len(chosen) == self.total_ranks:
                    return chosen
        raise ConfigurationError(
            f"only {len(chosen)} free cores available for {self.total_ranks} ranks"
        )


class RoundRobinPlacement(Placement):
    """Deal ``total_ranks`` ranks across nodes one core at a time."""

    def __init__(self, total_ranks: int) -> None:
        if total_ranks < 1:
            raise ConfigurationError(f"total_ranks must be >= 1, got {total_ranks}")
        self.total_ranks = total_ranks

    def select(self, nodes: Sequence[Node]) -> List[Core]:
        pools = [node.free_cores for node in nodes]
        chosen: List[Core] = []
        depth = 0
        while len(chosen) < self.total_ranks:
            progressed = False
            for pool in pools:
                if depth < len(pool):
                    chosen.append(pool[depth])
                    progressed = True
                    if len(chosen) == self.total_ranks:
                        return chosen
            if not progressed:
                raise ConfigurationError(
                    f"only {len(chosen)} free cores available for {self.total_ranks} ranks"
                )
            depth += 1
        return chosen


class ExplicitPlacement(Placement):
    """A literal list of cores (rank i on cores[i])."""

    def __init__(self, cores: Sequence[Core]) -> None:
        if not cores:
            raise ConfigurationError("ExplicitPlacement needs at least one core")
        self.cores = list(cores)

    def select(self, nodes: Sequence[Node]) -> List[Core]:
        by_id = {node.node_id: node for node in nodes}
        for core in self.cores:
            node = by_id.get(core.node_id)
            if node is None:
                raise ConfigurationError(f"core {core} names unknown node {core.node_id}")
            if node.occupant(core) is not None:
                raise ConfigurationError(f"core {core} is already occupied")
        return list(self.cores)
