"""repro — Active measurement of network-switch utilization impact.

A full reproduction of Casas & Bronevetsky, *Active Measurement of the
Impact of Network Switch Utilization on Application Performance* (IPPS
2014), built on a discrete-event cluster simulator.

Quickstart::

    from repro import ReproductionPipeline, PipelineSettings

    pipeline = ReproductionPipeline(PipelineSettings(profile="quick"))
    print(pipeline.pair_slowdown("fftw", "milc"))

Layers (bottom-up): :mod:`repro.sim` (event kernel), :mod:`repro.network`
(NICs, switches), :mod:`repro.mpi` (message passing), :mod:`repro.cluster`
(machines, placement), :mod:`repro.workloads` (probes + applications),
:mod:`repro.queueing` (M/G/1 theory), :mod:`repro.core` (experiments +
models), :mod:`repro.analysis` (reports).
"""

from .config import MachineConfig, NetworkConfig, NodeConfig, Scale
from .core.experiments import (
    CompressionExperiment,
    CoRunExperiment,
    ImpactExperiment,
    PipelineSettings,
    ReproductionPipeline,
    calibrate,
    paper_applications,
    paper_compression_catalog,
)
from .core.analyzer import ContentionAnalyzer
from .core.measurement import LatencyCollector, LatencyHistogram, ProbeSignature
from .core.models import (
    AverageLT,
    AverageStDevLT,
    PDFLT,
    PredictionEngine,
    QueueModel,
    default_models,
)
from .cluster import Machine, cab_config
from .errors import ReproError
from .mpi import MPIWorld
from .workloads import (
    AMG,
    FFTW,
    CompressionB,
    CompressionConfig,
    ImpactB,
    Lulesh,
    MCB,
    MILC,
    VPFFT,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "MachineConfig",
    "NetworkConfig",
    "NodeConfig",
    "Scale",
    "Machine",
    "cab_config",
    "MPIWorld",
    "ImpactB",
    "CompressionB",
    "CompressionConfig",
    "AMG",
    "FFTW",
    "Lulesh",
    "MCB",
    "MILC",
    "VPFFT",
    "LatencyCollector",
    "LatencyHistogram",
    "ProbeSignature",
    "calibrate",
    "ContentionAnalyzer",
    "ImpactExperiment",
    "CompressionExperiment",
    "CoRunExperiment",
    "PipelineSettings",
    "ReproductionPipeline",
    "paper_applications",
    "paper_compression_catalog",
    "AverageLT",
    "AverageStDevLT",
    "PDFLT",
    "QueueModel",
    "PredictionEngine",
    "default_models",
]
