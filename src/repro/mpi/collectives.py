"""Collective operations implemented as point-to-point algorithms.

Real MPI libraries build collectives from sends and receives; so do we, which
means collectives exercise the network realistically: a 144-rank alltoall
really does put ~144² messages through the switch fabric.

Algorithms (standard choices for these message sizes):

* barrier — dissemination (⌈log₂ n⌉ rounds);
* bcast / reduce — binomial tree;
* allreduce — reduce to virtual root + bcast;
* gather / scatter — linear to/from root;
* allgather — ring (n−1 steps);
* alltoall — pairwise exchange (n−1 phases of sendrecv).

Every collective allocates a fresh tag block via
:meth:`Comm.next_collective_tag`, so back-to-back collectives never
cross-match (valid as long as all ranks call collectives in the same order,
the usual MPI contract).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import MPIError
from .communicator import Comm

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "alltoall",
    "scatter",
]

ReduceOp = Callable[[Any, Any], Any]


def _default_op(left: Any, right: Any) -> Any:
    """Default reduction: ``+`` (matches MPI_SUM for numbers/sequences)."""
    return left + right


def barrier(comm: Comm):
    """Dissemination barrier: after ⌈log₂ n⌉ rounds all ranks have synced."""
    size = comm.size
    tag = comm.next_collective_tag()
    if size == 1:
        return
    distance = 1
    round_index = 0
    while distance < size:
        dest = (comm.rank + distance) % size
        source = (comm.rank - distance) % size
        recv_request = comm.irecv(source, tag + round_index)
        send_request = comm.isend(dest, 0, tag + round_index)
        yield from comm.waitall([recv_request, send_request])
        distance *= 2
        round_index += 1


def _binomial_children(vrank: int, size: int) -> List[int]:
    """Virtual-rank children of ``vrank`` in a binomial tree rooted at 0."""
    if vrank == 0:
        limit = 1
        while limit < size:
            limit *= 2
    else:
        limit = vrank & -vrank  # lowest set bit
    children = []
    offset = limit // 2
    while offset >= 1:
        child = vrank + offset
        if child < size:
            children.append(child)
        offset //= 2
    return children


def _binomial_parent(vrank: int) -> int:
    """Virtual-rank parent of a non-root node in a binomial tree."""
    return vrank - (vrank & -vrank)


def bcast(comm: Comm, value: Any, root: int, nbytes: int):
    """Binomial-tree broadcast; returns the root's value on every rank."""
    size = comm.size
    tag = comm.next_collective_tag()
    if size == 1:
        return value
    vrank = (comm.rank - root) % size
    if vrank != 0:
        parent = (_binomial_parent(vrank) + root) % size
        value = yield from comm.recv(parent, tag)
    for child_vrank in _binomial_children(vrank, size):
        child = (child_vrank + root) % size
        yield from comm.send(child, nbytes, tag, payload=value)
    return value


def reduce(comm: Comm, value: Any, root: int, nbytes: int, op: Optional[ReduceOp] = None):
    """Binomial-tree reduction; the combined value lands on ``root``.

    Returns the reduction result on ``root`` and ``None`` elsewhere.
    Combination order is deterministic (children in descending offset), so
    non-commutative ops give reproducible results.
    """
    if op is None:
        op = _default_op
    size = comm.size
    tag = comm.next_collective_tag()
    if size == 1:
        return value
    vrank = (comm.rank - root) % size
    accumulated = value
    # Receive from children in the reverse of the bcast send order.
    for child_vrank in reversed(_binomial_children(vrank, size)):
        child = (child_vrank + root) % size
        child_value = yield from comm.recv(child, tag)
        if accumulated is None or child_value is None:
            accumulated = accumulated if child_value is None else child_value
        else:
            accumulated = op(accumulated, child_value)
    if vrank != 0:
        parent = (_binomial_parent(vrank) + root) % size
        yield from comm.send(parent, nbytes, tag, payload=accumulated)
        return None
    return accumulated


def allreduce(comm: Comm, value: Any, nbytes: int, op: Optional[ReduceOp] = None):
    """Reduce to rank 0 then broadcast: every rank gets the combined value."""
    combined = yield from reduce(comm, value, 0, nbytes, op)
    result = yield from bcast(comm, combined, 0, nbytes)
    return result


def gather(comm: Comm, value: Any, root: int, nbytes: int):
    """Linear gather; ``root`` returns the list of values by rank."""
    size = comm.size
    tag = comm.next_collective_tag()
    if comm.rank == root:
        results: List[Any] = [None] * size
        results[root] = value
        requests = [
            comm.irecv(source, tag) for source in range(size) if source != root
        ]
        yield from comm.waitall(requests)
        for request in requests:
            assert request.envelope is not None
            results[request.envelope.src] = request.envelope.payload
        return results
    yield from comm.send(root, nbytes, tag, payload=value)
    return None


def scatter(comm: Comm, values: Optional[List[Any]], root: int, nbytes: int):
    """Linear scatter; rank i returns ``values[i]`` as held by ``root``."""
    size = comm.size
    tag = comm.next_collective_tag()
    if comm.rank == root:
        if values is None or len(values) != size:
            raise MPIError(
                f"scatter root needs exactly {size} values, got "
                f"{None if values is None else len(values)}"
            )
        requests = []
        for dest in range(size):
            if dest != root:
                requests.append(comm.isend(dest, nbytes, tag, payload=values[dest]))
        yield from comm.waitall(requests)
        return values[root]
    result = yield from comm.recv(root, tag)
    return result


def allgather(comm: Comm, value: Any, nbytes: int):
    """Ring allgather: n−1 steps, each forwarding the newest block."""
    size = comm.size
    tag = comm.next_collective_tag()
    results: List[Any] = [None] * size
    results[comm.rank] = value
    if size == 1:
        return results
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    outgoing_index = comm.rank
    for step in range(size - 1):
        recv_request = comm.irecv(left, tag + step)
        send_request = comm.isend(right, nbytes, tag + step, payload=results[outgoing_index])
        yield from comm.waitall([recv_request, send_request])
        incoming_index = (comm.rank - step - 1) % size
        assert recv_request.envelope is not None
        results[incoming_index] = recv_request.envelope.payload
        outgoing_index = incoming_index
    return results


def alltoall(comm: Comm, values: Optional[List[Any]], nbytes_per_pair: int):
    """Pairwise-exchange alltoall.

    Args:
        values: per-destination payloads (``None`` for timing-only traffic).
        nbytes_per_pair: bytes sent to each other rank.

    Returns:
        the list of values received, indexed by source rank (own slot keeps
        the local value).
    """
    size = comm.size
    tag = comm.next_collective_tag()
    if values is not None and len(values) != size:
        raise MPIError(f"alltoall needs {size} values, got {len(values)}")
    results: List[Any] = [None] * size
    results[comm.rank] = values[comm.rank] if values is not None else None
    for step in range(1, size):
        dest = (comm.rank + step) % size
        source = (comm.rank - step) % size
        payload = values[dest] if values is not None else None
        recv_request = comm.irecv(source, tag + step)
        send_request = comm.isend(dest, nbytes_per_pair, tag + step, payload=payload)
        yield from comm.waitall([recv_request, send_request])
        assert recv_request.envelope is not None
        results[source] = recv_request.envelope.payload
    return results
