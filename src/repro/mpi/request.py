"""Nonblocking-operation requests."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .datatypes import Envelope, Status

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import SimEvent

__all__ = ["Request"]


class Request:
    """Handle for a pending isend/irecv.

    A send request completes at *local* completion (the message is fully
    serialized by the NIC — the buffer could be reused); a receive request
    completes when a matching message has fully arrived.  Wait on it with
    ``yield from comm.wait(request)``.
    """

    __slots__ = ("event", "kind", "status", "envelope")

    def __init__(self, event: "SimEvent", kind: str) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"kind must be 'send' or 'recv', got {kind!r}")
        self.event = event
        self.kind = kind
        self.status: Optional[Status] = None
        self.envelope: Optional[Envelope] = None

    @property
    def complete(self) -> bool:
        """Whether the operation has finished."""
        return self.event.triggered

    def _fulfill_recv(self, envelope: Envelope) -> None:
        """Internal: deliver a matched envelope to this receive request."""
        self.envelope = envelope
        self.status = Status.from_envelope(envelope)
        self.event.succeed(envelope)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "complete" if self.complete else "pending"
        return f"<Request {self.kind} {state}>"
