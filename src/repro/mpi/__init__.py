"""MPI-like message-passing layer over the simulated interconnect.

Ranks are coroutines; blocking calls are generators composed with
``yield from``; nonblocking calls return :class:`Request` handles.
Collectives are genuine point-to-point algorithms, so they load the switch
fabric the way real MPI libraries do.
"""

from .communicator import COLLECTIVE_TAG_BASE, Comm
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope, Status
from .matching import MatchingEngine
from .request import Request
from .world import Job, MPIWorld, RankContext

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Envelope",
    "Status",
    "Request",
    "MatchingEngine",
    "Comm",
    "COLLECTIVE_TAG_BASE",
    "MPIWorld",
    "RankContext",
    "Job",
]
