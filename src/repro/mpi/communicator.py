"""The per-rank communicator: point-to-point ops and collective entry points.

A :class:`Comm` is one rank's view of the world (mpi4py style: ``comm.rank``,
``comm.size``).  Blocking operations are generators composed with
``yield from``; nonblocking operations return :class:`Request` objects waited
on with :meth:`wait`/:meth:`waitall`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Sequence

from ..errors import MPIError
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope
from .request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .world import MPIWorld

__all__ = ["Comm"]

#: Base of the tag space reserved for collective operations.
COLLECTIVE_TAG_BASE = 1 << 20

#: Bytes of the rendezvous RTS and CTS control messages.
RENDEZVOUS_CONTROL_BYTES = 64


class Comm:
    """One rank's communicator."""

    __slots__ = ("world", "rank", "_collective_seq")

    def __init__(self, world: "MPIWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self._collective_seq = 0

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    @property
    def sim(self):
        return self.world.machine.sim

    # ------------------------------------------------------------------
    # Point-to-point, nonblocking
    # ------------------------------------------------------------------
    def isend(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None) -> Request:
        """Start a nonblocking send of ``nbytes`` to rank ``dest``.

        Messages at or below the world's ``eager_threshold`` (or all
        messages, when the threshold is ``None``) use the eager protocol:
        the data ships immediately and the send completes at local NIC
        completion.  Larger messages use rendezvous: a small ready-to-send
        notice is matched first, a clear-to-send returns, and only then does
        the data move — so the send cannot complete before the receiver has
        posted a matching receive (real MPI's large-message behaviour).
        """
        self._check_rank(dest)
        if tag < 0:
            raise MPIError(f"send tag must be non-negative, got {tag}")
        world = self.world
        sim = self.sim
        envelope = Envelope(
            src=self.rank, dst=dest, tag=tag, nbytes=nbytes,
            payload=payload, sent_at=sim.now,
        )
        request = Request(sim.event(f"rank{self.rank}.send"), "send")
        engine = world.engine(dest)
        threshold = world.eager_threshold
        if threshold is not None and nbytes > threshold:
            self._rendezvous_send(envelope, request)
            return request
        world.machine.network.send(
            world.node_of(self.rank),
            world.node_of(dest),
            nbytes,
            on_delivered=lambda: engine.deliver(envelope),
            on_sent=lambda: request.event.succeed(),
            flow=(world.name, self.rank),
        )
        return request

    def _rendezvous_send(self, envelope: Envelope, send_request: Request) -> None:
        """RTS → match → CTS → data (see :meth:`isend`)."""
        world = self.world
        network = world.machine.network
        src_node = world.node_of(self.rank)
        dst_node = world.node_of(envelope.dst)
        flow = (world.name, self.rank)
        engine = world.engine(envelope.dst)

        def on_match(recv_request: Request) -> None:
            # Receiver matched the RTS: return the clear-to-send.
            network.send(
                dst_node,
                src_node,
                RENDEZVOUS_CONTROL_BYTES,
                on_delivered=lambda: stream_data(recv_request),
                flow=(world.name, envelope.dst),
            )

        def stream_data(recv_request: Request) -> None:
            network.send(
                src_node,
                dst_node,
                envelope.nbytes,
                on_delivered=lambda: recv_request._fulfill_recv(envelope),
                on_sent=lambda: send_request.event.succeed(),
                flow=flow,
            )

        envelope.on_match = on_match
        # Ship the ready-to-send notice (header-sized, eager).
        network.send(
            src_node,
            dst_node,
            RENDEZVOUS_CONTROL_BYTES,
            on_delivered=lambda: engine.deliver(envelope),
            flow=flow,
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a nonblocking receive."""
        if source != ANY_SOURCE:
            self._check_rank(source)
        return self.world.engine(self.rank).post(source, tag)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def wait(self, request: Request) -> Generator[Any, Any, Any]:
        """Block until ``request`` completes.

        Returns:
            the received payload for receives, ``None`` for sends.
        """
        tracer = self.world.tracer
        if tracer is not None and not request.event.triggered:
            start = self.sim.now
            value = yield request.event
            tracer.record(self.rank, "wait", start, self.sim.now)
        else:
            value = yield request.event
        if request.kind == "recv":
            envelope: Envelope = value
            return envelope.payload
        return None

    def waitall(self, requests: Sequence[Request]) -> Generator[Any, Any, List[Any]]:
        """Block until every request completes.

        Returns:
            per-request payloads (``None`` for sends), in request order.
        """
        combined = self.sim.all_of([request.event for request in requests])
        tracer = self.world.tracer
        if tracer is not None and not combined.triggered:
            start = self.sim.now
            yield combined
            tracer.record(self.rank, "wait", start, self.sim.now)
        else:
            yield combined
        results: List[Any] = []
        for request in requests:
            if request.kind == "recv":
                assert request.envelope is not None
                results.append(request.envelope.payload)
            else:
                results.append(None)
        return results

    # ------------------------------------------------------------------
    # Point-to-point, blocking
    # ------------------------------------------------------------------
    def send(self, dest: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Blocking send (returns when locally complete)."""
        request = self.isend(dest, nbytes, tag, payload)
        yield from self.wait(request)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        request = self.irecv(source, tag)
        return (yield from self.wait(request))

    def sendrecv(
        self,
        dest: int,
        nbytes: int,
        source: int,
        tag: int = 0,
        payload: Any = None,
    ):
        """Simultaneous send+receive (deadlock-free exchange); returns payload."""
        recv_request = self.irecv(source, tag)
        send_request = self.isend(dest, nbytes, tag, payload)
        results = yield from self.waitall([recv_request, send_request])
        return results[0]

    # ------------------------------------------------------------------
    # Collectives (implemented in repro.mpi.collectives)
    # ------------------------------------------------------------------
    def next_collective_tag(self) -> int:
        """Allocate the tag for this rank's next collective call.

        Correct as long as all ranks issue collectives in the same order —
        the usual MPI requirement.
        """
        # Blocks are 4096 wide: ring/pairwise collectives use tag+step with
        # step < size, so this supports worlds up to 4096 ranks.
        tag = COLLECTIVE_TAG_BASE + self._collective_seq * 4096
        self._collective_seq += 1
        return tag

    def barrier(self):
        from . import collectives

        return (yield from collectives.barrier(self))

    def bcast(self, value: Any, root: int, nbytes: int):
        from . import collectives

        return (yield from collectives.bcast(self, value, root, nbytes))

    def reduce(self, value: Any, root: int, nbytes: int, op=None):
        from . import collectives

        return (yield from collectives.reduce(self, value, root, nbytes, op))

    def allreduce(self, value: Any, nbytes: int, op=None):
        from . import collectives

        return (yield from collectives.allreduce(self, value, nbytes, op))

    def gather(self, value: Any, root: int, nbytes: int):
        from . import collectives

        return (yield from collectives.gather(self, value, root, nbytes))

    def allgather(self, value: Any, nbytes: int):
        from . import collectives

        return (yield from collectives.allgather(self, value, nbytes))

    def alltoall(self, values: Optional[List[Any]], nbytes_per_pair: int):
        from . import collectives

        return (yield from collectives.alltoall(self, values, nbytes_per_pair))

    def scatter(self, values: Optional[List[Any]], root: int, nbytes: int):
        from . import collectives

        return (yield from collectives.scatter(self, values, root, nbytes))

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world.size:
            raise MPIError(f"rank {rank} out of range [0, {self.world.size})")
        if rank == self.rank:
            # Self-messaging is legal MPI but almost always a bug in these
            # workloads; allow it (the network handles src==dst) but only
            # via explicit opt-in at the world level.
            if not self.world.allow_self_messages:
                raise MPIError(f"rank {rank} attempted to message itself")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Comm rank={self.rank}/{self.size}>"
