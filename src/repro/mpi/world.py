"""Job launching: MPIWorld, RankContext, and Job handles.

An :class:`MPIWorld` binds a set of allocated cores to rank ids and builds
the per-rank matching engines and communicators.  ``launch`` spawns one
coroutine per rank from a workload factory and returns a :class:`Job` whose
``done`` event fires when every rank has returned.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

import numpy as np

from ..cluster import Core, Machine, Placement
from ..errors import ConfigurationError, MPIError
from ..sim import AllOf, Process
from ..trace import COMPUTE, SLEEP, StateTracer
from ..units import cycles_to_seconds
from .communicator import Comm
from .matching import MatchingEngine

__all__ = ["MPIWorld", "RankContext", "Job"]

WorkloadFactory = Callable[["RankContext"], Generator[Any, Any, Any]]


class RankContext:
    """Everything one rank's workload generator needs.

    Attributes:
        rank / size: position in the world.
        comm: the rank's communicator.
        core: the core this rank is pinned to.
        rng: the rank's private random stream.
    """

    __slots__ = ("world", "rank", "comm", "core", "rng")

    def __init__(self, world: "MPIWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.comm = Comm(world, rank)
        self.core = world.cores[rank]
        self.rng: np.random.Generator = world.machine.streams.stream(
            f"{world.name}.rank{rank}"
        )

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def node_id(self) -> int:
        return self.core.node_id

    @property
    def local_index(self) -> int:
        """Index of this rank among the ranks on the same node."""
        return self.world.local_index_of(self.rank)

    @property
    def now(self) -> float:
        return self.world.machine.sim.now

    @property
    def clock_hz(self) -> float:
        return self.world.machine.config.node.clock_hz

    # ------------------------------------------------------------------
    # Time helpers (generators, composed with ``yield from``)
    # ------------------------------------------------------------------
    def compute(self, seconds: float, jitter: float = 0.0):
        """Model a compute phase of ``seconds``, with optional lognormal jitter.

        ``jitter`` is the shape parameter (0 = deterministic; 0.02 gives ~2%
        runtime noise, typical of real kernels).
        """
        if seconds < 0:
            raise MPIError(f"compute time must be non-negative, got {seconds}")
        if jitter > 0:
            seconds *= float(self.rng.lognormal(0.0, jitter))
        if seconds > 0:
            tracer = self.world.tracer
            if tracer is not None:
                start = self.now
                yield seconds
                tracer.record(self.rank, COMPUTE, start, self.now)
            else:
                yield seconds
        return None
        yield  # pragma: no cover - keeps this a generator even for 0s

    def sleep(self, seconds: float):
        """Idle for ``seconds`` (e.g. ImpactB's inter-probe gap)."""
        if seconds < 0:
            raise MPIError(f"sleep time must be non-negative, got {seconds}")
        if seconds > 0:
            tracer = self.world.tracer
            if tracer is not None:
                start = self.now
                yield seconds
                tracer.record(self.rank, SLEEP, start, self.now)
            else:
                yield seconds
        return None
        yield  # pragma: no cover

    def sleep_cycles(self, cycles: float):
        """Idle for a cycle count at this node's clock (CompressionB's *B*)."""
        yield from self.sleep(cycles_to_seconds(cycles, self.clock_hz))


class Job:
    """A launched job: per-rank processes plus completion tracking."""

    def __init__(self, world: "MPIWorld", processes: List[Process], started_at: float) -> None:
        self.world = world
        self.processes = processes
        self.started_at = started_at
        sim = world.machine.sim
        self.done: AllOf = sim.all_of(
            [process.terminated for process in processes], name=f"{world.name}.done"
        )

    @property
    def finished(self) -> bool:
        return self.done.triggered

    @property
    def finished_at(self) -> float:
        """Time the slowest rank returned (NaN while running)."""
        return self.done.trigger_time

    @property
    def elapsed(self) -> float:
        """Job makespan (NaN while running)."""
        return self.finished_at - self.started_at

    def results(self) -> List[Any]:
        """Per-rank return values (valid once finished)."""
        if not self.finished:
            raise MPIError("job has not finished")
        return [process.result for process in self.processes]


class MPIWorld:
    """A set of ranks bound to cores of one machine."""

    def __init__(
        self,
        machine: Machine,
        cores: Sequence[Core],
        name: str = "job",
        allow_self_messages: bool = False,
        tracer: Optional[StateTracer] = None,
        eager_threshold: Optional[int] = None,
    ) -> None:
        if not cores:
            raise ConfigurationError("an MPI world needs at least one rank")
        if eager_threshold is not None and eager_threshold < 0:
            raise ConfigurationError(
                f"eager_threshold must be non-negative, got {eager_threshold}"
            )
        self.machine = machine
        self.cores = list(cores)
        self.name = name
        self.allow_self_messages = allow_self_messages
        #: Optional state tracer (compute/sleep/wait intervals per rank).
        self.tracer = tracer
        #: Messages larger than this use the rendezvous protocol
        #: (None = eager-only, the default; 40 KB fits eager on most MPIs).
        self.eager_threshold = eager_threshold
        self._node_of = [core.node_id for core in self.cores]
        self._engines = [MatchingEngine(machine.sim, rank) for rank in range(len(cores))]
        # local index: position of each rank among ranks sharing its node.
        seen: dict[int, int] = {}
        self._local_index: List[int] = []
        for node_id in self._node_of:
            index = seen.get(node_id, 0)
            self._local_index.append(index)
            seen[node_id] = index + 1
        self._ranks_by_node: dict[int, List[int]] = {}
        for rank, node_id in enumerate(self._node_of):
            self._ranks_by_node.setdefault(node_id, []).append(rank)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.cores)

    @property
    def node_ids(self) -> List[int]:
        """Distinct node ids used by this world, ascending."""
        return sorted(self._ranks_by_node)

    def node_of(self, rank: int) -> int:
        """The node a rank runs on."""
        return self._node_of[rank]

    def local_index_of(self, rank: int) -> int:
        """Rank's position among the ranks on its node."""
        return self._local_index[rank]

    def ranks_on_node(self, node_id: int) -> List[int]:
        """All ranks of this world on ``node_id``, ascending."""
        return list(self._ranks_by_node.get(node_id, []))

    def engine(self, rank: int) -> MatchingEngine:
        """The matching engine of ``rank``."""
        return self._engines[rank]

    # ------------------------------------------------------------------
    def launch(self, factory: WorkloadFactory) -> Job:
        """Spawn one process per rank from ``factory(ctx)``."""
        sim = self.machine.sim
        processes = [
            sim.spawn(factory(RankContext(self, rank)), name=f"{self.name}.r{rank}")
            for rank in range(self.size)
        ]
        return Job(self, processes, started_at=sim.now)

    @classmethod
    def create(
        cls,
        machine: Machine,
        placement: Placement,
        name: str = "job",
        allow_self_messages: bool = False,
        tracer: Optional[StateTracer] = None,
        eager_threshold: Optional[int] = None,
    ) -> "MPIWorld":
        """Allocate cores via ``placement`` and build the world."""
        cores = machine.allocate(placement, label=name)
        return cls(
            machine,
            cores,
            name=name,
            allow_self_messages=allow_self_messages,
            tracer=tracer,
            eager_threshold=eager_threshold,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MPIWorld {self.name!r} size={self.size}>"
