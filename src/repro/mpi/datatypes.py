"""Message envelopes, status, and matching wildcards."""

from __future__ import annotations

from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Status"]

#: Wildcard accepted by ``irecv(source=...)``.
ANY_SOURCE = -1
#: Wildcard accepted by ``irecv(tag=...)``.
ANY_TAG = -1


class Envelope:
    """The metadata + optional payload of one message.

    Payloads are optional: the simulation only needs byte counts for timing,
    but tests and collectives carry real Python values to verify algorithm
    correctness.

    ``on_match`` implements the rendezvous protocol: when set, the envelope
    is a ready-to-send notice — matching it does *not* complete the receive;
    instead the hook fires (with the matched request) and the sender streams
    the data, completing the request on arrival.
    """

    __slots__ = (
        "src",
        "dst",
        "tag",
        "nbytes",
        "payload",
        "sent_at",
        "delivered_at",
        "on_match",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any = None,
        sent_at: float = -1.0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = -1.0
        self.on_match = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Envelope {self.src}->{self.dst} tag={self.tag} {self.nbytes}B>"


class Status:
    """Receive status: who sent, with what tag, how many bytes."""

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int) -> None:
        self.source = source
        self.tag = tag
        self.nbytes = nbytes

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "Status":
        return cls(envelope.src, envelope.tag, envelope.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"
