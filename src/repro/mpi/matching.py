"""Per-rank message matching: posted receives vs unexpected messages.

Standard MPI semantics: a receive matches the *first* arrived (or arriving)
message whose (source, tag) satisfies the receive's (source, tag) pattern,
with ``ANY_SOURCE``/``ANY_TAG`` wildcards.  Messages between a fixed pair
are non-overtaking (guaranteed by the FIFO network path).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..sim import Simulator
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope
from .request import Request

__all__ = ["MatchingEngine"]


def _matches(want_source: int, want_tag: int, envelope: Envelope) -> bool:
    if want_source != ANY_SOURCE and envelope.src != want_source:
        return False
    if want_tag != ANY_TAG and envelope.tag != want_tag:
        return False
    return True


class MatchingEngine:
    """Receive-matching state for one rank."""

    __slots__ = ("sim", "rank", "_posted", "_unexpected")

    def __init__(self, sim: Simulator, rank: int) -> None:
        self.sim = sim
        self.rank = rank
        self._posted: Deque[Tuple[int, int, Request]] = deque()
        self._unexpected: Deque[Envelope] = deque()

    @property
    def posted_count(self) -> int:
        """Receives posted but not yet matched."""
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        """Messages arrived before a matching receive was posted."""
        return len(self._unexpected)

    def post(self, source: int, tag: int) -> Request:
        """Post a receive; returns its request.

        If an unexpected message already matches, the request completes
        immediately (at the current simulated time).
        """
        request = Request(self.sim.event(f"rank{self.rank}.recv"), "recv")
        for index, envelope in enumerate(self._unexpected):
            if _matches(source, tag, envelope):
                del self._unexpected[index]
                self._complete_match(envelope, request)
                return request
        self._posted.append((source, tag, request))
        return request

    def deliver(self, envelope: Envelope) -> None:
        """A message has fully arrived; match it or queue it."""
        envelope.delivered_at = self.sim.now
        for index, (source, tag, request) in enumerate(self._posted):
            if _matches(source, tag, envelope):
                del self._posted[index]
                self._complete_match(envelope, request)
                return
        self._unexpected.append(envelope)

    def _complete_match(self, envelope: Envelope, request: Request) -> None:
        """Fulfill the receive, or hand off to the rendezvous protocol."""
        if envelope.on_match is not None:
            envelope.on_match(request)
        else:
            request._fulfill_recv(envelope)
