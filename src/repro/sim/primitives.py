"""Synchronization primitives built on the kernel: Resource and Store.

These are used by the network substrate (NIC injection serialization) and are
generally useful for modelling contention points.  Both are strictly FIFO,
which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from ..errors import SimulationError
from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO acquisition.

    ``acquire()`` returns a :class:`SimEvent` that fires when a unit is
    granted; processes typically ``yield resource.acquire()``.  Each grant
    must be balanced by exactly one :meth:`release`.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name or "resource"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquisitions waiting for a unit."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        """Request a unit; the returned event fires when it is granted."""
        event = self.sim.event(f"{self.name}.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a unit, handing it to the oldest waiter if any.

        Raises:
            SimulationError: if released more times than acquired.
        """
        if self._in_use <= 0:
            raise SimulationError(f"Resource {self.name!r} released while idle")
        if self._waiters:
            # Hand the unit straight to the next waiter; _in_use is unchanged.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store(object):
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks.  ``get()`` returns a :class:`SimEvent` whose value
    is the item.  Pending gets are served in FIFO order.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of unfulfilled ``get`` requests."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Request the oldest item; the event's value is the item."""
        event = self.sim.event(f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek(self) -> Optional[Any]:
        """Return (without removing) the oldest item, or ``None`` if empty."""
        return self._items[0] if self._items else None
