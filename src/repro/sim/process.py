"""Coroutine processes driven by the simulation kernel.

A process is a Python generator.  It advances simulated time and waits on
conditions by ``yield``-ing:

* a ``float``/``int`` — sleep that many simulated seconds;
* a :class:`~repro.sim.events.SimEvent` — suspend until it triggers; the
  expression evaluates to the event's value;
* another :class:`Process` — join it; evaluates to its return value.

Blocking helpers are composed with ``yield from``.  Exceptions raised inside a
process are wrapped in :class:`~repro.errors.ProcessFailure` and re-raised out
of the kernel so broken simulations fail loudly instead of deadlocking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import ProcessFailure, SimulationError
from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["Process"]


class Process:
    """A running coroutine inside a :class:`~repro.sim.kernel.Simulator`.

    Create via :meth:`Simulator.spawn`.  The process starts at the current
    simulated time (asynchronously, on the next kernel step at ``now``).
    """

    __slots__ = ("sim", "name", "generator", "terminated", "_alive", "_result")

    def __init__(self, sim: "Simulator", generator: Generator[Any, Any, Any], name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the workload function?"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        #: Event fired with the process return value when it finishes.
        self.terminated: SimEvent = sim.event(f"{self.name}.terminated")
        self._alive = True
        self._result: Any = None
        sim.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the process has not yet returned."""
        return self._alive

    @property
    def result(self) -> Any:
        """The process return value (``None`` until it finishes)."""
        return self._result

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        """Advance the generator with ``value``, interpreting what it yields."""
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self._result = stop.value
            self.terminated.succeed(stop.value)
            return
        except Exception as exc:
            self._alive = False
            raise ProcessFailure(self.name, str(exc)) from exc

        if isinstance(target, SimEvent):
            target.on_trigger(self._resume_from_event)
        elif isinstance(target, (float, int)):
            if target < 0:
                self._fail(SimulationError(f"process {self.name!r} yielded negative delay {target!r}"))
                return
            self.sim.schedule(float(target), self._resume, None)
        elif isinstance(target, Process):
            target.terminated.on_trigger(self._resume_from_event)
        else:
            self._fail(
                SimulationError(
                    f"process {self.name!r} yielded unsupported {type(target).__name__}; "
                    "yield a delay, SimEvent, or Process"
                )
            )

    def _resume_from_event(self, event: SimEvent) -> None:
        self._resume(event.value)

    def _fail(self, error: Exception) -> None:
        """Kill the generator and raise out of the kernel."""
        self._alive = False
        self.generator.close()
        raise error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "terminated"
        return f"<Process {self.name!r} {state}>"
