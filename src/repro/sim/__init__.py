"""Discrete-event simulation substrate.

The kernel executes callbacks in deterministic (time, insertion) order;
processes are Python generators that yield delays, events, or other processes.
See :mod:`repro.sim.kernel` for the execution model.
"""

from .events import AllOf, AnyOf, SimEvent
from .kernel import ScheduledCall, Simulator
from .primitives import Resource, Store
from .process import Process
from .random import RandomStreams, stable_hash64

__all__ = [
    "Simulator",
    "ScheduledCall",
    "SimEvent",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Store",
    "RandomStreams",
    "stable_hash64",
]
