"""Triggerable events for the discrete-event simulator.

A :class:`SimEvent` is a one-shot condition that simulated processes can wait
on by ``yield``-ing it.  Events are triggered exactly once via
:meth:`SimEvent.succeed`; callbacks registered before or after the trigger all
fire in deterministic order at the simulated instant of the trigger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["SimEvent", "AllOf", "AnyOf"]

Callback = Callable[["SimEvent"], None]


class SimEvent:
    """A one-shot triggerable condition bound to a simulator.

    Processes wait on an event with ``value = yield event``.  The value passed
    to :meth:`succeed` is delivered to every waiter.
    """

    __slots__ = ("sim", "name", "value", "_callbacks", "_triggered", "_trigger_time")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.value: Any = None
        self._callbacks: Optional[List[Callback]] = []
        self._triggered = False
        self._trigger_time: float = float("nan")

    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._triggered

    @property
    def trigger_time(self) -> float:
        """Simulated time at which the event fired (NaN if untriggered)."""
        return self._trigger_time

    def on_trigger(self, callback: Callback) -> None:
        """Register ``callback(event)``.

        If the event already fired, the callback is scheduled to run at the
        current simulated time (still asynchronously, preserving determinism).
        """
        if self._triggered:
            self.sim.schedule(0.0, callback, self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event, delivering ``value`` to all waiters.

        Raises:
            SimulationError: if the event was already triggered.
        """
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._trigger_time = self.sim.now
        self.value = value
        callbacks = self._callbacks
        self._callbacks = None  # break reference cycles, catch double fire
        if callbacks:
            for callback in callbacks:
                self.sim.schedule(0.0, callback, self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<SimEvent {self.name!r} {state}>"


class AllOf(SimEvent):
    """Composite event that fires once **all** child events have fired.

    Its value is the list of child values in the order the children were
    given (not trigger order).
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = "") -> None:
        super().__init__(sim, name or "all_of")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.on_trigger(self._child_done)

    def _child_done(self, _event: SimEvent) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([child.value for child in self._children])


class AnyOf(SimEvent):
    """Composite event that fires as soon as **any** child event fires.

    Its value is the ``(index, value)`` pair of the first child to fire
    (ties broken by schedule order, deterministically).
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], name: str = "") -> None:
        super().__init__(sim, name or "any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one child event")
        for index, child in enumerate(self._children):
            child.on_trigger(self._make_callback(index))

    def _make_callback(self, index: int) -> Callback:
        def _child_done(event: SimEvent) -> None:
            if not self.triggered:
                self.succeed((index, event.value))

        return _child_done
