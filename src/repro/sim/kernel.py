"""The discrete-event simulation kernel.

:class:`Simulator` owns a time-ordered event heap and executes callbacks in
deterministic order (time, then insertion sequence).  Everything else in the
library — the network fabric, NICs, MPI ranks — is built from callbacks and
coroutine processes scheduled on one simulator.

The kernel is deliberately small and allocation-light: the switch fabric
processes hundreds of thousands of packets per experiment, each costing a
handful of heap operations, so the hot-path entries are plain 4-tuples
``(time, seq, fn, args)`` on a ``heapq``; cancellable entries (rarely
needed) wrap their callback in a :class:`ScheduledCall` guard.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import SimulationError
from .events import AllOf, AnyOf, SimEvent

__all__ = ["Simulator", "ScheduledCall"]


class ScheduledCall:
    """Handle for a cancellable scheduled callback."""

    __slots__ = ("time", "fn", "args", "cancelled", "executed", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self.executed = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent.

        The owning simulator is told so its live queue-depth accounting
        (``pending``) excludes this now-dead heap entry; cancelling after
        the entry already ran (or was already cancelled) changes nothing.
        """
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        self.fn = None  # release references eagerly
        self.args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    def _run(self) -> None:
        self.executed = True
        if self.cancelled:
            # The dead entry just left the heap; settle the cancelled tally.
            if self._sim is not None:
                self._sim._note_cancelled_popped()
            return
        fn = self.fn
        assert fn is not None
        fn(*self.args)


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        start_time: initial simulated time (seconds).

    Example:
        >>> sim = Simulator()
        >>> hits = []
        >>> sim.schedule(1.5, hits.append, "a")
        >>> sim.schedule(0.5, hits.append, "b")
        >>> sim.run()
        >>> hits
        ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Callable[..., Any], Tuple[Any, ...]]] = []
        self._sequence = 0
        self._events_executed = 0
        self._max_pending = 0
        self._cancelled = 0
        self._running = False
        self._counter_probes: Dict[str, Callable[[], float]] = {}

    # ------------------------------------------------------------------
    # Time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for budgeting/diagnostics)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live scheduled entries (cancelled ones excluded).

        Cancelled :class:`ScheduledCall` entries stay in the heap until
        their time comes up, but they are dead weight, not queued work —
        counting them would inflate the queue-depth telemetry.
        """
        return len(self._heap) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still sitting in the heap."""
        return self._cancelled

    @property
    def max_pending(self) -> int:
        """High-water mark of live queue depth (cancelled entries excluded)."""
        return self._max_pending

    # Called by ScheduledCall only: keep the live-entry arithmetic in one
    # place so ``pending`` can never drift from the heap's true contents.
    def _note_cancelled(self) -> None:
        self._cancelled += 1

    def _note_cancelled_popped(self) -> None:
        self._cancelled -= 1

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def register_counter(self, name: str, probe: Callable[[], float]) -> None:
        """Register a named zero-argument counter probe.

        Components (NICs, switches, the message layer) expose their internal
        tallies through probes that are *pulled* on demand — the hot path
        pays nothing for instrumentation.  Re-registering a name replaces
        its probe.
        """
        self._counter_probes[name] = probe

    def counters(self) -> Dict[str, float]:
        """A snapshot of every registered counter plus the kernel's own.

        Keys are ``component.metric`` strings (``kernel.events``,
        ``switch0.served``, ...).  Values are plain numbers, JSON-safe by
        construction, so the snapshot can ride along in a
        :class:`~repro.core.experiments.runner.RunResult`.
        """
        snapshot: Dict[str, float] = {
            "kernel.events": float(self._events_executed),
            "kernel.pending": float(len(self._heap) - self._cancelled),
            "kernel.cancelled_pending": float(self._cancelled),
            "kernel.max_pending": float(self._max_pending),
        }
        for name, probe in self._counter_probes.items():
            snapshot[name] = float(probe())
        return snapshot

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative or NaN.
        """
        if delay < 0.0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with delay {delay!r}")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, fn, args))
        # One compare per schedule keeps the queue-depth high-water mark
        # without any per-event work in the run loop.  Net of cancelled
        # entries, so max_pending stays a true live-queue-depth mark.
        depth = len(self._heap) - self._cancelled
        if depth > self._max_pending:
            self._max_pending = depth

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at an absolute simulated time.

        Raises:
            SimulationError: if ``time`` lies in the simulated past.
        """
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule at t={time!r}; current time is {self._now!r}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, fn, args))
        depth = len(self._heap) - self._cancelled
        if depth > self._max_pending:
            self._max_pending = depth

    def schedule_cancellable(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> ScheduledCall:
        """Like :meth:`schedule` but returns a cancellable handle."""
        if delay < 0.0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with delay {delay!r}")
        entry = ScheduledCall(self._now + delay, fn, args, self)
        self._sequence += 1
        heapq.heappush(self._heap, (entry.time, self._sequence, entry._run, ()))
        depth = len(self._heap) - self._cancelled
        if depth > self._max_pending:
            self._max_pending = depth
        return entry

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered :class:`SimEvent` bound to this simulator."""
        return SimEvent(self, name)

    def all_of(self, events: List[SimEvent], name: str = "") -> AllOf:
        """Event firing when all ``events`` have fired."""
        return AllOf(self, events, name)

    def any_of(self, events: List[SimEvent], name: str = "") -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events, name)

    def spawn(self, generator: Generator[Any, Any, Any], name: str = "") -> "Process":
        """Start a coroutine process; see :class:`repro.sim.process.Process`."""
        from .process import Process  # local import to avoid a cycle

        return Process(self, generator, name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns:
            ``True`` if a callback ran, ``False`` if the heap was empty.
        """
        heap = self._heap
        if not heap:
            return False
        time, _seq, fn, args = heapq.heappop(heap)
        self._now = time
        self._events_executed += 1
        fn(*args)
        return True

    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run until the heap empties, ``until`` is reached, or budget expires.

        When stopping at ``until``, the clock is advanced to exactly ``until``
        if any work remained beyond it.

        Raises:
            SimulationError: on re-entrant ``run`` or exhausted event budget.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        self._running = True
        try:
            executed = 0
            while heap:
                if heap[0][0] > until:
                    self._now = until
                    return
                if executed >= budget:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at t={self._now:.9f}"
                    )
                time, _seq, fn, args = pop(heap)
                self._now = time
                executed += 1
                self._events_executed += 1
                fn(*args)
            # math.isinf, not an identity check: a caller's float("inf") is
            # equal to math.inf but not the same object, and the clock must
            # never be advanced to infinity when the heap drains.
            if not math.isinf(until) and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_event(self, event: SimEvent, max_events: Optional[int] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises:
            SimulationError: if the heap empties before the event triggers,
                or the event budget runs out.
        """
        if self._running:
            raise SimulationError("Simulator.run_until_event() is not re-entrant")
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        self._running = True
        executed = 0
        try:
            while not event.triggered:
                if not heap:
                    raise SimulationError(
                        f"simulation ran dry before event {event.name!r} triggered"
                    )
                if executed >= budget:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted waiting for {event.name!r}"
                    )
                time, _seq, fn, args = pop(heap)
                self._now = time
                executed += 1
                self._events_executed += 1
                fn(*args)
        finally:
            self._running = False
        return event.value
