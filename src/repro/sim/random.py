"""Deterministic named random streams.

Every stochastic element of a simulation (fabric service times, compute noise
per rank, application workload draws) pulls from its own named stream derived
from a single root seed.  This gives bit-for-bit reproducibility *and*
independence: adding a new consumer never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "stable_hash64"]


def stable_hash64(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (unlike builtin ``hash``)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """Factory of independent, reproducible :class:`numpy.random.Generator` s.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.stream("fabric.service")
        >>> b = streams.stream("rank3.compute")
        >>> a is streams.stream("fabric.service")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        Repeated calls with the same name return the *same* generator object,
        so consumers share state within a run but never across names.
        """
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence(entropy=(self.seed, stable_hash64(name)))
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of this one's."""
        return RandomStreams(seed=(self.seed * 0x9E3779B1 + stable_hash64(name)) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
