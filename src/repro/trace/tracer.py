"""Per-rank state tracing (the "indirect measurement" comparison point).

The paper's related work contrasts active measurement with tracing tools
(Vampir, Paraver): instrument the application, record what each rank does,
and infer network behaviour indirectly.  This module provides that
capability for simulated workloads: when an :class:`MPIWorld` is given a
:class:`StateTracer`, every compute phase, sleep, and blocking MPI wait is
recorded as a timed interval.

The resulting profiles explain the reproduction's results — e.g. FFTW's
dominance in Fig. 7 is exactly its wait fraction — and power the
``repro.trace.profile_workload`` convenience API.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..errors import ExperimentError

__all__ = ["StateInterval", "StateTracer", "COMPUTE", "WAIT", "SLEEP"]

#: Rank is executing local work.
COMPUTE = "compute"
#: Rank is blocked in an MPI wait.
WAIT = "wait"
#: Rank is deliberately idle (probe gaps, interference sleeps).
SLEEP = "sleep"

_VALID_STATES = (COMPUTE, WAIT, SLEEP)


class StateInterval(NamedTuple):
    """One contiguous interval of a rank in one state."""

    rank: int
    state: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class StateTracer:
    """Collects per-rank state intervals for one job."""

    def __init__(self) -> None:
        self._intervals: List[StateInterval] = []

    def record(self, rank: int, state: str, start: float, end: float) -> None:
        """Record one interval.

        Raises:
            ExperimentError: on unknown state or a negative-length interval.
        """
        if state not in _VALID_STATES:
            raise ExperimentError(f"unknown trace state {state!r}")
        if end < start:
            raise ExperimentError(f"interval ends before it starts: [{start}, {end}]")
        self._intervals.append(StateInterval(rank, state, start, end))

    # ------------------------------------------------------------------
    @property
    def interval_count(self) -> int:
        return len(self._intervals)

    def intervals(self, rank: Optional[int] = None) -> List[StateInterval]:
        """All intervals, optionally filtered by rank, in record order."""
        if rank is None:
            return list(self._intervals)
        return [interval for interval in self._intervals if interval.rank == rank]

    def totals(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Accumulated seconds per state (all states present, maybe 0)."""
        sums: Dict[str, float] = {state: 0.0 for state in _VALID_STATES}
        for interval in self._intervals:
            if rank is None or interval.rank == rank:
                sums[interval.state] += interval.duration
        return sums

    def fractions(self, rank: Optional[int] = None) -> Dict[str, float]:
        """Share of traced time per state (zeros if nothing traced)."""
        sums = self.totals(rank)
        total = sum(sums.values())
        if total <= 0:
            return {state: 0.0 for state in _VALID_STATES}
        return {state: value / total for state, value in sums.items()}

    def wait_fraction(self, rank: Optional[int] = None) -> float:
        """The key indirect metric: share of traced time blocked on MPI."""
        return self.fractions(rank)[WAIT]

    def ranks(self) -> List[int]:
        """Ranks with at least one interval, ascending."""
        return sorted({interval.rank for interval in self._intervals})

    def clear(self) -> None:
        self._intervals.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StateTracer intervals={len(self._intervals)}>"
