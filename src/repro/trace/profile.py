"""Workload profiling built on the state tracer.

:func:`profile_workload` answers the question the paper's Fig. 7 ordering
reduces to: *what fraction of its time does this application spend blocked
on the network?*  FFTW's wait share is what makes it the most sensitive
application; MCB's near-zero share is what makes it immune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster import Machine
from ..config import MachineConfig
from ..errors import ExperimentError
from ..mpi import MPIWorld
from ..workloads import Workload
from .tracer import COMPUTE, SLEEP, WAIT, StateTracer

__all__ = ["WorkloadProfile", "profile_workload", "render_profile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregated state breakdown of one workload run."""

    name: str
    elapsed: float
    rank_count: int
    compute_fraction: float
    wait_fraction: float
    sleep_fraction: float
    per_rank_wait: Dict[int, float]

    @property
    def comm_bound(self) -> bool:
        """Heuristic: blocked on the network more than computing."""
        return self.wait_fraction > self.compute_fraction


def profile_workload(
    config: MachineConfig,
    workload: Workload,
    tracer: Optional[StateTracer] = None,
) -> WorkloadProfile:
    """Run ``workload`` alone with tracing and return its state breakdown.

    Args:
        config: machine to run on.
        workload: a finite workload (runs to completion).
        tracer: reuse an existing tracer (a fresh one by default).
    """
    tracer = tracer if tracer is not None else StateTracer()
    machine = Machine(config)
    world = MPIWorld.create(
        machine,
        workload.preferred_placement(config),
        name=workload.name,
        tracer=tracer,
    )
    job = world.launch(workload)
    machine.sim.run_until_event(job.done)
    fractions = tracer.fractions()
    if tracer.interval_count == 0:
        raise ExperimentError(
            f"workload {workload.name!r} produced no traced intervals"
        )
    return WorkloadProfile(
        name=workload.name,
        elapsed=job.elapsed,
        rank_count=world.size,
        compute_fraction=fractions[COMPUTE],
        wait_fraction=fractions[WAIT],
        sleep_fraction=fractions[SLEEP],
        per_rank_wait={rank: tracer.wait_fraction(rank) for rank in tracer.ranks()},
    )


def render_profile(profile: WorkloadProfile, width: int = 40) -> str:
    """ASCII bar chart of a workload's state breakdown."""
    lines = [
        f"{profile.name}: {profile.elapsed * 1e3:.2f}ms on {profile.rank_count} ranks"
    ]
    for label, fraction in [
        ("compute", profile.compute_fraction),
        ("wait", profile.wait_fraction),
        ("sleep", profile.sleep_fraction),
    ]:
        bar = "#" * int(round(width * fraction))
        lines.append(f"  {label:8s} {fraction * 100:5.1f}% {bar}")
    return "\n".join(lines)
