"""Workload profiling built on the state tracer.

:func:`profile_workload` answers the question the paper's Fig. 7 ordering
reduces to: *what fraction of its time does this application spend blocked
on the network?*  FFTW's wait share is what makes it the most sensitive
application; MCB's near-zero share is what makes it immune.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .. import telemetry
from ..cluster import Machine
from ..config import MachineConfig
from ..mpi import MPIWorld
from ..workloads import Workload
from .tracer import COMPUTE, SLEEP, WAIT, StateTracer

__all__ = ["WorkloadProfile", "profile_workload", "render_profile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Aggregated state breakdown of one workload run.

    ``degenerate`` marks a run that produced no traced intervals (e.g. a
    zero-length workload): every fraction is zero and nothing can be said
    about the workload's network sensitivity, but the profile is still a
    well-formed value instead of an exception.
    """

    name: str
    elapsed: float
    rank_count: int
    compute_fraction: float
    wait_fraction: float
    sleep_fraction: float
    per_rank_wait: Dict[int, float] = field(default_factory=dict)
    degenerate: bool = False

    @property
    def comm_bound(self) -> bool:
        """Heuristic: blocked on the network more than computing."""
        return self.wait_fraction > self.compute_fraction


def profile_workload(
    config: MachineConfig,
    workload: Workload,
    tracer: Optional[StateTracer] = None,
) -> WorkloadProfile:
    """Run ``workload`` alone with tracing and return its state breakdown.

    Args:
        config: machine to run on.
        workload: a finite workload (runs to completion).
        tracer: reuse an existing tracer (a fresh one by default).

    A run that produces no traced intervals (a zero-length workload, or a
    tracer whose total traced time is zero) returns a zeroed profile with
    ``degenerate=True`` rather than raising — callers sweeping many
    workloads shouldn't die on one trivial member.
    """
    tracer = tracer if tracer is not None else StateTracer()
    machine = Machine(config)
    world = MPIWorld.create(
        machine,
        workload.preferred_placement(config),
        name=workload.name,
        tracer=tracer,
    )
    job = world.launch(workload)
    with telemetry.span(f"profile:{workload.name}", "trace"):
        machine.sim.run_until_event(job.done)
    fractions = tracer.fractions()
    degenerate = tracer.interval_count == 0 or sum(tracer.totals().values()) <= 0
    profile = WorkloadProfile(
        name=workload.name,
        elapsed=job.elapsed,
        rank_count=world.size,
        compute_fraction=0.0 if degenerate else fractions[COMPUTE],
        wait_fraction=0.0 if degenerate else fractions[WAIT],
        sleep_fraction=0.0 if degenerate else fractions[SLEEP],
        per_rank_wait={}
        if degenerate
        else {rank: tracer.wait_fraction(rank) for rank in tracer.ranks()},
        degenerate=degenerate,
    )
    if telemetry.enabled():
        registry = telemetry.registry()
        registry.counter_inc("trace.profiles", workload=workload.name)
        if degenerate:
            registry.counter_inc("trace.degenerate_profiles", workload=workload.name)
        else:
            registry.gauge_set(
                "trace.wait_fraction", profile.wait_fraction, workload=workload.name
            )
            registry.gauge_set(
                "trace.compute_fraction",
                profile.compute_fraction,
                workload=workload.name,
            )
    return profile


def render_profile(profile: WorkloadProfile, width: int = 40) -> str:
    """ASCII bar chart of a workload's state breakdown."""
    suffix = " (degenerate: no traced intervals)" if profile.degenerate else ""
    lines = [
        f"{profile.name}: {profile.elapsed * 1e3:.2f}ms on {profile.rank_count} ranks{suffix}"
    ]
    for label, fraction in [
        ("compute", profile.compute_fraction),
        ("wait", profile.wait_fraction),
        ("sleep", profile.sleep_fraction),
    ]:
        bar = "#" * int(round(width * fraction))
        lines.append(f"  {label:8s} {fraction * 100:5.1f}% {bar}")
    return "\n".join(lines)
