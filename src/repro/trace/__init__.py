"""Tracing substrate: per-rank state intervals and workload profiling.

Note: :mod:`repro.trace.tracer` has no dependencies on the MPI layer (the
MPI layer imports *it*), while :mod:`repro.trace.profile` sits above both —
import it as ``repro.trace.profile`` or via :func:`profile_workload` lazily.
"""

from .tracer import COMPUTE, SLEEP, WAIT, StateInterval, StateTracer

__all__ = [
    "StateTracer",
    "StateInterval",
    "COMPUTE",
    "WAIT",
    "SLEEP",
    "profile_workload",
    "render_profile",
    "WorkloadProfile",
]


def __getattr__(name: str):
    if name in ("profile_workload", "render_profile", "WorkloadProfile"):
        from . import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
