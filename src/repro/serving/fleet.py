"""Cross-shard stats aggregation for the pre-forked serving fleet.

``SO_REUSEPORT`` sharding means a scrape of ``/metrics`` lands on *one*
shard chosen by the kernel — fine for liveness, useless for fleet totals.
This module closes that gap with a filesystem rendezvous: every shard
periodically publishes its own stats document to
``<stats_dir>/shard-<pid>.json`` via an atomic tempfile + ``os.replace``
(the same discipline as :func:`repro.serving.artifact.atomic_write_text`),
and any shard can answer ``GET /metrics/fleet`` by reading all documents,
dropping dead publishers (``kill -0`` liveness), and folding the metric
snapshots together with the PR 4 merge algebra
(:func:`repro.telemetry.merge_snapshots`) — which was designed to be
associative and commutative for exactly this.

A shard publishes on a timer *and* synchronously before answering
``/metrics/fleet`` or ``/healthz``, so the answering shard's own numbers
are always current and a quiesced fleet aggregates exactly: after load
stops, one ``/healthz`` poll per shard (each poll refreshes the answering
shard's file) followed by a single ``/metrics/fleet`` scrape yields
counters equal to the true fleet totals.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..telemetry import merge_snapshots

__all__ = [
    "STATS_FILE_PREFIX",
    "STATS_FILE_SUFFIX",
    "fleet_document",
    "publish_stats",
    "read_shard_documents",
    "stats_path",
]

STATS_FILE_PREFIX = "shard-"
STATS_FILE_SUFFIX = ".json"

_EMPTY_METRICS: Dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}


def stats_path(stats_dir: "Path | str", pid: Optional[int] = None) -> Path:
    """The per-pid stats file path inside ``stats_dir``."""
    pid = os.getpid() if pid is None else pid
    return Path(stats_dir) / f"{STATS_FILE_PREFIX}{pid}{STATS_FILE_SUFFIX}"


def publish_stats(stats_dir: "Path | str", document: dict) -> Optional[Path]:
    """Atomically write this process's stats document; ``None`` on failure.

    Publishing is observational: an unwritable stats dir degrades the
    fleet view, never the serving path, so all ``OSError`` is swallowed.
    """
    path = stats_path(stats_dir, int(document.get("pid") or os.getpid()))
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(document, stream, sort_keys=True)
                stream.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return None
    return path


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill
        return True
    return True


def read_shard_documents(stats_dir: "Path | str") -> List[dict]:
    """All live shards' stats documents, sorted by pid.

    Documents whose publisher is dead are skipped and their files pruned
    best-effort, so a restarted fleet does not double-count ghosts.
    Unreadable or torn files (impossible under ``os.replace``, but cheap to
    guard) are skipped silently.
    """
    directory = Path(stats_dir)
    documents: List[dict] = []
    try:
        entries = sorted(directory.iterdir())
    except OSError:
        return documents
    for entry in entries:
        name = entry.name
        if not (name.startswith(STATS_FILE_PREFIX) and name.endswith(STATS_FILE_SUFFIX)):
            continue
        try:
            with open(entry, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except (OSError, ValueError):
            continue
        if not isinstance(document, dict):
            continue
        pid = document.get("pid")
        if not isinstance(pid, int) or not _pid_alive(pid):
            try:
                entry.unlink()
            except OSError:
                pass
            continue
        documents.append(document)
    documents.sort(key=lambda doc: doc.get("pid", 0))
    return documents


def fleet_document(shard_documents: List[dict]) -> dict:
    """Fold per-shard stats documents into one fleet view.

    Metric snapshots merge with the snapshot algebra; per-shard summaries
    (pid, version, request tally, reload state) ride along so a promotion
    can be watched flipping shard-by-shard.
    """
    merged: dict = dict(_EMPTY_METRICS)
    shards: List[dict] = []
    requests_served = 0
    for document in shard_documents:
        shards.append(
            {
                "pid": document.get("pid"),
                "version": document.get("version"),
                "shard_requests_served": document.get("shard_requests_served", 0),
                "reloads": document.get("reloads", 0),
                "reload_failures": document.get("reload_failures", 0),
                "last_reload_error": document.get("last_reload_error"),
                "updated_at": document.get("updated_at"),
            }
        )
        requests_served += int(document.get("shard_requests_served", 0))
        metrics = document.get("metrics")
        if metrics:
            merged = merge_snapshots(merged, metrics)
    return {
        "generated_at": time.time(),
        "shards": shards,
        "shard_count": len(shards),
        "requests_served": requests_served,
        "metrics": merged,
    }
