"""Fitted-model artifacts: everything the four models need, in one file.

A campaign's model inputs — the CompressionB catalog signatures, the
per-app degradation tables, the per-app impact signatures, and the idle
calibration — are serialized into a single versioned JSON document wrapped
in the same checksum envelope the sharded cache uses::

    {
        "__artifact_format__": 1,
        "sha256": "<sha256 of the canonical payload text>",
        "payload": { "observations": [...], "degradations": {...},
                     "signatures": {...}, "calibration": {...},
                     "metadata": {...} }
    }

Because prediction models canonicalize their fitting table (sorted by
config label, ties broken by label), a loaded artifact reproduces the
original engine's predictions bit for bit — JSON round-trips floats
exactly, and the fitting order no longer matters.

Loading is paranoid by design: truncated files, garbled JSON, checksum
mismatches, unknown format versions, and missing payload sections all
raise :class:`~repro.errors.ArtifactError` instead of fitting on damaged
products.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.experiments.compression import CompressionObservation
from ..core.measurement import ProbeSignature
from ..core.models import PredictionEngine, SlowdownModel, default_models
from ..errors import ArtifactError
from ..queueing import ServiceEstimate

__all__ = [
    "ARTIFACT_FORMAT",
    "ModelArtifact",
    "save_artifact",
    "load_artifact",
    "atomic_write_text",
]

#: Version stamp of the artifact document; bump on incompatible changes.
ARTIFACT_FORMAT = 1


def _checksum(payload_text: str) -> str:
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()


def _process_umask() -> int:
    # There is no read-only accessor for the umask; set-and-restore is the
    # standard idiom and the window is harmless (same value written back).
    current = os.umask(0)
    os.umask(current)
    return current


def atomic_write_text(path: Path, text: str) -> None:
    """Durably write ``text`` to ``path``: temp file, fsync, atomic rename.

    The file's bytes are flushed and fsynced before the ``os.replace``, and
    the parent directory is fsynced after it, so a crash at any point leaves
    either the complete previous file or the complete new one — never a torn
    or empty file whose rename outran its data.  The temp file's 0600
    ``mkstemp`` mode is widened to honor the process umask, matching what a
    plain ``open(path, "w")`` would have produced.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(handle, "w") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.chmod(temp_name, 0o666 & ~_process_umask())
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):  # pragma: no cover - cleanup path
            os.unlink(temp_name)
        raise
    directory_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


@dataclass
class ModelArtifact:
    """The complete, serializable input set of the prediction models.

    Attributes:
        observations: the CompressionB catalog signatures.
        degradations: per-app, per-config measured % degradations.
        signatures: per-app impact signatures (each app measured alone).
        calibration: the idle-switch service estimate (``None`` when the
            campaign ran uncalibrated).
        metadata: free-form provenance (engine, profile, seed, ...).
    """

    observations: List[CompressionObservation]
    degradations: Dict[str, Dict[str, float]]
    signatures: Dict[str, ProbeSignature]
    calibration: Optional[ServiceEstimate] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def engine(
        self, models: Optional[Sequence[SlowdownModel]] = None
    ) -> PredictionEngine:
        """Fit a fresh :class:`PredictionEngine` on the artifact's products.

        The models' canonical fitting makes the result independent of the
        order observations were stored in, so an engine built here predicts
        identically to the one the artifact was exported from.
        """
        return PredictionEngine(
            observations=self.observations,
            degradations=self.degradations,
            signatures=self.signatures,
            models=models if models is not None else default_models(),
        )

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-ready payload (the ``payload`` section of the document)."""
        return {
            "observations": [obs.to_dict() for obs in self.observations],
            "degradations": {
                app: dict(table) for app, table in self.degradations.items()
            },
            "signatures": {
                app: signature.to_dict()
                for app, signature in self.signatures.items()
            },
            "calibration": (
                self.calibration.to_dict() if self.calibration is not None else None
            ),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelArtifact":
        """Rebuild an artifact from a verified payload mapping.

        Raises:
            ArtifactError: on missing sections or malformed entries.
        """
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"artifact payload must be a mapping, got {type(payload).__name__}"
            )
        missing = [
            section
            for section in ("observations", "degradations", "signatures")
            if section not in payload
        ]
        if missing:
            raise ArtifactError(
                f"artifact payload lacks required section(s): {', '.join(missing)}"
            )
        try:
            observations = [
                CompressionObservation.from_dict(entry)
                for entry in payload["observations"]
            ]
            signatures = {
                app: ProbeSignature.from_dict(entry)
                for app, entry in payload["signatures"].items()
            }
            calibration_data = payload.get("calibration")
            calibration = (
                ServiceEstimate.from_dict(calibration_data)
                if calibration_data is not None
                else None
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ArtifactError(f"artifact payload is malformed: {exc}") from exc
        return cls(
            observations=observations,
            degradations={
                app: {label: float(value) for label, value in table.items()}
                for app, table in payload["degradations"].items()
            },
            signatures=signatures,
            calibration=calibration,
            metadata=dict(payload.get("metadata") or {}),
        )


def save_artifact(artifact: ModelArtifact, path: str | Path) -> Path:
    """Write ``artifact`` to ``path`` atomically, under a checksum envelope.

    The payload is checksummed over its canonical (sorted-keys) JSON text
    and written through :func:`atomic_write_text` (temp file + fsync +
    ``os.replace`` + directory fsync), so a crashed write — or a crash right
    after the rename — leaves either the previous artifact or the complete
    new one, never a torn or empty file.  Registry promotion relies on this:
    the ``CURRENT`` pointer only ever names fully-durable artifacts.
    """
    path = Path(path)
    payload = artifact.to_payload()
    payload_text = json.dumps(payload, sort_keys=True)
    document = {
        "__artifact_format__": ARTIFACT_FORMAT,
        "sha256": _checksum(payload_text),
        "payload": payload,
    }
    atomic_write_text(path, json.dumps(document) + "\n")
    return path


def load_artifact(path: str | Path) -> ModelArtifact:
    """Load and verify a fitted-model artifact.

    Raises:
        ArtifactError: if the file is missing, unparsable, fails its
            checksum, declares an unknown format version, or lacks any
            required payload section.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactError(
            f"artifact {path} is not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ArtifactError(
            f"artifact {path} must be a JSON object, got {type(document).__name__}"
        )
    version = document.get("__artifact_format__")
    if version != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"artifact {path} has format {version!r}; this build reads "
            f"format {ARTIFACT_FORMAT}"
        )
    payload = document.get("payload")
    recorded = document.get("sha256")
    if not isinstance(payload, dict) or not isinstance(recorded, str):
        raise ArtifactError(f"artifact {path} lacks its payload or checksum")
    actual = _checksum(json.dumps(payload, sort_keys=True))
    if actual != recorded:
        raise ArtifactError(
            f"artifact {path} failed its checksum (recorded {recorded[:12]}…, "
            f"actual {actual[:12]}…); refusing to fit on damaged products"
        )
    return ModelArtifact.from_payload(payload)
