"""A stdlib-only batch prediction server with versioned hot-reload.

``repro serve`` loads (or fits) a :class:`~repro.serving.artifact.ModelArtifact`
— or watches a :class:`~repro.serving.registry.ModelRegistry` — builds a
:class:`~repro.core.models.PredictionEngine`, and answers HTTP:

* ``GET  /healthz``        — liveness, served version, request tally,
  reload counters, artifact metadata.
* ``GET  /models``         — fitted model names, apps, catalog size.
* ``GET  /predict``        — one triple via query string
  (``?app=fftw&other=milc&model=Queue``; ``model`` defaults to all).
* ``POST /predict``        — same as a JSON body
  (``{"app": ..., "other": ..., "model": ...}``).
* ``POST /predict/batch``  — ``{"requests": [[app, other, model], ...]}``,
  scored in one :meth:`~repro.core.models.PredictionEngine.predict_batch`
  call; ``model`` may be ``null`` or omitted (a 2-tuple) to answer all
  models, matching ``/predict`` semantics.
* ``GET  /metrics``        — the telemetry registry's snapshot; JSON by
  default, Prometheus text exposition with ``Accept: text/plain``.
* ``GET  /metrics/fleet``  — every live shard's snapshot merged via the
  stats-dir rendezvous (see :mod:`repro.serving.fleet`); any shard
  answers for the whole fleet.  Same content negotiation as ``/metrics``.

**Request ids.**  Every response echoes an ``X-Request-Id`` header — the
client's, if it sent a sane one, otherwise a freshly minted hex id — and
the same id tags the request's structured log events (request,
microbatch flush) when ``REPRO_LOG`` is on.

**Hot reload.**  When constructed over a registry, a daemon watcher thread
polls the registry's ``CURRENT`` pointer every ``reload_interval`` seconds.
On a version flip it loads and checksum-verifies the new artifact, fits a
fresh engine, and swaps the whole ``(artifact, engine, version)`` bundle
behind a single attribute assignment — atomic under the GIL, so every
request sees one consistent bundle: in-flight requests finish on the old
engine, new requests pick up the new one, and zero requests fail across
the flip.  A damaged artifact never swaps in: the watcher keeps serving
the old engine and counts ``serving.reload_failures``.

**Micro-batching.**  With ``batch_window > 0``, concurrent ``/predict``
and ``/predict/batch`` calls are coalesced: the first request in becomes
the flush leader, sleeps the window, then scores every queued request in
one ``predict_batch`` solve (numerically identical to the scalar path by
construction).  All requests in a flush are answered by the same engine
version.

**Sharding.**  Pass ``reuse_port=True`` to bind with ``SO_REUSEPORT`` so
multiple server processes can share one port (see
:mod:`repro.serving.prefork` for the pre-forked front end).

Requests are served by a :class:`ThreadingHTTPServer`; each request reads
the serving bundle once, and the bundle's fitted state is immutable, so
concurrent reads need no locking.  With telemetry enabled, every request
increments ``serving.requests{endpoint=...,status=...}`` and lands its
latency in the ``serving.request_seconds{endpoint=...}`` histogram; paths
that match no route are collapsed to a fixed ``<unknown>`` endpoint label
so arbitrary client paths cannot explode the label space.

Bad inputs map to structured JSON errors: unknown apps/models, missing
fields, malformed bodies, and malformed ``Content-Length`` headers are
400s carrying the :class:`~repro.errors.ModelError` message, unknown paths
are 404s.  The process never dies on a bad request.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from .. import telemetry
from ..telemetry import logs
from ..telemetry.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..core.models import PredictionEngine
from ..errors import ModelError, ReproError
from . import fleet
from .artifact import ModelArtifact
from .registry import ModelRegistry

__all__ = ["PredictionServer", "ServingState", "UNKNOWN_ENDPOINT"]

#: Longest client-supplied ``X-Request-Id`` honored before we mint our own.
_REQUEST_ID_MAX = 128

#: Fixed telemetry endpoint label for paths that match no route — using the
#: raw request path would let clients mint unbounded label cardinality.
UNKNOWN_ENDPOINT = "<unknown>"

#: Version label served when the artifact came from a bare file, not a
#: registry.
UNVERSIONED = "unversioned"


@dataclass(frozen=True)
class ServingState:
    """One immutable (artifact, engine, version) bundle.

    The server holds exactly one reference to the live bundle; hot reload
    builds a complete replacement and swaps the reference in a single
    assignment.  Handlers read the reference once per request, so a request
    never sees a half-updated mix of old artifact and new engine.
    """

    artifact: ModelArtifact
    engine: PredictionEngine
    version: str
    loaded_at: float = field(default_factory=time.time)


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the server instance hangs off ``self.server``."""

    server: "PredictionServer"  # type: ignore[assignment]

    # Silence the default stderr access log — the serving metrics cover it.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _begin_request(self) -> str:
        """Adopt the client's ``X-Request-Id`` (sanitized) or mint one.

        The id is echoed on the response and bound to the handler thread so
        every structured log event this request causes — including a
        microbatch flush led from this thread — carries it.
        """
        raw = self.headers.get("X-Request-Id") or ""
        request_id = "".join(
            ch for ch in raw.strip() if ch.isprintable() and ch not in '"\\'
        )[:_REQUEST_ID_MAX]
        if not request_id:
            request_id = uuid.uuid4().hex
        self.request_id = request_id
        logs.set_request_id(request_id)
        return request_id

    def _wants_prometheus(self) -> bool:
        accept = self.headers.get("Accept") or ""
        return "text/plain" in accept or "openmetrics" in accept

    def _finish(
        self,
        status: int,
        body: bytes,
        content_type: str,
        endpoint: str,
        t0: float,
    ) -> None:
        seconds = time.perf_counter() - t0
        self.server.note_request()
        # Metrics land before the response bytes: a client that has seen the
        # reply must also see the request counted.
        if telemetry.enabled():
            registry = telemetry.registry()
            registry.counter_inc(
                "serving.requests", endpoint=endpoint, status=status
            )
            registry.observe(
                "serving.request_seconds", seconds, endpoint=endpoint
            )
        if logs.enabled():
            logs.log_event(
                "serving.request",
                endpoint=endpoint,
                status=status,
                seconds=round(seconds, 6),
                method=self.command,
                path=self.path,
            )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", getattr(self, "request_id", ""))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _send_json(self, status: int, document: dict, endpoint: str, t0: float) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self._finish(status, body, "application/json", endpoint, t0)

    def _send_text(
        self, status: int, text: str, endpoint: str, t0: float, content_type: str
    ) -> None:
        self._finish(status, text.encode("utf-8"), content_type, endpoint, t0)

    def _read_body(self) -> dict:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length or 0)
        except ValueError as exc:
            raise ModelError(
                f"malformed Content-Length header {raw_length!r}"
            ) from exc
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ModelError("request body must be a JSON object")
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ModelError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        t0 = time.perf_counter()
        self._begin_request()
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._send_json(200, self.server.health(), "/healthz", t0)
        elif url.path == "/models":
            self._send_json(200, self.server.models(), "/models", t0)
        elif url.path == "/predict":
            query = parse_qs(url.query)
            self._predict(
                {
                    "app": (query.get("app") or [None])[0],
                    "other": (query.get("other") or [None])[0],
                    "model": (query.get("model") or [None])[0],
                },
                t0,
            )
        elif url.path == "/metrics":
            snapshot = telemetry.registry().snapshot()
            if self._wants_prometheus():
                self._send_text(
                    200,
                    render_prometheus(snapshot),
                    "/metrics",
                    t0,
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(200, snapshot, "/metrics", t0)
        elif url.path == "/metrics/fleet":
            document = self.server.fleet()
            if self._wants_prometheus():
                self._send_text(
                    200,
                    render_prometheus(document["metrics"]),
                    "/metrics/fleet",
                    t0,
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                self._send_json(200, document, "/metrics/fleet", t0)
        else:
            self._send_json(
                404, {"error": f"unknown path {url.path!r}"}, UNKNOWN_ENDPOINT, t0
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        t0 = time.perf_counter()
        self._begin_request()
        url = urlparse(self.path)
        if url.path == "/predict":
            try:
                body = self._read_body()
            except ModelError as exc:
                self._send_json(400, {"error": str(exc)}, "/predict", t0)
                return
            self._predict(body, t0)
        elif url.path == "/predict/batch":
            self._predict_batch(t0)
        else:
            self._send_json(
                404, {"error": f"unknown path {url.path!r}"}, UNKNOWN_ENDPOINT, t0
            )

    # ------------------------------------------------------------------
    def _predict(self, request: dict, t0: float) -> None:
        app = request.get("app")
        other = request.get("other")
        model = request.get("model")
        if not app or not other:
            self._send_json(
                400,
                {"error": "both 'app' and 'other' are required"},
                "/predict",
                t0,
            )
            return
        try:
            document = self.server.predict_one(str(app), str(other), model)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)}, "/predict", t0)
            return
        self._send_json(200, document, "/predict", t0)

    def _predict_batch(self, t0: float) -> None:
        try:
            body = self._read_body()
            requests = body.get("requests")
            if not isinstance(requests, list):
                raise ModelError(
                    "'requests' must be a list of [app, other, model] entries"
                )
            pairs: List[Tuple[str, str, Optional[str]]] = []
            for entry in requests:
                if not isinstance(entry, (list, tuple)) or len(entry) not in (2, 3):
                    raise ModelError(
                        "each request must be [app, other, model] or "
                        "[app, other] (model null/omitted = all models)"
                    )
                model = entry[2] if len(entry) == 3 else None
                pairs.append(
                    (
                        str(entry[0]),
                        str(entry[1]),
                        str(model) if model is not None else None,
                    )
                )
            document = self.server.predict_batch(pairs)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)}, "/predict/batch", t0)
            return
        self._send_json(200, document, "/predict/batch", t0)


class _BatchSlot:
    """One waiting request inside the micro-batcher."""

    __slots__ = ("triples", "done", "results", "error")

    def __init__(self, triples: List[Tuple[str, str, str]]) -> None:
        self.triples = triples
        self.done = threading.Event()
        self.results: Optional[list] = None
        self.error: Optional[BaseException] = None


class _MicroBatcher:
    """Coalesces concurrent predict calls into shared ``predict_batch`` solves.

    The first thread to enqueue into an empty queue becomes the flush
    leader: it sleeps ``window`` seconds (the coalescing opportunity), then
    drains the whole queue and scores every queued triple in chunks of at
    most ``max_size`` requests per engine call.  Followers block on their
    slot's event.  Every request in one flush is answered by the same
    :class:`ServingState`, so a hot reload can never split one coalesced
    batch across two engine versions.

    If a combined solve raises (one request naming an unknown app/model),
    the flush falls back to scoring each request separately so only the
    offending request fails — coalescing must never punish innocent
    neighbours.
    """

    def __init__(
        self, server: "PredictionServer", window: float, max_size: int
    ) -> None:
        self._server = server
        self.window = window
        self.max_size = max(1, int(max_size))
        self._lock = threading.Lock()
        self._queue: List[_BatchSlot] = []

    def submit(self, triples: List[Tuple[str, str, str]]) -> list:
        slot = _BatchSlot(triples)
        with self._lock:
            self._queue.append(slot)
            leader = len(self._queue) == 1
        if leader:
            if self.window > 0:
                time.sleep(self.window)
            self._flush()
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        return slot.results  # type: ignore[return-value]

    def _flush(self) -> None:
        with self._lock:
            slots, self._queue = self._queue, []
        if not slots:  # pragma: no cover - leader always owns >= 1 slot
            return
        state = self._server.state
        if telemetry.enabled():
            registry = telemetry.registry()
            registry.counter_inc("serving.microbatch_flushes")
            registry.observe("serving.microbatch_size", float(len(slots)))
        if logs.enabled():
            # Emitted on the flush leader's handler thread, so the event
            # inherits the leader's bound X-Request-Id.
            logs.log_event(
                "serving.microbatch_flush",
                slots=len(slots),
                triples=sum(len(slot.triples) for slot in slots),
                version=state.version,
            )
        for chunk_start in range(0, len(slots), self.max_size):
            chunk = slots[chunk_start : chunk_start + self.max_size]
            combined = [t for slot in chunk for t in slot.triples]
            try:
                predictions = state.engine.predict_batch(combined)
            except ReproError:
                # One bad request poisons the combined solve; isolate it.
                for slot in chunk:
                    try:
                        slot.results = state.engine.predict_batch(slot.triples)
                    except BaseException as exc:  # noqa: BLE001 - handed to waiter
                        slot.error = exc
                    slot.done.set()
                continue
            except BaseException as exc:  # noqa: BLE001 - handed to waiters
                for slot in chunk:
                    slot.error = exc
                    slot.done.set()
                continue
            cursor = 0
            for slot in chunk:
                slot.results = predictions[cursor : cursor + len(slot.triples)]
                cursor += len(slot.triples)
                slot.done.set()


class PredictionServer(ThreadingHTTPServer):
    """Serves a fitted prediction engine over HTTP, hot-reloadable.

    Args:
        artifact: a fitted-model artifact to serve (static mode).  Mutually
            exclusive with ``registry``.
        host: bind address (default loopback).
        port: bind port (0 lets the OS pick one — handy in tests; read the
            chosen port back from :attr:`server_port`).
        registry: a :class:`ModelRegistry` to serve from; the currently
            promoted version is loaded at startup and a watcher thread
            follows subsequent promotions/rollbacks.
        reload_interval: seconds between registry pointer polls.
        batch_window: micro-batching coalescing window in seconds
            (0 = micro-batching off, the default).
        batch_max_size: max coalesced requests per engine solve.
        reuse_port: bind with ``SO_REUSEPORT`` so sibling processes can
            share the port (pre-fork sharding).
        stats_dir: directory for the per-pid fleet stats rendezvous (see
            :mod:`repro.serving.fleet`).  ``None`` (default) keeps the
            server standalone; ``/metrics/fleet`` then reports a fleet of
            one.
        stats_interval: seconds between periodic stats publishes (the
            server also publishes synchronously before answering
            ``/metrics/fleet`` or ``/healthz``).
    """

    daemon_threads = True

    def __init__(
        self,
        artifact: Optional[ModelArtifact] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional[ModelRegistry] = None,
        reload_interval: float = 1.0,
        batch_window: float = 0.0,
        batch_max_size: int = 64,
        reuse_port: bool = False,
        stats_dir: "Optional[str | Path]" = None,
        stats_interval: float = 2.0,
    ) -> None:
        if (artifact is None) == (registry is None):
            raise ModelError(
                "PredictionServer needs exactly one of 'artifact' or 'registry'"
            )
        self._reuse_port = reuse_port  # consumed by server_bind during init
        super().__init__((host, port), _Handler)
        self.registry = registry
        self.reload_interval = reload_interval
        if registry is not None:
            version, artifact = registry.load_current()
        else:
            assert artifact is not None
            version = str(artifact.metadata.get("version") or UNVERSIONED)
        self.state = ServingState(
            artifact=artifact, engine=artifact.engine(), version=version
        )
        self.started_at = time.time()
        self.reloads = 0
        self.reload_failures = 0
        self.last_reload_error: Optional[str] = None
        self._requests_observed = 0
        self._requests_lock = threading.Lock()
        self._batcher = (
            _MicroBatcher(self, batch_window, batch_max_size)
            if batch_window > 0
            else None
        )
        self._stop_watcher = threading.Event()
        self._watcher: Optional[threading.Thread] = None
        if registry is not None:
            self._watcher = threading.Thread(
                target=self._watch_registry, daemon=True, name="registry-watcher"
            )
            self._watcher.start()
        self.stats_dir = Path(stats_dir) if stats_dir is not None else None
        self.stats_interval = stats_interval
        self._stats_thread: Optional[threading.Thread] = None
        if self.stats_dir is not None:
            self.publish_stats()
            self._stats_thread = threading.Thread(
                target=self._publish_loop, daemon=True, name="stats-publisher"
            )
            self._stats_thread.start()

    # Back-compat conveniences: the pre-registry server exposed these.
    @property
    def artifact(self) -> ModelArtifact:
        return self.state.artifact

    @property
    def engine(self) -> PredictionEngine:
        return self.state.engine

    @property
    def requests_served(self) -> int:
        with self._requests_lock:
            return self._requests_observed

    def note_request(self) -> None:
        """Count one served response (every endpoint, every status)."""
        with self._requests_lock:
            self._requests_observed += 1

    # ------------------------------------------------------------------
    # Socket options
    # ------------------------------------------------------------------
    def server_bind(self) -> None:
        if self._reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def _watch_registry(self) -> None:
        while not self._stop_watcher.wait(self.reload_interval):
            self.reload_now()

    def reload_now(self) -> bool:
        """One synchronous reload check; True if a new version swapped in.

        Reads the registry pointer; on a flip, verifies and fits the new
        artifact *before* touching the live bundle, then swaps it in a
        single attribute assignment.  Any failure — damaged artifact,
        vanished registry, garbled pointer — leaves the old bundle serving
        and is counted in ``serving.reload_failures``.
        """
        if self.registry is None:
            return False
        try:
            version = self.registry.current_version()
            if version is None or version == self.state.version:
                return False
            artifact = self.registry.verify(version)
            fresh = ServingState(
                artifact=artifact, engine=artifact.engine(), version=version
            )
        except (ReproError, OSError) as exc:
            self.reload_failures += 1
            self.last_reload_error = str(exc)
            if telemetry.enabled():
                telemetry.registry().counter_inc("serving.reload_failures")
            if logs.enabled():
                logs.log_event("serving.reload_failed", error=str(exc))
            return False
        previous = self.state.version
        self.state = fresh  # the atomic swap: one reference assignment
        self.reloads += 1
        self.last_reload_error = None
        if telemetry.enabled():
            telemetry.registry().counter_inc("serving.reloads")
        if logs.enabled():
            logs.log_event("serving.reload", version=version, previous=previous)
        return True

    # ------------------------------------------------------------------
    # Fleet stats (see repro.serving.fleet for the rendezvous protocol)
    # ------------------------------------------------------------------
    def shard_stats(self) -> dict:
        """This process's publishable stats document (metrics included)."""
        state = self.state
        return {
            "pid": os.getpid(),
            "started_at": self.started_at,
            "updated_at": time.time(),
            "version": state.version,
            "shard_requests_served": self.requests_served,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "last_reload_error": self.last_reload_error,
            "metrics": telemetry.registry().snapshot(),
        }

    def publish_stats(self) -> None:
        """Atomically (re)write this shard's stats file (no-op if no dir)."""
        if self.stats_dir is not None:
            fleet.publish_stats(self.stats_dir, self.shard_stats())

    def _publish_loop(self) -> None:
        while not self._stop_watcher.wait(self.stats_interval):
            self.publish_stats()

    def fleet(self) -> dict:
        """The merged fleet view: every live shard's stats folded together.

        Publishes this shard's own stats synchronously first, so the
        answering shard is always current in the merge; without a stats
        dir this is a fleet of one.
        """
        if self.stats_dir is not None:
            self.publish_stats()
            documents = fleet.read_shard_documents(self.stats_dir)
            if documents:
                document = fleet.fleet_document(documents)
            else:
                document = fleet.fleet_document([self.shard_stats()])
        else:
            document = fleet.fleet_document([self.shard_stats()])
        if telemetry.enabled():
            telemetry.registry().gauge_max(
                "serving.fleet_shards", float(document["shard_count"])
            )
        return document

    # ------------------------------------------------------------------
    # Endpoint documents (thread-safe: each reads one immutable bundle)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        state = self.state
        fleet_view = self.fleet()
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "version": state.version,
            "shard_requests_served": self.requests_served,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "last_reload_error": self.last_reload_error,
            "pid": os.getpid(),
            "registry": str(self.registry.root) if self.registry else None,
            "models": state.engine.model_names,
            "apps": sorted(state.engine.signatures),
            "metadata": dict(state.artifact.metadata),
            "fleet": {
                "shard_count": fleet_view["shard_count"],
                "requests_served": fleet_view["requests_served"],
                "shards": fleet_view["shards"],
            },
        }

    def models(self) -> dict:
        state = self.state
        return {
            "models": state.engine.model_names,
            "apps": sorted(state.engine.signatures),
            "catalog_size": len(state.artifact.observations),
            "version": state.version,
        }

    def _score(
        self, state: ServingState, triples: List[Tuple[str, str, str]]
    ) -> list:
        if self._batcher is not None:
            return self._batcher.submit(triples)
        return state.engine.predict_batch(triples)

    def predict_one(self, app: str, other: str, model: Optional[str]) -> dict:
        """One pairing; all models when ``model`` is omitted."""
        state = self.state
        names = [model] if model else state.engine.model_names
        predictions = self._score(
            state, [(app, other, name) for name in names]
        )
        return {
            "app": app,
            "other": other,
            "version": state.version,
            "predictions": {p.model: p.predicted for p in predictions},
        }

    def predict_batch(
        self, pairs: Sequence[Tuple[str, str, Optional[str]]]
    ) -> dict:
        """Score a batch; entries with ``model=None`` expand to all models."""
        state = self.state
        triples: List[Tuple[str, str, str]] = []
        for app, other, model in pairs:
            if model is None:
                triples.extend(
                    (app, other, name) for name in state.engine.model_names
                )
            else:
                triples.append((app, other, model))
        predictions = self._score(state, triples)
        if telemetry.enabled():
            telemetry.registry().counter_inc(
                "serving.predictions", amount=float(len(predictions))
            )
        return {
            "version": state.version,
            "predictions": [
                {
                    "app": p.app,
                    "other": p.other,
                    "model": p.model,
                    "predicted": p.predicted,
                }
                for p in predictions
            ],
        }

    # ------------------------------------------------------------------
    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread (tests and `repro serve`)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def server_close(self) -> None:
        self._stop_watcher.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5.0)
        if self._stats_thread is not None:
            self._stats_thread.join(timeout=5.0)
            self.publish_stats()  # final numbers for any still-running sibling
        super().server_close()
