"""A stdlib-only batch prediction server over a fitted artifact.

``repro serve`` loads (or fits) a :class:`~repro.serving.artifact.ModelArtifact`,
builds a :class:`~repro.core.models.PredictionEngine`, and answers HTTP:

* ``GET  /healthz``        — liveness + artifact metadata.
* ``GET  /models``         — fitted model names, apps, catalog size.
* ``GET  /predict``        — one triple via query string
  (``?app=fftw&other=milc&model=Queue``; ``model`` defaults to all).
* ``POST /predict``        — same as a JSON body
  (``{"app": ..., "other": ..., "model": ...}``).
* ``POST /predict/batch``  — ``{"requests": [[app, other, model], ...]}``,
  scored in one :meth:`~repro.core.models.PredictionEngine.predict_batch`
  call (the match computation runs once per distinct co-runner).
* ``GET  /metrics``        — the telemetry registry's snapshot as JSON.

Requests are served by a :class:`ThreadingHTTPServer`; the engine's fitted
state is read-only after construction so concurrent reads need no locking.
With telemetry enabled, every request increments
``serving.requests{endpoint=...,status=...}`` and lands its latency in the
``serving.request_seconds{endpoint=...}`` histogram.

Bad inputs map to structured JSON errors: unknown apps/models and missing
fields are 400s carrying the :class:`~repro.errors.ModelError` message,
unknown paths are 404s.  The process never dies on a bad request.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import telemetry
from ..core.models import PredictionEngine
from ..errors import ModelError, ReproError
from .artifact import ModelArtifact

__all__ = ["PredictionServer"]


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the server instance hangs off ``self.server``."""

    server: "PredictionServer"  # type: ignore[assignment]

    # Silence the default stderr access log — the serving metrics cover it.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    def _send_json(self, status: int, document: dict, endpoint: str, t0: float) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        # Metrics land before the response bytes: a client that has seen the
        # reply must also see the request counted.
        if telemetry.enabled():
            registry = telemetry.registry()
            registry.counter_inc(
                "serving.requests", endpoint=endpoint, status=status
            )
            registry.observe(
                "serving.request_seconds", time.perf_counter() - t0, endpoint=endpoint
            )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ModelError("request body must be a JSON object")
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise ModelError("request body must be a JSON object")
        return document

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        t0 = time.perf_counter()
        url = urlparse(self.path)
        if url.path == "/healthz":
            self._send_json(200, self.server.health(), "/healthz", t0)
        elif url.path == "/models":
            self._send_json(200, self.server.models(), "/models", t0)
        elif url.path == "/predict":
            query = parse_qs(url.query)
            self._predict(
                {
                    "app": (query.get("app") or [None])[0],
                    "other": (query.get("other") or [None])[0],
                    "model": (query.get("model") or [None])[0],
                },
                t0,
            )
        elif url.path == "/metrics":
            self._send_json(200, telemetry.registry().snapshot(), "/metrics", t0)
        else:
            self._send_json(
                404, {"error": f"unknown path {url.path!r}"}, url.path, t0
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        t0 = time.perf_counter()
        url = urlparse(self.path)
        if url.path == "/predict":
            try:
                body = self._read_body()
            except ModelError as exc:
                self._send_json(400, {"error": str(exc)}, "/predict", t0)
                return
            self._predict(body, t0)
        elif url.path == "/predict/batch":
            self._predict_batch(t0)
        else:
            self._send_json(
                404, {"error": f"unknown path {url.path!r}"}, url.path, t0
            )

    # ------------------------------------------------------------------
    def _predict(self, request: dict, t0: float) -> None:
        app = request.get("app")
        other = request.get("other")
        model = request.get("model")
        if not app or not other:
            self._send_json(
                400,
                {"error": "both 'app' and 'other' are required"},
                "/predict",
                t0,
            )
            return
        try:
            document = self.server.predict_one(str(app), str(other), model)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)}, "/predict", t0)
            return
        self._send_json(200, document, "/predict", t0)

    def _predict_batch(self, t0: float) -> None:
        try:
            body = self._read_body()
            requests = body.get("requests")
            if not isinstance(requests, list):
                raise ModelError("'requests' must be a list of [app, other, model]")
            triples: List[Tuple[str, str, str]] = []
            for entry in requests:
                if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                    raise ModelError(
                        "each request must be an [app, other, model] triple"
                    )
                triples.append((str(entry[0]), str(entry[1]), str(entry[2])))
            document = self.server.predict_batch(triples)
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)}, "/predict/batch", t0)
            return
        self._send_json(200, document, "/predict/batch", t0)


class PredictionServer(ThreadingHTTPServer):
    """Serves a fitted prediction engine over HTTP.

    Args:
        artifact: the fitted-model artifact to serve from.
        host: bind address (default loopback).
        port: bind port (0 lets the OS pick one — handy in tests; read the
            chosen port back from :attr:`server_port`).
    """

    daemon_threads = True

    def __init__(
        self, artifact: ModelArtifact, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _Handler)
        self.artifact = artifact
        self.engine: PredictionEngine = artifact.engine()
        self.started_at = time.time()
        self._requests_observed = 0

    # ------------------------------------------------------------------
    # Endpoint documents (thread-safe: fitted state is read-only)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "models": self.engine.model_names,
            "apps": sorted(self.engine.signatures),
            "metadata": dict(self.artifact.metadata),
        }

    def models(self) -> dict:
        return {
            "models": self.engine.model_names,
            "apps": sorted(self.engine.signatures),
            "catalog_size": len(self.artifact.observations),
        }

    def predict_one(self, app: str, other: str, model: Optional[str]) -> dict:
        """One pairing; all models when ``model`` is omitted."""
        names = [model] if model else self.engine.model_names
        predictions = self.engine.predict_batch(
            [(app, other, name) for name in names]
        )
        return {
            "app": app,
            "other": other,
            "predictions": {p.model: p.predicted for p in predictions},
        }

    def predict_batch(self, triples: List[Tuple[str, str, str]]) -> dict:
        predictions = self.engine.predict_batch(triples)
        if telemetry.enabled():
            telemetry.registry().counter_inc(
                "serving.predictions", amount=float(len(predictions))
            )
        return {
            "predictions": [
                {
                    "app": p.app,
                    "other": p.other,
                    "model": p.model,
                    "predicted": p.predicted,
                }
                for p in predictions
            ]
        }

    # ------------------------------------------------------------------
    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread (tests and `repro serve`)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread
