"""Versioned on-disk model registry with atomic promotion and rollback.

A registry is a directory of checksummed fitted-model artifacts plus one
pointer file naming the version currently being served::

    registry/
        versions/
            v0001.json      <- save_artifact envelopes (sha256-checksummed)
            v0002.json
            canary.json     <- caller-named versions are fine too
        CURRENT             <- {"version": "v0002", "previous": "v0001", ...}

Every write is atomic-and-durable (temp file + fsync + ``os.replace`` +
directory fsync, via :func:`~repro.serving.artifact.atomic_write_text`), so
readers — including a :class:`~repro.serving.server.PredictionServer`
watcher thread in another process — always see either the old pointer or
the new one, never a torn file.

Promotion is paranoid: :meth:`ModelRegistry.promote` fully loads and
checksum-verifies the candidate artifact *before* the pointer moves, so a
truncated, garbled, or tampered version can never become ``CURRENT``.  The
pointer records the previously-served version, which is what
:meth:`ModelRegistry.rollback` flips back to (after re-verifying it — the
old artifact may have been damaged while it was out of service).

Registry *usage* errors (unknown version, name collision, malformed
pointer, rollback with no history) raise
:class:`~repro.errors.RegistryError`; artifact *content* damage keeps
raising :class:`~repro.errors.ArtifactError`.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..errors import ArtifactError, RegistryError
from .artifact import ModelArtifact, atomic_write_text, load_artifact, save_artifact

__all__ = ["CURRENT_POINTER", "ModelRegistry", "RegistryEntry"]

#: Name of the pointer file inside the registry root.
CURRENT_POINTER = "CURRENT"

#: Version names are path-safe single components: no separators, no dots-only.
_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Auto-assigned version names: v0001, v0002, ... (lexically == numerically
#: sortable up to 9999, and still unambiguous beyond).
_AUTO_RE = re.compile(r"^v(\d{4,})$")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered version, as ``repro registry list`` reports it.

    Attributes:
        version: the version name (file stem under ``versions/``).
        path: the artifact file.
        sha256: the artifact envelope's recorded payload checksum (read
            without verifying; promotion is what verifies).
        current: whether ``CURRENT`` points at this version.
    """

    version: str
    path: Path
    sha256: str
    current: bool

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "path": str(self.path),
            "sha256": self.sha256,
            "current": self.current,
        }


class ModelRegistry:
    """A directory of versioned artifacts behind an atomic ``CURRENT`` pointer.

    Args:
        root: the registry directory (created lazily on first publish).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def versions_dir(self) -> Path:
        return self.root / "versions"

    @property
    def pointer_path(self) -> Path:
        return self.root / CURRENT_POINTER

    def artifact_path(self, version: str) -> Path:
        """Path of one version's artifact file (which may not exist yet)."""
        self._check_name(version)
        return self.versions_dir / f"{version}.json"

    @staticmethod
    def _check_name(version: str) -> None:
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"invalid version name {version!r}: use letters, digits, "
                "'.', '_' or '-' (must start with a letter or digit)"
            )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def next_version(self) -> str:
        """The next auto-assigned version name (``v0001``, ``v0002``, ...)."""
        highest = 0
        if self.versions_dir.is_dir():
            for path in self.versions_dir.glob("v*.json"):
                match = _AUTO_RE.match(path.stem)
                if match:
                    highest = max(highest, int(match.group(1)))
        return f"v{highest + 1:04d}"

    def publish(
        self, artifact: ModelArtifact, version: Optional[str] = None
    ) -> str:
        """Register a new artifact version; does **not** move ``CURRENT``.

        Auto-assigns the next ``vNNNN`` name when ``version`` is omitted.
        Re-publishing an existing version name is refused — versions are
        immutable once written (promote/rollback depend on that).

        Returns:
            the version name the artifact was registered under.
        """
        if version is None:
            version = self.next_version()
        path = self.artifact_path(version)
        if path.exists():
            raise RegistryError(
                f"version {version!r} already exists in {self.root}; "
                "versions are immutable — publish under a new name"
            )
        save_artifact(artifact, path)
        return version

    # ------------------------------------------------------------------
    # Pointer
    # ------------------------------------------------------------------
    def _read_pointer(self) -> Optional[dict]:
        try:
            text = self.pointer_path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:  # pragma: no cover - exotic I/O failure
            raise RegistryError(
                f"cannot read registry pointer {self.pointer_path}: {exc}"
            ) from exc
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"registry pointer {self.pointer_path} is not valid JSON "
                f"(torn write should be impossible — was it hand-edited?): {exc}"
            ) from exc
        if not isinstance(record, dict) or not isinstance(
            record.get("version"), str
        ):
            raise RegistryError(
                f"registry pointer {self.pointer_path} lacks a 'version' field"
            )
        return record

    def current_version(self) -> Optional[str]:
        """The version ``CURRENT`` names, or ``None`` before any promotion."""
        record = self._read_pointer()
        return record["version"] if record else None

    def previous_version(self) -> Optional[str]:
        """The version served before the last promotion, if any."""
        record = self._read_pointer()
        previous = record.get("previous") if record else None
        return previous if isinstance(previous, str) else None

    def _write_pointer(self, version: str, previous: Optional[str]) -> None:
        record = {"version": version, "previous": previous}
        atomic_write_text(
            self.pointer_path, json.dumps(record, sort_keys=True) + "\n"
        )

    # ------------------------------------------------------------------
    # Promotion / rollback
    # ------------------------------------------------------------------
    def verify(self, version: str) -> ModelArtifact:
        """Load and checksum-verify one version's artifact.

        Raises:
            RegistryError: if the version is not registered.
            ArtifactError: if the artifact file is damaged.
        """
        path = self.artifact_path(version)
        if not path.exists():
            known = ", ".join(e.version for e in self.entries()) or "<none>"
            raise RegistryError(
                f"unknown version {version!r} in {self.root} (known: {known})"
            )
        return load_artifact(path)

    def promote(self, version: str) -> ModelArtifact:
        """Atomically point ``CURRENT`` at ``version``; returns its artifact.

        The candidate artifact is fully loaded and checksum-verified first —
        a damaged file raises :class:`ArtifactError` and the pointer does
        not move.  Promoting the already-current version is a no-op (the
        pointer is not rewritten, so watchers see no spurious flip).
        """
        artifact = self.verify(version)
        current = self.current_version()
        if current == version:
            return artifact
        self._write_pointer(version, previous=current)
        return artifact

    def rollback(self) -> Tuple[str, ModelArtifact]:
        """Flip ``CURRENT`` back to the previously-served version.

        Returns:
            ``(version, artifact)`` of the version rolled back to.

        Raises:
            RegistryError: if nothing is current or there is no history.
            ArtifactError: if the previous artifact is damaged (the pointer
                stays where it is).
        """
        record = self._read_pointer()
        if record is None:
            raise RegistryError(f"nothing has been promoted in {self.root} yet")
        previous = record.get("previous")
        if not isinstance(previous, str):
            raise RegistryError(
                f"no rollback history in {self.root}: {record['version']!r} "
                "is the only version ever promoted"
            )
        artifact = self.verify(previous)
        self._write_pointer(previous, previous=record["version"])
        return previous, artifact

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def load(self, version: str) -> ModelArtifact:
        """Alias of :meth:`verify` (loading *is* verifying)."""
        return self.verify(version)

    def load_current(self) -> Tuple[str, ModelArtifact]:
        """The current version name and its verified artifact.

        Raises:
            RegistryError: if nothing has been promoted yet.
        """
        version = self.current_version()
        if version is None:
            raise RegistryError(
                f"nothing has been promoted in {self.root} yet; run "
                "`repro registry promote <version>` first"
            )
        return version, self.verify(version)

    def entries(self) -> List[RegistryEntry]:
        """Every registered version, sorted by name, current one flagged."""
        current = None
        try:
            current = self.current_version()
        except RegistryError:
            pass  # a garbled pointer should not hide the version listing
        rows: List[RegistryEntry] = []
        if self.versions_dir.is_dir():
            for path in sorted(self.versions_dir.glob("*.json")):
                sha = ""
                try:
                    envelope = json.loads(path.read_text())
                    if isinstance(envelope, dict):
                        sha = str(envelope.get("sha256") or "")
                except (OSError, json.JSONDecodeError):
                    sha = "<unreadable>"
                rows.append(
                    RegistryEntry(
                        version=path.stem,
                        path=path,
                        sha256=sha,
                        current=path.stem == current,
                    )
                )
        return rows

    def describe(self) -> dict:
        """JSON-ready summary (what ``repro registry list --json`` prints)."""
        try:
            current = self.current_version()
        except RegistryError:
            current = None
        return {
            "root": str(self.root),
            "current": current,
            "previous": self.previous_version() if current else None,
            "versions": [entry.to_dict() for entry in self.entries()],
        }
