"""Fitted-model artifacts and the batch prediction server.

The campaign measures; this package serves.  A
:class:`~repro.serving.artifact.ModelArtifact` freezes everything the four
prediction models need (catalog signatures, degradation tables, impact
signatures, calibration) into one checksummed JSON file, and
:class:`~repro.serving.server.PredictionServer` answers single and batch
prediction requests over plain HTTP — no campaign cache required at
serving time.
"""

from .artifact import ARTIFACT_FORMAT, ModelArtifact, load_artifact, save_artifact
from .server import PredictionServer

__all__ = [
    "ARTIFACT_FORMAT",
    "ModelArtifact",
    "load_artifact",
    "save_artifact",
    "PredictionServer",
]
