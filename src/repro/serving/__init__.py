"""Fitted-model artifacts, the model registry, and the prediction servers.

The campaign measures; this package serves.  A
:class:`~repro.serving.artifact.ModelArtifact` freezes everything the four
prediction models need (catalog signatures, degradation tables, impact
signatures, calibration) into one checksummed JSON file; a
:class:`~repro.serving.registry.ModelRegistry` keeps many such artifacts as
immutable versions behind an atomically-updated ``CURRENT`` pointer with
promote/rollback verbs; :class:`~repro.serving.server.PredictionServer`
answers single and batch prediction requests over plain HTTP, hot-reloading
on registry promotions without dropping a request; and
:class:`~repro.serving.prefork.ShardedPredictionServer` pre-forks N such
servers onto one ``SO_REUSEPORT``-shared port for per-core parallelism.
No campaign cache is required at serving time.
"""

from .artifact import (
    ARTIFACT_FORMAT,
    ModelArtifact,
    atomic_write_text,
    load_artifact,
    save_artifact,
)
from .fleet import fleet_document, publish_stats, read_shard_documents, stats_path
from .prefork import ShardedPredictionServer
from .registry import CURRENT_POINTER, ModelRegistry, RegistryEntry
from .server import PredictionServer, ServingState, UNKNOWN_ENDPOINT

__all__ = [
    "ARTIFACT_FORMAT",
    "ModelArtifact",
    "atomic_write_text",
    "load_artifact",
    "save_artifact",
    "CURRENT_POINTER",
    "ModelRegistry",
    "RegistryEntry",
    "PredictionServer",
    "ServingState",
    "UNKNOWN_ENDPOINT",
    "ShardedPredictionServer",
    "fleet_document",
    "publish_stats",
    "read_shard_documents",
    "stats_path",
]
