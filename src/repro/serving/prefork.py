"""Pre-forked multi-process serving: N servers sharing one port.

A single :class:`~repro.serving.server.PredictionServer` is a threaded
stdlib server, which is plenty for functional tests but leaves the GIL in
charge of throughput.  :class:`ShardedPredictionServer` spawns N worker
*processes*, each binding its own listening socket to the **same**
``(host, port)`` with ``SO_REUSEPORT`` — the kernel then hashes incoming
connections across the listeners, giving per-core parallelism with no
user-space load balancer and no shared accept lock.

Each worker is a full :class:`PredictionServer`: it serves from the same
on-disk registry (or artifact file), runs its own hot-reload watcher, and
reports its own ``pid`` in ``/healthz`` — so a promotion flips every shard
within one ``reload_interval``, and clients can observe the sharding by
sampling pids.  Every worker also publishes its stats document into a
shared ``stats_dir`` (see :mod:`repro.serving.fleet`), so ``GET
/metrics/fleet`` on the shared port — whichever shard the kernel picks —
answers with the whole fleet's merged metrics, and ``/healthz`` shows a
promotion flipping shard-by-shard.

Workers are handed *paths*, not live objects: each process loads the
artifact/registry from disk itself, which keeps the parent↔child surface
picklable and means a worker restart always serves the current on-disk
state.
"""

from __future__ import annotations

import multiprocessing
import shutil
import socket
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from .. import telemetry
from ..telemetry import logs
from ..errors import ModelError

__all__ = ["ShardedPredictionServer"]


def _worker_main(
    host: str,
    port: int,
    artifact_path: Optional[str],
    registry_root: Optional[str],
    reload_interval: float,
    batch_window: float,
    batch_max_size: int,
    telemetry_on: bool,
    stats_dir: Optional[str],
    stats_interval: float,
    log_target: Optional[str],
) -> None:  # pragma: no cover - runs in child processes
    # Imported here so a spawn-context child pays the import cost itself.
    from .artifact import load_artifact
    from .registry import ModelRegistry
    from .server import PredictionServer

    if telemetry_on:
        telemetry.enable()
    logs.configure(log_target)
    server = PredictionServer(
        artifact=load_artifact(artifact_path) if artifact_path else None,
        host=host,
        port=port,
        registry=ModelRegistry(registry_root) if registry_root else None,
        reload_interval=reload_interval,
        batch_window=batch_window,
        batch_max_size=batch_max_size,
        reuse_port=True,
        stats_dir=stats_dir,
        stats_interval=stats_interval,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def _claim_port(host: str) -> "tuple[int, socket.socket]":
    """Pick a free port, holding a placeholder ``SO_REUSEPORT`` bind on it.

    The placeholder never calls ``listen()``, so the kernel routes no
    connections to it; it exists only to keep the port ours until every
    worker has bound its own listening socket.
    """
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    placeholder.bind((host, 0))
    return placeholder.getsockname()[1], placeholder


class ShardedPredictionServer:
    """N pre-forked :class:`PredictionServer` processes on one shared port.

    Args:
        artifact_path: fitted-model artifact file to serve (static mode).
            Mutually exclusive with ``registry_root``.
        registry_root: model-registry directory to serve and hot-follow.
        host: bind address.
        port: shared port (0 = pick a free one; read it back from
            :attr:`port` after construction).
        workers: worker process count (>= 1).
        reload_interval / batch_window / batch_max_size: forwarded to every
            worker's :class:`PredictionServer`.
        stats_dir: shared directory for the per-shard stats rendezvous
            (``/metrics/fleet`` aggregation).  ``None`` (default) creates a
            private temp dir, removed on :meth:`stop`.
        stats_interval: seconds between each shard's periodic stats
            publishes.
    """

    def __init__(
        self,
        artifact_path: Optional[str | Path] = None,
        registry_root: Optional[str | Path] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        reload_interval: float = 1.0,
        batch_window: float = 0.0,
        batch_max_size: int = 64,
        stats_dir: Optional[str | Path] = None,
        stats_interval: float = 2.0,
    ) -> None:
        if (artifact_path is None) == (registry_root is None):
            raise ModelError(
                "ShardedPredictionServer needs exactly one of "
                "'artifact_path' or 'registry_root'"
            )
        if workers < 1:
            raise ModelError(f"workers must be >= 1, got {workers}")
        self.host = host
        self.workers = workers
        self._placeholder: Optional[socket.socket] = None
        if port == 0:
            port, self._placeholder = _claim_port(host)
        self.port = port
        self._owns_stats_dir = stats_dir is None
        if stats_dir is None:
            stats_dir = tempfile.mkdtemp(prefix="repro-serving-stats-")
        self.stats_dir = Path(stats_dir)
        self._spec = (
            host,
            port,
            str(artifact_path) if artifact_path else None,
            str(registry_root) if registry_root else None,
            reload_interval,
            batch_window,
            batch_max_size,
            telemetry.enabled(),
            str(self.stats_dir),
            stats_interval,
            logs.target(),
        )
        self._processes: List[multiprocessing.Process] = []

    # ------------------------------------------------------------------
    def start(self, ready_timeout: float = 30.0) -> None:
        """Spawn every worker and wait until the shared port accepts."""
        for index in range(self.workers):
            process = multiprocessing.Process(
                target=_worker_main,
                args=self._spec,
                daemon=True,
                name=f"serving-shard-{index}",
            )
            process.start()
            self._processes.append(process)
        deadline = time.monotonic() + ready_timeout
        while True:
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=1.0
                ):
                    break
            except OSError:
                if time.monotonic() > deadline:
                    self.stop()
                    raise TimeoutError(
                        f"no serving shard accepted on "
                        f"{self.host}:{self.port} within {ready_timeout}s"
                    )
                if any(p.exitcode not in (None, 0) for p in self._processes):
                    self.stop()
                    raise RuntimeError(
                        "a serving shard died during startup; check stderr"
                    )
                time.sleep(0.05)
        # All connections now land on real listeners; the placeholder bind
        # (which never listens, so receives nothing) can go.
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate and reap every worker (idempotent)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=timeout)
        self._processes.clear()
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._owns_stats_dir:
            shutil.rmtree(self.stats_dir, ignore_errors=True)

    def alive(self) -> int:
        """How many worker processes are currently alive."""
        return sum(1 for p in self._processes if p.is_alive())

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedPredictionServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
