"""FFTW skeleton — transpose-dominated 2-D FFT (paper §II).

"FFTW ... contain[s] expensive all-to-all communications ... [and] performs
[little] computation between two communication phases."  Each iteration is a
2-D transform: pack → alltoall (row/column transpose) → small twiddle
compute → alltoall back → unpack.  Almost all of its time is all-to-all
traffic, which is why it is the paper's most network-sensitive application
(Fig. 7: >250% degradation at high switch utilization).
"""

from __future__ import annotations

from typing import Any, Generator

from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import MS
from ..base import Workload
from ..traffic import TrafficSummary, half_core_layout, packets_of

__all__ = ["FFTW"]


class FFTW(Workload):
    """2-D FFT proxy: two all-to-alls per iteration, minimal compute.

    Defaults reproduce the paper's 2000×2000 complex transform split over
    144 ranks: each rank holds ~500 KB and sends ~bytes_per_pair to every
    other rank per transpose.

    Args:
        iterations: transforms to perform per run.
        bytes_per_pair: alltoall payload per rank pair.
        pack_compute: local pack/twiddle time per phase (seconds).
        jitter: lognormal compute-noise shape.
    """

    name = "fftw"

    def __init__(
        self,
        iterations: int = 3,
        bytes_per_pair: int = 2048,
        pack_compute: float = 0.15 * MS,
        jitter: float = 0.02,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if bytes_per_pair < 1:
            raise ConfigurationError(f"bytes_per_pair must be >= 1, got {bytes_per_pair}")
        self.iterations = iterations
        self.bytes_per_pair = bytes_per_pair
        self.pack_compute = pack_compute
        self.jitter = jitter

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        for _ in range(self.iterations):
            # Row FFTs + pack for transpose.
            yield from ctx.compute(self.pack_compute, self.jitter)
            yield from ctx.comm.alltoall(None, self.bytes_per_pair)
            # Column FFTs (cheap relative to communication for FFTW).
            yield from ctx.compute(self.pack_compute, self.jitter)
            yield from ctx.comm.alltoall(None, self.bytes_per_pair)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, ranks_per_node = half_core_layout(config)
        inter_peers = max(0, ranks - ranks_per_node)
        # Two pairwise all-to-alls per iteration: each rank exchanges
        # bytes_per_pair with every peer in ranks-1 sendrecv phases.
        return TrafficSummary(
            ranks=ranks,
            rounds=self.iterations,
            compute=2.0 * self.pack_compute,
            packets=2.0 * ranks * inter_peers * packets_of(self.bytes_per_pair, config.network.mtu),
            bytes=2.0 * ranks * inter_peers * self.bytes_per_pair,
            blocking_bytes=2.0 * max(0, ranks - 1) * self.bytes_per_pair,
            blocking_latencies=2.0 * max(0, ranks - 1),
        )
