"""MILC skeleton — lattice QCD conjugate-gradient solver (paper §II).

"MILC spends most of its time running the conjugate gradient solver, which
means that most of its communications involve point to point communications
with the neighbors and global reductions once in a while."  Each CG
iteration is a 4-D halo exchange (8 neighbours) plus two latency-critical
8-byte allreduces (the CG dot products), with a modest matrix-vector
compute in between.  Fig. 7 places MILC between the FFT codes and the
stencil codes: ~20% degradation at 40% utilization, >100% at 92%.
"""

from __future__ import annotations

from typing import Any, Generator

from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import KB, MS
from ..base import Workload
from ..patterns import balanced_grid, halo_exchange, torus_neighbors
from ..traffic import (
    TrafficSummary,
    allreduce_phases,
    half_core_layout,
    internode_fraction,
    packets_of,
)

__all__ = ["MILC"]


class MILC(Workload):
    """Lattice-QCD CG proxy on a 4-D process torus.

    Args:
        iterations: CG iterations per run.
        halo_bytes: per-neighbour message size per iteration.
        compute_per_iter: local su3 matrix-vector time per iteration.
        jitter: lognormal compute-noise shape.
    """

    name = "milc"

    def __init__(
        self,
        iterations: int = 60,
        halo_bytes: int = 4 * KB,
        compute_per_iter: float = 0.12 * MS,
        jitter: float = 0.02,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if halo_bytes < 1:
            raise ConfigurationError(f"halo_bytes must be >= 1, got {halo_bytes}")
        self.iterations = iterations
        self.halo_bytes = halo_bytes
        self.compute_per_iter = compute_per_iter
        self.jitter = jitter

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        shape = balanced_grid(ctx.size, dims=4)
        neighbors = torus_neighbors(ctx.rank, shape)
        for iteration in range(self.iterations):
            # Dslash application: halo exchange + local stencil compute.
            yield from halo_exchange(ctx, neighbors, self.halo_bytes, tag=10)
            yield from ctx.compute(self.compute_per_iter, self.jitter)
            # CG dot products: two global reductions per iteration.
            yield from ctx.comm.allreduce(None, nbytes=8)
            yield from ctx.comm.allreduce(None, nbytes=8)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, ranks_per_node = half_core_layout(config)
        neighbors = len(torus_neighbors(0, balanced_grid(ranks, dims=4)))
        inter = internode_fraction(ranks, ranks_per_node)
        phases = allreduce_phases(ranks)
        mtu = config.network.mtu
        return TrafficSummary(
            ranks=ranks,
            rounds=self.iterations,
            compute=self.compute_per_iter,
            packets=(ranks * neighbors * packets_of(self.halo_bytes, mtu)
                     + 2.0 * 2.0 * max(0, ranks - 1)) * inter,
            bytes=(ranks * neighbors * self.halo_bytes
                   + 2.0 * 2.0 * max(0, ranks - 1) * 8) * inter,
            blocking_bytes=neighbors * self.halo_bytes,
            # Halo post/drain plus two latency-critical CG dot products.
            blocking_latencies=2.0 + 2.0 * phases,
        )
