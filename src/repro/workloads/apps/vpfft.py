"""VPFFT skeleton — crystal-plasticity FFT solver (paper §II).

Like FFTW it is built around expensive all-to-alls, but "VPFFT performs
expensive computation between two communication phases", giving it some
slack to absorb network slowdown — yet not enough to escape >250%
degradation at very high switch utilization (Fig. 7), with visibly noisier
behaviour than FFTW.
"""

from __future__ import annotations

from typing import Any, Generator

from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import MS
from ..base import Workload
from ..traffic import TrafficSummary, half_core_layout, packets_of

__all__ = ["VPFFT"]


class VPFFT(Workload):
    """FFT-based micromechanics proxy: compute / alltoall / compute / alltoall.

    Args:
        iterations: solver iterations per run.
        bytes_per_pair: alltoall payload per rank pair.
        stress_compute: constitutive-update compute per phase (seconds) —
            the "expensive computation" between transforms.
        jitter: lognormal compute-noise shape (VPFFT's larger default makes
            its degradation curve oscillate, as observed in the paper).
    """

    name = "vpfft"

    def __init__(
        self,
        iterations: int = 2,
        bytes_per_pair: int = 4096,
        stress_compute: float = 0.8 * MS,
        jitter: float = 0.08,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if bytes_per_pair < 1:
            raise ConfigurationError(f"bytes_per_pair must be >= 1, got {bytes_per_pair}")
        self.iterations = iterations
        self.bytes_per_pair = bytes_per_pair
        self.stress_compute = stress_compute
        self.jitter = jitter

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        for _ in range(self.iterations):
            # Constitutive model evaluation in real space.
            yield from ctx.compute(self.stress_compute, self.jitter)
            yield from ctx.comm.alltoall(None, self.bytes_per_pair)
            # Green's-operator application in Fourier space.
            yield from ctx.compute(self.stress_compute, self.jitter)
            yield from ctx.comm.alltoall(None, self.bytes_per_pair)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, ranks_per_node = half_core_layout(config)
        inter_peers = max(0, ranks - ranks_per_node)
        # Same alltoall shape as FFTW, but with heavy compute between phases.
        return TrafficSummary(
            ranks=ranks,
            rounds=self.iterations,
            compute=2.0 * self.stress_compute,
            packets=2.0 * ranks * inter_peers * packets_of(self.bytes_per_pair, config.network.mtu),
            bytes=2.0 * ranks * inter_peers * self.bytes_per_pair,
            blocking_bytes=2.0 * max(0, ranks - 1) * self.bytes_per_pair,
            blocking_latencies=2.0 * max(0, ranks - 1),
        )
