"""Lulesh skeleton — Lagrangian shock hydrodynamics (paper §II).

"Lulesh is a typical finite difference method code with local communication
phases interleaved by intensive computation phases."  It requires a cubic
number of processes (64 on Cab: 2 per socket on 16 nodes).  Each timestep is
a face-neighbour halo exchange, a heavy element/node compute phase, and the
global timestep-constraint allreduce.  Fig. 7 shows mild sensitivity: ~8%
degradation at 50% utilization, ~15% at 92%.
"""

from __future__ import annotations

from typing import Any, Generator

from ...cluster import PerSocketPlacement, Placement
from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import KB, MS
from ..base import Workload, cubic_rank_count
from ..patterns import balanced_grid, halo_exchange, torus_neighbors
from ..traffic import TrafficSummary, allreduce_phases, internode_fraction, packets_of

__all__ = ["Lulesh"]


class Lulesh(Workload):
    """Explicit hydro proxy on a 3-D process grid.

    Args:
        iterations: timesteps per run.
        face_bytes: per-face halo message size.
        compute_per_iter: element+node kernel time per timestep.
        jitter: lognormal compute-noise shape.
    """

    name = "lulesh"

    def __init__(
        self,
        iterations: int = 25,
        face_bytes: int = 8 * KB,
        compute_per_iter: float = 0.85 * MS,
        jitter: float = 0.02,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if face_bytes < 1:
            raise ConfigurationError(f"face_bytes must be >= 1, got {face_bytes}")
        self.iterations = iterations
        self.face_bytes = face_bytes
        self.compute_per_iter = compute_per_iter
        self.jitter = jitter

    def preferred_placement(self, config: MachineConfig) -> Placement:
        """Largest cubic rank count that fits half the cores.

        On Cab this reproduces the paper exactly: 4³ = 64 ranks as 2 per
        socket on 16 of the 18 nodes.
        """
        _, ranks_per_socket, node_count = cubic_rank_count(config)
        return PerSocketPlacement(ranks_per_socket, node_count)

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        shape = balanced_grid(ctx.size, dims=3)
        neighbors = torus_neighbors(ctx.rank, shape)
        for _ in range(self.iterations):
            # Nodal/positional halo exchange with face neighbours.
            yield from halo_exchange(ctx, neighbors, self.face_bytes, tag=20)
            # Stress, hourglass, and equation-of-state kernels dominate.
            yield from ctx.compute(self.compute_per_iter, self.jitter)
            # Courant/hydro timestep constraint: one global min-reduction.
            yield from ctx.comm.allreduce(None, nbytes=8)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        k, ranks_per_socket, node_count = cubic_rank_count(config)
        ranks = k**3
        ranks_per_node = ranks_per_socket * config.node.sockets
        neighbors = len(torus_neighbors(0, balanced_grid(ranks, dims=3)))
        inter = internode_fraction(ranks, ranks_per_node)
        phases = allreduce_phases(ranks)
        mtu = config.network.mtu
        return TrafficSummary(
            ranks=ranks,
            rounds=self.iterations,
            compute=self.compute_per_iter,
            packets=(ranks * neighbors * packets_of(self.face_bytes, mtu)
                     + 2.0 * max(0, ranks - 1)) * inter,
            bytes=(ranks * neighbors * self.face_bytes + 2.0 * max(0, ranks - 1) * 8) * inter,
            blocking_bytes=neighbors * self.face_bytes,
            # Concurrent halo exchange ≈ two traversals (post, drain), plus
            # the latency-bound allreduce phases.
            blocking_latencies=2.0 + phases,
        )
