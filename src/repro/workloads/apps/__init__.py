"""The six application skeletons the paper evaluates (§II)."""

from .amg import AMG
from .fftw import FFTW
from .lulesh import Lulesh
from .mcb import MCB
from .milc import MILC
from .vpfft import VPFFT

__all__ = ["AMG", "FFTW", "Lulesh", "MCB", "MILC", "VPFFT"]
