"""MCB skeleton — Monte Carlo Burnup transport (paper §II).

"MCB is a monte carlo simulation code, which means that it does not have
much communication and, therefore, its usage of the interconnecting network
is expected to be low."  Long particle-tracking compute phases are broken by
short, highly synchronized particle-exchange bursts (every rank fires at
once), which is why MCB barely degrades under interference (≤3.5% in
Fig. 7) yet visibly fattens the probe's high-latency tail in Fig. 3.
"""

from __future__ import annotations

from typing import Any, Generator

from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import KB, MS
from ..base import Workload
from ..traffic import (
    TrafficSummary,
    allreduce_phases,
    half_core_layout,
    internode_fraction,
    packets_of,
)

__all__ = ["MCB"]


class MCB(Workload):
    """Monte Carlo transport proxy: heavy compute + bursty migrations.

    Particle migrations use a pseudo-random permutation per step (every rank
    sends to ``(rank + shift) % size``), so partners vary step to step but
    sends and receives always pair up deterministically.

    Args:
        iterations: tracking steps per run.
        track_compute: particle-tracking time per step.
        migration_bytes: particle payload exchanged per step.
        census_every: steps between global census allreduces.
        jitter: lognormal compute-noise shape (Monte Carlo work is noisy).
    """

    name = "mcb"

    def __init__(
        self,
        iterations: int = 12,
        track_compute: float = 1.6 * MS,
        migration_bytes: int = 8 * KB,
        census_every: int = 4,
        jitter: float = 0.06,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if census_every < 1:
            raise ConfigurationError(f"census_every must be >= 1, got {census_every}")
        if migration_bytes < 1:
            raise ConfigurationError(f"migration_bytes must be >= 1, got {migration_bytes}")
        self.iterations = iterations
        self.track_compute = track_compute
        self.migration_bytes = migration_bytes
        self.census_every = census_every
        self.jitter = jitter

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        size = ctx.size
        for step in range(self.iterations):
            # Track particles through the local mesh: the dominant phase.
            yield from ctx.compute(self.track_compute, self.jitter)
            if size > 1:
                # Burst: all ranks migrate particles simultaneously along a
                # step-dependent permutation.
                shift = (step * 7 + 3) % (size - 1) + 1
                dest = (ctx.rank + shift) % size
                source = (ctx.rank - shift) % size
                recv = ctx.comm.irecv(source, tag=30)
                send = ctx.comm.isend(dest, self.migration_bytes, tag=30)
                yield from ctx.comm.waitall([recv, send])
            if (step + 1) % self.census_every == 0:
                # Global particle census / tally reduction.
                yield from ctx.comm.allreduce(None, nbytes=64)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, ranks_per_node = half_core_layout(config)
        inter = internode_fraction(ranks, ranks_per_node)
        phases = allreduce_phases(ranks)
        mtu = config.network.mtu
        census_rate = 1.0 / self.census_every
        return TrafficSummary(
            ranks=ranks,
            rounds=self.iterations,
            compute=self.track_compute,
            packets=(ranks * packets_of(self.migration_bytes, mtu)
                     + census_rate * 2.0 * max(0, ranks - 1)) * inter,
            bytes=(ranks * self.migration_bytes
                   + census_rate * 2.0 * max(0, ranks - 1) * 64) * inter,
            blocking_bytes=self.migration_bytes,
            blocking_latencies=1.0 + census_rate * phases,
        )
