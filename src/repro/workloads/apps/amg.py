"""AMG skeleton — algebraic multigrid solver (paper §II).

"AMG carries out several iterations of an iterative solver over the same
linear system at different levels of granularity ... it behaves like a CPU
intensive benchmark when it operates over a dense representation and like a
communication and memory bound application when it performs solver
iterations over a sparse representation.  Thus, AMG runs will display very
different phases."

The phase structure is the point: AMG's *average* probe signature suggests
moderate network use, but the use is concentrated in short sparse phases.
This is exactly what breaks the queue model's constant-utilization
assumption for the FFTW+AMG pairing (paper §V-B) — an effect this skeleton
reproduces.
"""

from __future__ import annotations

from typing import Any, Generator

from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import KB, MS
from ..base import Workload
from ..patterns import balanced_grid, torus_neighbors
from ..traffic import (
    TrafficSummary,
    allreduce_phases,
    half_core_layout,
    internode_fraction,
    packets_of,
)

__all__ = ["AMG"]


class AMG(Workload):
    """Multigrid V-cycle proxy alternating dense and sparse phases.

    Args:
        cycles: V-cycles per run.
        dense_compute: smoother time on fine (dense) levels per cycle.
        sparse_iterations: coarse-level solver iterations per cycle.
        sparse_message_bytes: per-neighbour message size on coarse levels.
        jitter: lognormal compute-noise shape.
    """

    name = "amg"

    def __init__(
        self,
        cycles: int = 6,
        dense_compute: float = 2.2 * MS,
        sparse_iterations: int = 10,
        sparse_message_bytes: int = 4 * KB,
        jitter: float = 0.03,
    ) -> None:
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if sparse_iterations < 1:
            raise ConfigurationError(
                f"sparse_iterations must be >= 1, got {sparse_iterations}"
            )
        if sparse_message_bytes < 1:
            raise ConfigurationError(
                f"sparse_message_bytes must be >= 1, got {sparse_message_bytes}"
            )
        self.cycles = cycles
        self.dense_compute = dense_compute
        self.sparse_iterations = sparse_iterations
        self.sparse_message_bytes = sparse_message_bytes
        self.jitter = jitter

    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        shape = balanced_grid(ctx.size, dims=3)
        neighbors = torus_neighbors(ctx.rank, shape)
        for _ in range(self.cycles):
            # Fine levels: compute-bound smoothing (network nearly idle).
            yield from ctx.compute(self.dense_compute, self.jitter)
            # Coarse levels: bursts of small halo messages overlapped with
            # short smoothing kernels (AMG hides most sparse-phase latency),
            # then one convergence-check reduction per cycle.
            requests = []
            for _ in range(self.sparse_iterations):
                for neighbor in neighbors:
                    requests.append(ctx.comm.irecv(neighbor, tag=40))
                    requests.append(
                        ctx.comm.isend(neighbor, self.sparse_message_bytes, tag=40)
                    )
                yield from ctx.compute(100e-6, self.jitter)
            yield from ctx.comm.waitall(requests)
            yield from ctx.comm.allreduce(None, nbytes=8)
        return None

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, ranks_per_node = half_core_layout(config)
        neighbors = len(torus_neighbors(0, balanced_grid(ranks, dims=3)))
        inter = internode_fraction(ranks, ranks_per_node)
        phases = allreduce_phases(ranks)
        mtu = config.network.mtu
        sparse_messages = self.sparse_iterations * neighbors
        return TrafficSummary(
            ranks=ranks,
            rounds=self.cycles,
            compute=self.dense_compute + self.sparse_iterations * 100e-6,
            packets=(ranks * sparse_messages * packets_of(self.sparse_message_bytes, mtu)
                     + 2.0 * max(0, ranks - 1)) * inter,
            bytes=(ranks * sparse_messages * self.sparse_message_bytes
                   + 2.0 * max(0, ranks - 1) * 8) * inter,
            blocking_bytes=sparse_messages * self.sparse_message_bytes,
            # Sparse sends overlap compute; one drain wait plus the
            # convergence allreduce per cycle.
            blocking_latencies=1.0 + phases,
        )
