"""ImpactB — the light-weight latency probe (paper Fig. 2).

Nodes on the switch are paired; on each pair, probe ranks with the same
local index run a ping-pong: the rank on the even-position node sends a 1 KB
message, its partner receives and replies, and the initiator records half
the round-trip as one packet-latency sample.  Exchanges are separated by a
long sleep (100 ms in the paper; scaled down here) so the probe's own load
is negligible.

The probe runs forever (a daemon job); the experiment decides when to stop
simulating.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from ...cluster import PerSocketPlacement, Placement
from ...config import MachineConfig
from ...core.measurement import LatencyCollector
from ...errors import ConfigurationError
from ...mpi import RankContext
from ...units import KB, MS
from ..base import Workload
from ..traffic import TrafficSummary, packets_of, per_socket_layout

__all__ = ["ImpactB"]


class ImpactB(Workload):
    """The latency probe.

    Args:
        collector: shared sink for latency samples.
        message_bytes: probe message size (paper: 1 KB — a single packet).
        interval: mean sleep between exchanges (paper: 100 ms; default here
            is the scaled 1 ms — see ``Scale`` in repro.config).
        jitter: if True (default), each sleep is drawn uniformly from
            [0.5, 1.5]·interval.  De-phases the probe from periodic
            application traffic, approximating Poisson sampling of the queue
            (the PASTA property behind the P–K inversion).
        warmup: initial random offset in [0, interval) before the first
            exchange, so probe pairs do not fire in lockstep.
    """

    name = "impactb"

    def __init__(
        self,
        collector: LatencyCollector,
        message_bytes: int = 1 * KB,
        interval: float = 1.0 * MS,
        jitter: bool = True,
        warmup: bool = True,
    ) -> None:
        if message_bytes <= 0:
            raise ConfigurationError(f"message_bytes must be positive, got {message_bytes}")
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        self.collector = collector
        self.message_bytes = message_bytes
        self.interval = interval
        self.jitter = jitter
        self.warmup = warmup

    def preferred_placement(self, config: MachineConfig) -> Placement:
        """One probe process per socket (2 per node on Cab)."""
        return PerSocketPlacement(1)

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, _ = per_socket_layout(config, 1)
        # floor(nodes/2) node pairs, each with `sockets` probe rings; every
        # round-trip is two switch-traversing packets.
        pairs = (config.node_count // 2) * config.node.sockets
        return TrafficSummary(
            ranks=ranks,
            rounds=1,
            compute=0.0,
            packets=2.0 * pairs * packets_of(self.message_bytes, config.network.mtu),
            bytes=2.0 * pairs * self.message_bytes,
            blocking_bytes=self.message_bytes,
            blocking_latencies=2.0,
            period=self.interval,
        )

    def demand_weights(self, config: MachineConfig) -> np.ndarray:
        """Probe traffic flows only within adjacent node pairs (2i ↔ 2i+1)."""
        from ...scenario import paired_node_weights

        return paired_node_weights(config.node_count)

    # ------------------------------------------------------------------
    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        partner = self._partner_rank(ctx)
        if partner is None:
            # Unpaired node (odd node count): idle forever.
            while True:
                yield from ctx.sleep(self.interval)

        initiator = self._is_initiator(ctx)
        tag = 1 + ctx.local_index  # probe rings on different sockets stay apart
        if self.warmup and initiator:
            # Only initiators stagger: a sleeping responder would inflate the
            # first sample with its own warm-up delay.
            yield from ctx.sleep(float(ctx.rng.uniform(0.0, self.interval)))
        while True:
            if initiator:
                start = ctx.now
                yield from ctx.comm.send(partner, self.message_bytes, tag)
                yield from ctx.comm.recv(partner, tag)
                # Half the round trip = the average one-way packet latency.
                self.collector.record(ctx.now, (ctx.now - start) / 2.0, ctx.rank)
            else:
                yield from ctx.comm.recv(partner, tag)
                yield from ctx.comm.send(partner, self.message_bytes, tag)
            sleep = self.interval
            if self.jitter:
                sleep *= float(ctx.rng.uniform(0.5, 1.5))
            if initiator:
                yield from ctx.sleep(sleep)
            # The responder does not sleep: it must be ready for the next ping.

    # ------------------------------------------------------------------
    def _node_position(self, ctx: RankContext) -> int:
        """Position of this rank's node in the world's sorted node list."""
        return ctx.world.node_ids.index(ctx.node_id)

    def _is_initiator(self, ctx: RankContext) -> bool:
        return self._node_position(ctx) % 2 == 0

    def _partner_rank(self, ctx: RankContext) -> Optional[int]:
        """The probe rank with the same local index on the paired node.

        Even-position nodes pair with the next node (paper's
        ``my_rank + tasks_per_node``); the last node of an odd-sized world is
        left unpaired.
        """
        node_ids = ctx.world.node_ids
        position = self._node_position(ctx)
        if position % 2 == 0:
            if position + 1 >= len(node_ids):
                return None
            partner_node = node_ids[position + 1]
        else:
            partner_node = node_ids[position - 1]
        partners = ctx.world.ranks_on_node(partner_node)
        local = ctx.local_index
        if local >= len(partners):
            return None
        return partners[local]
