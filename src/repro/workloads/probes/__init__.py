"""The paper's two active-measurement micro-benchmarks."""

from .compressionb import CompressionB, CompressionConfig
from .impactb import ImpactB

__all__ = ["ImpactB", "CompressionB", "CompressionConfig"]
