"""CompressionB — the configurable interference benchmark (paper Fig. 5).

Processes with the same local index on different nodes form a 1-D ring.  In
each round, every process exchanges M messages of 40 KB with each of its P
nearest ring predecessors/successors (receiving from successors, sending to
predecessors), then sleeps B cycles, waits for everything to complete, and
repeats forever.

Note on sleep placement: the paper's pseudo-code (Fig. 5) shows ``usleep(B)``
inside the partner loop, but the prose says "After M messages have been sent
in this way, the benchmark sleeps for B cycles, waits for all ... and
repeats".  We follow the prose — one sleep per round — because only that
reading produces Fig. 6's reported trends (utilization *rising with partner
count*, strongest at long sleeps): with a sleep per partner, both active and
idle time scale with P and the P-dependence vanishes.

Different (P, M, B) settings remove different fractions of switch capability
— the x-axis of the paper's Figs. 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List

from ...cluster import PerSocketPlacement, Placement
from ...config import MachineConfig
from ...errors import ConfigurationError
from ...mpi import RankContext, Request
from ...units import KB, US
from ..base import Workload
from ..traffic import TrafficSummary, packets_of, per_socket_layout

__all__ = ["CompressionConfig", "CompressionB"]


@dataclass(frozen=True)
class CompressionConfig:
    """One CompressionB setting.

    Attributes:
        partners: P — ring partners on each side (paper: 1, 4, 7, 14, 17).
        messages: M — messages per partner per round (paper: 1 or 10).
        sleep_cycles: B — cycles slept per round
            (paper: 2.5e4 … 2.5e7 at 2.6 GHz).
        message_bytes: paper: 40 KB.
    """

    partners: int
    messages: int
    sleep_cycles: float
    message_bytes: int = 40 * KB

    def __post_init__(self) -> None:
        if self.partners < 1:
            raise ConfigurationError(f"partners must be >= 1, got {self.partners}")
        if self.messages < 1:
            raise ConfigurationError(f"messages must be >= 1, got {self.messages}")
        if self.sleep_cycles < 0:
            raise ConfigurationError(
                f"sleep_cycles must be non-negative, got {self.sleep_cycles}"
            )
        if self.message_bytes <= 0:
            raise ConfigurationError(
                f"message_bytes must be positive, got {self.message_bytes}"
            )

    @property
    def label(self) -> str:
        """Compact id, e.g. ``P7xM10xB2.5e+06``."""
        return f"P{self.partners}xM{self.messages}xB{self.sleep_cycles:.1e}"


class CompressionB(Workload):
    """The interference generator.

    Args:
        config: the (P, M, B) setting.
        tag_base: base tag (distinct per concurrently-running instance).
        post_overhead: CPU time per posted message pair — the MPI software
            cost of MPI_Irecv+MPI_Isend for a 40 KB message (matching, buffer
            management, copies).  The 16 µs default is calibrated so the
            heaviest paper configs top out near the paper's 92% utilization
            ceiling instead of saturating the switch.
    """

    name = "compressionb"

    def __init__(
        self,
        config: CompressionConfig,
        tag_base: int = 100,
        post_overhead: float = 16.0 * US,
    ) -> None:
        if post_overhead < 0:
            raise ConfigurationError(
                f"post_overhead must be non-negative, got {post_overhead}"
            )
        self.config = config
        self.tag_base = tag_base
        self.post_overhead = post_overhead

    def preferred_placement(self, config: MachineConfig) -> Placement:
        """One interference process per socket (2 per node on Cab)."""
        return PerSocketPlacement(1)

    def traffic(self, config: MachineConfig) -> TrafficSummary:
        ranks, _ = per_socket_layout(config, 1)
        # Rings run across nodes (same local index on every node), so every
        # exchange is inter-node; partners cap at ring length - 1.
        ring_length = config.node_count
        partners = min(self.config.partners, max(0, ring_length - 1))
        messages = ranks * partners * self.config.messages
        return TrafficSummary(
            ranks=ranks,
            rounds=1,
            compute=partners * self.config.messages * self.post_overhead,
            packets=messages * packets_of(self.config.message_bytes, config.network.mtu),
            bytes=messages * self.config.message_bytes,
            blocking_bytes=partners * self.config.messages * self.config.message_bytes,
            blocking_latencies=1.0,
            period=self.config.sleep_cycles / config.node.clock_hz,
        )

    def demand_weights(self, config: MachineConfig):
        """Ring structure: each node sends to its P nearest ring predecessors."""
        from ...scenario import ring_node_weights

        return ring_node_weights(config.node_count, self.config.partners)

    # ------------------------------------------------------------------
    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        ring = self._ring(ctx)
        position = ring.index(ctx.rank)
        length = len(ring)
        partners = min(self.config.partners, length - 1)
        if partners < 1:
            # Degenerate ring (single node): nothing to exchange.
            while True:
                yield from ctx.sleep_cycles(max(self.config.sleep_cycles, 1.0))

        while True:
            outstanding: List[Request] = []
            for partner in range(partners):
                offset = partner + 1
                predecessor = ring[(position - offset) % length]
                successor = ring[(position + offset) % length]
                tag = self.tag_base + ctx.local_index * 64 + partner
                for _ in range(self.config.messages):
                    outstanding.append(ctx.comm.irecv(successor, tag))
                    outstanding.append(
                        ctx.comm.isend(predecessor, self.config.message_bytes, tag)
                    )
                    if self.post_overhead > 0:
                        yield from ctx.compute(self.post_overhead)
            if self.config.sleep_cycles > 0:
                yield from ctx.sleep_cycles(self.config.sleep_cycles)
            yield from ctx.comm.waitall(outstanding)

    # ------------------------------------------------------------------
    def _ring(self, ctx: RankContext) -> List[int]:
        """Ranks with this rank's local index, ordered by node id.

        "processes running on the same core ID on different nodes are
        organized in a 1-dimensional communication ring" (§III-B).
        """
        members: List[int] = []
        for node_id in ctx.world.node_ids:
            ranks = ctx.world.ranks_on_node(node_id)
            if ctx.local_index < len(ranks):
                members.append(ranks[ctx.local_index])
        return members
