"""Offered-load summaries: what a workload puts on the switch per round.

The analytic experiment engine (:mod:`repro.engine.analytic`) answers
experiment descriptors from closed-form M/G/1 math instead of event-by-event
simulation.  To do that it needs, for every workload, a coarse description
of one *round* of the workload's steady-state behaviour: how much critical-
path compute a rank performs, how many switch-traversing packets and bytes
the whole job injects, and how much of the network's latency/serialization
sits on a rank's critical path.  A :class:`TrafficSummary` captures exactly
that, derived from the same skeleton parameters that drive the simulated
coroutines — the two views cannot drift apart without someone editing both.

Summaries are deliberately first-order: collective algorithms are reduced to
phase counts and byte totals, jitter is ignored, and per-rank asymmetry is
averaged away.  That is the right fidelity for a fast-path backend whose
contract is "plausible, monotone, and self-consistent", not "bit-identical
to the simulator".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import MachineConfig

__all__ = [
    "TrafficSummary",
    "packets_of",
    "internode_fraction",
    "allreduce_phases",
    "half_core_layout",
    "per_socket_layout",
]


def packets_of(nbytes: int, mtu: int) -> int:
    """Packets one message of ``nbytes`` occupies on the wire (≥ 1)."""
    if mtu <= 0:
        raise ConfigurationError(f"mtu must be positive, got {mtu}")
    return max(1, math.ceil(nbytes / mtu))


@dataclass(frozen=True)
class TrafficSummary:
    """One workload's per-round offered load and critical-path structure.

    A *round* is the workload's natural repeating unit (one solver
    iteration, one CompressionB exchange+sleep cycle, one probe ping-pong).
    Finite workloads declare how many rounds one execution performs;
    daemon-style workloads (probes, interference generators) use ``rounds=1``
    and are treated as repeating forever.

    Attributes:
        ranks: total ranks the workload's preferred placement produces.
        rounds: rounds in one finite execution (1 for endless workloads).
        compute: per-rank critical-path compute seconds per round.
        packets: switch-traversing packets injected per round, all ranks.
        bytes: switch-traversing bytes injected per round, all ranks.
        blocking_bytes: per-rank bytes whose wire serialization sits on the
            critical path each round (a rank's own blocking sends).
        blocking_latencies: per-rank count of one-way network traversals on
            the critical path each round (recv waits, collective phases).
        period: additional per-round pacing delay (sleeps), seconds.
    """

    ranks: int
    rounds: int
    compute: float
    packets: float
    bytes: float
    blocking_bytes: float
    blocking_latencies: float
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ConfigurationError(f"ranks must be >= 1, got {self.ranks}")
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        for name in ("compute", "packets", "bytes", "blocking_bytes",
                     "blocking_latencies", "period"):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ConfigurationError(
                    f"{name} must be non-negative and finite, got {value}"
                )


def half_core_layout(config: "MachineConfig") -> Tuple[int, int]:
    """(total ranks, ranks per node) of the default application placement
    (half of each socket's cores on every node)."""
    per_socket = max(1, config.node.cores_per_socket // 2)
    ranks_per_node = per_socket * config.node.sockets
    return ranks_per_node * config.node_count, ranks_per_node


def per_socket_layout(config: "MachineConfig", ranks_per_socket: int = 1) -> Tuple[int, int]:
    """(total ranks, ranks per node) of a probe-style per-socket placement."""
    ranks_per_node = ranks_per_socket * config.node.sockets
    return ranks_per_node * config.node_count, ranks_per_node


def internode_fraction(ranks: int, ranks_per_node: int) -> float:
    """Fraction of a rank's uniformly-chosen peers living on other nodes.

    Intra-node messages take the shared-memory path and never touch the
    switch; summaries scale their message counts by this factor.
    """
    if ranks <= 1:
        return 0.0
    return (ranks - min(ranks_per_node, ranks)) / (ranks - 1)


def allreduce_phases(ranks: int) -> int:
    """One-way latency phases of a binomial-tree reduce+bcast allreduce."""
    if ranks <= 1:
        return 0
    return 2 * math.ceil(math.log2(ranks))
