"""Workload abstraction.

A :class:`Workload` produces one coroutine per rank via :meth:`build` and
declares its preferred process placement (the paper is explicit about these:
probes get one process per socket, applications fill half the cores).
Workloads are stateless descriptions — the same object can be launched on
many machines — so they are cheap to construct and safe to share.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..cluster import PerSocketPlacement, Placement
from ..config import MachineConfig
from ..errors import AnalyticModelError, ConfigurationError
from ..mpi import RankContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .traffic import TrafficSummary

__all__ = ["Workload", "looped", "half_core_placement", "cubic_rank_count"]


class Workload(ABC):
    """A per-rank program: ``build(ctx)`` yields the rank's coroutine."""

    #: Short identifier used in registries, stream names, and reports.
    name: str = "workload"

    @abstractmethod
    def build(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        """Return the coroutine for rank ``ctx.rank``."""

    def preferred_placement(self, config: MachineConfig) -> Placement:
        """Default placement on a machine (paper: half the cores per socket)."""
        return half_core_placement(config)

    def traffic(self, config: MachineConfig) -> "TrafficSummary":
        """Per-round offered-load summary for the analytic engine.

        Workloads that support the closed-form M/G/1 backend override this;
        the default refuses loudly so the analytic engine never invents load
        figures for a workload it does not understand.
        """
        raise AnalyticModelError(
            f"workload {self.name!r} has no analytic traffic summary; "
            "run it on the simulation engine instead"
        )

    def demand_weights(self, config: MachineConfig):
        """Node-pair weights distributing :meth:`traffic` over the fabric.

        Returns an ``(n, n)`` array (zero diagonal) whose normalized entries
        say what fraction of the workload's switch-traversing traffic flows
        from node *i* to node *j*; :class:`repro.scenario.ScenarioSpec` turns
        it into a :class:`~repro.scenario.DemandMatrix`.  The default is
        uniform over all ordered internode pairs — workloads with real
        communication structure (probe pairs, partner rings) override this.
        """
        from ..scenario import uniform_node_weights

        return uniform_node_weights(config.node_count)

    def __call__(self, ctx: RankContext) -> Generator[Any, Any, Any]:
        return self.build(ctx)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


def half_core_placement(config: MachineConfig) -> Placement:
    """The paper's application layout: half of each socket's cores, all nodes
    (4 processes/socket on Cab's 8-core sockets)."""
    per_socket = max(1, config.node.cores_per_socket // 2)
    return PerSocketPlacement(per_socket)


def cubic_rank_count(config: MachineConfig, max_ranks_per_socket: Optional[int] = None):
    """Largest (k³ ranks, ranks/socket, nodes) layout that fits the machine.

    Lulesh requires a cubic process count; on Cab this resolves to 64 ranks as
    2/socket on 16 nodes, exactly the paper's configuration.

    Returns:
        (k, ranks_per_socket, node_count) with k³ total ranks.
    """
    if max_ranks_per_socket is None:
        max_ranks_per_socket = max(1, config.node.cores_per_socket // 2)
    sockets = config.node.sockets
    best: Optional[tuple] = None
    upper = config.node_count * sockets * max_ranks_per_socket
    for k in range(int(round(upper ** (1.0 / 3.0))) + 1, 0, -1):
        total = k**3
        if total > upper:
            continue
        # Need ranks_per_socket * sockets * nodes == total with integer parts.
        # Prefer spreading wide (fewest ranks per socket) — the paper ran
        # Lulesh as 2/socket on 16 nodes rather than 4/socket on 8.
        for ranks_per_socket in range(1, max_ranks_per_socket + 1):
            per_node = ranks_per_socket * sockets
            if total % per_node == 0 and total // per_node <= config.node_count:
                return (k, ranks_per_socket, total // per_node)
    raise ConfigurationError(
        f"no cubic layout fits machine with {upper} available slots"
    )


def looped(workload: Workload):
    """Wrap a finite workload so every rank repeats it forever.

    Used for co-run interference jobs: the paper runs each benchmark "in
    continuous loops" so the measured application never sees an idle switch
    tail.  The wrapper is a plain factory suitable for ``MPIWorld.launch``.
    """

    def factory(ctx: RankContext):
        while True:
            yield from workload.build(ctx)

    return factory
