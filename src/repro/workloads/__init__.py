"""Workloads: the application skeletons and the active-measurement probes."""

from .apps import AMG, FFTW, Lulesh, MCB, MILC, VPFFT
from .base import Workload, cubic_rank_count, half_core_placement, looped
from .patterns import (
    balanced_grid,
    grid_coords,
    grid_rank,
    halo_exchange,
    torus_neighbors,
)
from .probes import CompressionB, CompressionConfig, ImpactB
from .traffic import TrafficSummary, packets_of

__all__ = [
    "Workload",
    "TrafficSummary",
    "packets_of",
    "looped",
    "half_core_placement",
    "cubic_rank_count",
    "balanced_grid",
    "grid_coords",
    "grid_rank",
    "torus_neighbors",
    "halo_exchange",
    "ImpactB",
    "CompressionB",
    "CompressionConfig",
    "AMG",
    "FFTW",
    "Lulesh",
    "MCB",
    "MILC",
    "VPFFT",
]
