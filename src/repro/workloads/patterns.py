"""Reusable communication patterns for application skeletons.

Grid decompositions and halo exchanges shared by the stencil-style
applications (Lulesh, MILC, AMG).
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..mpi import RankContext

__all__ = [
    "balanced_grid",
    "grid_coords",
    "grid_rank",
    "torus_neighbors",
    "halo_exchange",
]


def balanced_grid(size: int, dims: int) -> Tuple[int, ...]:
    """Factor ``size`` into ``dims`` near-equal factors (descending).

    Used to build process grids for stencil codes: 144 → (4, 6, 6) in 3-D,
    (2, 2, 6, 6) in 4-D; 64 → (4, 4, 4).

    Raises:
        ConfigurationError: if inputs are not positive.
    """
    if size < 1 or dims < 1:
        raise ConfigurationError(f"invalid grid request: size={size}, dims={dims}")
    factors = [1] * dims
    remaining = size
    # Greedy: repeatedly pull the largest prime factor onto the smallest axis.
    primes: List[int] = []
    n = remaining
    p = 2
    while p * p <= n:
        while n % p == 0:
            primes.append(p)
            n //= p
        p += 1
    if n > 1:
        primes.append(n)
    for prime in sorted(primes, reverse=True):
        smallest = min(range(dims), key=lambda i: factors[i])
        factors[smallest] *= prime
    return tuple(sorted(factors, reverse=True))


def grid_coords(rank: int, shape: Sequence[int]) -> Tuple[int, ...]:
    """Row-major coordinates of ``rank`` in a process grid."""
    coords = []
    remainder = rank
    for extent in reversed(shape):
        coords.append(remainder % extent)
        remainder //= extent
    if remainder:
        raise ConfigurationError(f"rank {rank} outside grid {tuple(shape)}")
    return tuple(reversed(coords))


def grid_rank(coords: Sequence[int], shape: Sequence[int]) -> int:
    """Inverse of :func:`grid_coords`."""
    rank = 0
    for coordinate, extent in zip(coords, shape):
        if not 0 <= coordinate < extent:
            raise ConfigurationError(f"coordinate {coords} outside grid {tuple(shape)}")
        rank = rank * extent + coordinate
    return rank


def torus_neighbors(rank: int, shape: Sequence[int]) -> List[int]:
    """±1 neighbours along every axis with periodic wrap, deduplicated.

    A rank is never its own neighbour (degenerate axes of extent 1 or 2 are
    handled by dedup).
    """
    coords = grid_coords(rank, shape)
    neighbors: List[int] = []
    for axis, extent in enumerate(shape):
        if extent == 1:
            continue
        for step in (-1, 1):
            shifted = list(coords)
            shifted[axis] = (coords[axis] + step) % extent
            neighbor = grid_rank(shifted, shape)
            if neighbor != rank and neighbor not in neighbors:
                neighbors.append(neighbor)
    return neighbors


def halo_exchange(
    ctx: RankContext,
    neighbors: Sequence[int],
    nbytes: int,
    tag: int,
) -> Generator[Any, Any, None]:
    """Exchange ``nbytes`` with every neighbour concurrently (irecv+isend+waitall).

    The symmetric pattern of stencil codes: all transfers are in flight at
    once, so the fabric sees a burst rather than a sequential trickle.
    """
    requests = [ctx.comm.irecv(neighbor, tag) for neighbor in neighbors]
    requests += [ctx.comm.isend(neighbor, nbytes, tag) for neighbor in neighbors]
    yield from ctx.comm.waitall(requests)
