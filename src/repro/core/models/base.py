"""Prediction-model interface and shared fitting data.

Every model consumes the same training products (paper §IV):

* the 40 CompressionB configurations' probe signatures (from
  CompressionB+ImpactB runs), and
* per application, the measured percent degradation under each of those
  configurations (from app+CompressionB runs).

To predict the slowdown of application A co-running with workload B, a model
receives B's probe signature (from B's own impact experiment) and returns a
percent degradation for A.

:class:`FittedTable` is **canonical**: observations are sorted by config
label at construction, so the same campaign products yield the same table —
and therefore the same predictions — no matter what order the cache, the
engine, or a deserialized artifact happened to hand them over in.  Score
ties between configurations always resolve to the lexicographically
smallest label (the first column of the sorted table).

Fitting also precomputes the vectorized state every model scores against
(mean vector, µ±σ interval arrays, the bins×configs histogram-fraction
matrix, the apps×configs degradation matrix), so ``predict`` never rebuilds
per-catalog structures per call and ``predict_batch`` can answer many
(app, signature) queries with a handful of numpy operations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...core.measurement import ProbeSignature
from ...errors import ModelError
from ..experiments.compression import CompressionObservation

__all__ = ["SlowdownModel", "FittedTable"]


class FittedTable:
    """The look-up table all models share: per-config signatures plus each
    application's degradation under each config.

    Canonicalized and vectorized at construction:

    Attributes:
        observations: the catalog, sorted by config label.
        labels: config labels in canonical (sorted) order.
        apps: application names in canonical (sorted) order.
        means: per-config mean probe latency, aligned to ``labels``.
        interval_lows / interval_highs: per-config µ∓σ interval bounds.
        utilizations: per-config P–K utilization estimates (NaN when the
            catalog was measured without calibration).
        edges: the shared histogram bin edges of the catalog.
        fraction_matrix: configs×bins histogram-fraction matrix (PDFLT's
            score is one matrix–vector product against it).
        deg_matrix: apps×configs measured % degradations.
    """

    def __init__(
        self,
        observations: Sequence[CompressionObservation],
        degradations: Dict[str, Dict[str, float]],
    ) -> None:
        if not observations:
            raise ModelError("cannot fit on an empty observation list")
        # Canonical order: the same products always produce the same table,
        # whatever sequence the cache or engine yielded them in.
        self.observations = sorted(observations, key=lambda obs: obs.label)
        self.by_label = {obs.label: obs for obs in self.observations}
        if len(self.by_label) != len(self.observations):
            raise ModelError("duplicate CompressionB config labels in observations")
        for app, table in degradations.items():
            missing = set(self.by_label) - set(table)
            if missing:
                raise ModelError(
                    f"app {app!r} lacks degradation entries for configs: {sorted(missing)}"
                )
        self.degradations = {app: dict(table) for app, table in degradations.items()}

        self.labels: List[str] = [obs.label for obs in self.observations]
        self.apps: List[str] = sorted(self.degradations)
        signatures = [obs.impact.signature for obs in self.observations]
        self.means = np.asarray([sig.mean for sig in signatures], dtype=float)
        self.interval_lows = np.asarray(
            [sig.interval[0] for sig in signatures], dtype=float
        )
        self.interval_highs = np.asarray(
            [sig.interval[1] for sig in signatures], dtype=float
        )
        self.utilizations = np.asarray(
            [sig.utilization for sig in signatures], dtype=float
        )
        self.edges = signatures[0].histogram.edges
        for obs, sig in zip(self.observations, signatures):
            if sig.histogram.edges.shape != self.edges.shape or not np.allclose(
                sig.histogram.edges, self.edges
            ):
                raise ModelError(
                    f"catalog histograms must share bin edges; config "
                    f"{obs.label!r} was binned differently"
                )
        self.fraction_matrix = np.vstack(
            [sig.histogram.fractions for sig in signatures]
        )
        if self.apps:
            self.deg_matrix = np.asarray(
                [
                    [self.degradations[app][label] for label in self.labels]
                    for app in self.apps
                ],
                dtype=float,
            )
        else:
            self.deg_matrix = np.zeros((0, len(self.labels)))
        self._app_rows = {app: row for row, app in enumerate(self.apps)}

    @property
    def app_names(self) -> List[str]:
        return list(self.apps)

    def app_row(self, app: str) -> int:
        """Row of ``app`` in :attr:`deg_matrix`."""
        try:
            return self._app_rows[app]
        except KeyError as exc:
            raise ModelError(f"no degradation table for app {app!r}") from exc

    def closest_mean_index(self, signature: ProbeSignature) -> int:
        """Catalog column with the nearest mean probe latency.

        Ties resolve to the first (lowest-label) column — the shared
        fallback rule of every model.
        """
        return int(np.argmin(np.abs(self.means - signature.mean)))

    def degradation(self, app: str, label: str) -> float:
        """Measured % degradation of ``app`` under config ``label``."""
        try:
            return self.degradations[app][label]
        except KeyError as exc:
            raise ModelError(f"no degradation entry for app={app!r}, config={label!r}") from exc


class SlowdownModel(ABC):
    """A slowdown predictor in the paper's sense."""

    #: Identifier used in reports ("AverageLT", "Queue", ...).
    name: str = "model"

    def __init__(self) -> None:
        self._table: FittedTable | None = None

    def fit(
        self,
        observations: Sequence[CompressionObservation],
        degradations: Dict[str, Dict[str, float]],
    ) -> "SlowdownModel":
        """Store the look-up products; returns self for chaining.

        Building the table canonicalizes and vectorizes the catalog, then
        :meth:`_prepare` gives each model a hook to derive its own state
        (and to reject unusable products up front, at fit time, rather
        than deep inside a prediction loop).
        """
        self._table = FittedTable(observations, degradations)
        self._prepare()
        return self

    def _prepare(self) -> None:
        """Hook run after fitting; models override to precompute/validate."""

    @property
    def table(self) -> FittedTable:
        if self._table is None:
            raise ModelError(f"{self.name} has not been fitted")
        return self._table

    @abstractmethod
    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        """Predict % slowdown of ``app`` co-running with a workload whose
        impact signature is ``other_signature``."""

    def predict_batch(
        self, pairs: Sequence[Tuple[str, ProbeSignature]]
    ) -> List[float]:
        """Predict many (app, co-runner signature) queries.

        The base implementation simply loops :meth:`predict`; the paper's
        four models override it with vectorized scoring that shares the
        exact same match computation as the scalar path, so batch and
        scalar predictions are numerically identical.
        """
        return [self.predict(app, signature) for app, signature in pairs]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fitted" if self._table is not None else "unfitted"
        return f"<{type(self).__name__} {state}>"
