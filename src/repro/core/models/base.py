"""Prediction-model interface and shared fitting data.

Every model consumes the same training products (paper §IV):

* the 40 CompressionB configurations' probe signatures (from
  CompressionB+ImpactB runs), and
* per application, the measured percent degradation under each of those
  configurations (from app+CompressionB runs).

To predict the slowdown of application A co-running with workload B, a model
receives B's probe signature (from B's own impact experiment) and returns a
percent degradation for A.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from ...core.measurement import ProbeSignature
from ...errors import ModelError
from ..experiments.compression import CompressionObservation

__all__ = ["SlowdownModel", "FittedTable"]


class FittedTable:
    """The look-up table all models share: per-config signatures plus each
    application's degradation under each config."""

    def __init__(
        self,
        observations: Sequence[CompressionObservation],
        degradations: Dict[str, Dict[str, float]],
    ) -> None:
        if not observations:
            raise ModelError("cannot fit on an empty observation list")
        self.observations = list(observations)
        self.by_label = {obs.label: obs for obs in self.observations}
        if len(self.by_label) != len(self.observations):
            raise ModelError("duplicate CompressionB config labels in observations")
        for app, table in degradations.items():
            missing = set(self.by_label) - set(table)
            if missing:
                raise ModelError(
                    f"app {app!r} lacks degradation entries for configs: {sorted(missing)}"
                )
        self.degradations = {app: dict(table) for app, table in degradations.items()}

    @property
    def app_names(self) -> List[str]:
        return sorted(self.degradations)

    def degradation(self, app: str, label: str) -> float:
        """Measured % degradation of ``app`` under config ``label``."""
        try:
            return self.degradations[app][label]
        except KeyError as exc:
            raise ModelError(f"no degradation entry for app={app!r}, config={label!r}") from exc


class SlowdownModel(ABC):
    """A slowdown predictor in the paper's sense."""

    #: Identifier used in reports ("AverageLT", "Queue", ...).
    name: str = "model"

    def __init__(self) -> None:
        self._table: FittedTable | None = None

    def fit(
        self,
        observations: Sequence[CompressionObservation],
        degradations: Dict[str, Dict[str, float]],
    ) -> "SlowdownModel":
        """Store the look-up products; returns self for chaining."""
        self._table = FittedTable(observations, degradations)
        return self

    @property
    def table(self) -> FittedTable:
        if self._table is None:
            raise ModelError(f"{self.name} has not been fitted")
        return self._table

    @abstractmethod
    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        """Predict % slowdown of ``app`` co-running with a workload whose
        impact signature is ``other_signature``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fitted" if self._table is not None else "unfitted"
        return f"<{type(self).__name__} {state}>"
