"""The queue-theoretic model (paper §IV-B, §V-B).

Impact experiments on a workload B yield its switch-queue utilization U_B
(the P–K inversion of its mean probe latency).  Compression experiments on
application A yield a mapping p_A : utilization → % degradation (Fig. 7).
The prediction for A co-running with B is simply p_A(U_B).

The paper selects "the configurations of CompressionB that also utilize
U_B% of the switch queue"; we support both that nearest-configuration rule
and piecewise-linear interpolation between the two bracketing
configurations (the default, which removes the catalog's quantization
noise).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ...core.measurement import ProbeSignature
from ...errors import ModelError
from .base import SlowdownModel

__all__ = ["QueueModel"]


class QueueModel(SlowdownModel):
    """Predict via the utilization coordinate.

    Args:
        interpolate: if True (default) linearly interpolate the degradation
            curve between the two bracketing configurations; if False use the
            single nearest-utilization configuration, exactly as written in
            the paper.
    """

    name = "Queue"

    def __init__(self, interpolate: bool = True) -> None:
        super().__init__()
        self.interpolate = interpolate

    def _curve(self, app: str) -> List[Tuple[float, float]]:
        """(utilization, degradation) points for ``app``, utilization-sorted."""
        points = []
        for obs in self.table.observations:
            utilization = obs.impact.signature.utilization
            if math.isnan(utilization):
                raise ModelError(
                    "queue model needs calibrated signatures (utilization is NaN); "
                    "run the impact experiments with a ServiceEstimate"
                )
            points.append((utilization, self.table.degradation(app, obs.label)))
        points.sort(key=lambda pair: pair[0])
        return points

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        target = other_signature.utilization
        if math.isnan(target):
            raise ModelError("co-runner signature lacks a utilization estimate")
        curve = self._curve(app)
        if not self.interpolate:
            nearest = min(curve, key=lambda pair: abs(pair[0] - target))
            return nearest[1]
        xs = np.asarray([pair[0] for pair in curve])
        ys = np.asarray([pair[1] for pair in curve])
        # np.interp clamps outside the measured range, which is what we want:
        # a co-runner lighter than the lightest config predicts that config's
        # degradation rather than extrapolating to negative slowdowns.
        return float(np.interp(target, xs, ys))
