"""The queue-theoretic model (paper §IV-B, §V-B).

Impact experiments on a workload B yield its switch-queue utilization U_B
(the P–K inversion of its mean probe latency).  Compression experiments on
application A yield a mapping p_A : utilization → % degradation (Fig. 7).
The prediction for A co-running with B is simply p_A(U_B).

The paper selects "the configurations of CompressionB that also utilize
U_B% of the switch queue"; we support both that nearest-configuration rule
and piecewise-linear interpolation between the two bracketing
configurations (the default, which removes the catalog's quantization
noise).

The per-app degradation curves are derived once, at fit time: the catalog's
utilization vector is sorted (stably, so equal utilizations keep canonical
label order) and the apps×configs degradation matrix is permuted to match.
Fitting also validates the calibration up front — an uncalibrated catalog
(NaN utilization) raises a :class:`~repro.errors.ModelError` naming the
offending config immediately, instead of blowing up mid-campaign on the
first ``predict()`` call.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...core.measurement import ProbeSignature
from ...errors import ModelError
from .base import SlowdownModel

__all__ = ["QueueModel"]


class QueueModel(SlowdownModel):
    """Predict via the utilization coordinate.

    Args:
        interpolate: if True (default) linearly interpolate the degradation
            curve between the two bracketing configurations; if False use the
            single nearest-utilization configuration, exactly as written in
            the paper.
    """

    name = "Queue"

    def __init__(self, interpolate: bool = True) -> None:
        super().__init__()
        self.interpolate = interpolate

    def _prepare(self) -> None:
        """Validate calibration and build the utilization-sorted curves."""
        table = self.table
        missing = np.isnan(table.utilizations)
        if missing.any():
            label = table.labels[int(np.argmax(missing))]
            raise ModelError(
                f"queue model needs calibrated signatures, but utilization is "
                f"NaN for config {label!r}; run the impact experiments with a "
                "ServiceEstimate"
            )
        order = np.argsort(table.utilizations, kind="stable")
        self._xs = table.utilizations[order]
        self._ys = table.deg_matrix[:, order]

    def _curve(self, app: str) -> Tuple[np.ndarray, np.ndarray]:
        """``app``'s (utilizations, degradations) arrays, utilization-sorted."""
        return self._xs, self._ys[self.table.app_row(app)]

    def _target_of(self, other_signature: ProbeSignature) -> float:
        target = other_signature.utilization
        if math.isnan(target):
            raise ModelError("co-runner signature lacks a utilization estimate")
        return target

    def _nearest_column(self, target: float) -> int:
        """Nearest-utilization column of the sorted curve (paper rule).

        Equidistant targets resolve to the lower-utilization config (and,
        within equal utilizations, the lower label) — the first match in
        the canonically sorted curve.
        """
        return int(np.argmin(np.abs(self._xs - target)))

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        target = self._target_of(other_signature)
        xs, ys = self._curve(app)
        if not self.interpolate:
            return float(ys[self._nearest_column(target)])
        # np.interp clamps outside the measured range, which is what we want:
        # a co-runner lighter than the lightest config predicts that config's
        # degradation rather than extrapolating to negative slowdowns.
        return float(np.interp(target, xs, ys))

    def predict_batch(
        self, pairs: Sequence[Tuple[str, ProbeSignature]]
    ) -> List[float]:
        table = self.table
        if not pairs:
            return []
        rows = np.empty(len(pairs), dtype=np.intp)
        targets = np.empty(len(pairs), dtype=float)
        seen: Dict[int, float] = {}
        for index, (app, signature) in enumerate(pairs):
            rows[index] = table.app_row(app)
            target = seen.get(id(signature))
            if target is None:
                target = self._target_of(signature)
                seen[id(signature)] = target
            targets[index] = target
        out = np.empty(len(pairs), dtype=float)
        if not self.interpolate:
            cols = np.empty(len(pairs), dtype=np.intp)
            matched = {target: self._nearest_column(target) for target in seen.values()}
            for index in range(len(pairs)):
                cols[index] = matched[targets[index]]
            out[:] = self._ys[rows, cols]
        else:
            by_row: Dict[int, List[int]] = {}
            for index, row in enumerate(rows):
                by_row.setdefault(int(row), []).append(index)
            for row, indices in by_row.items():
                out[indices] = np.interp(targets[indices], self._xs, self._ys[row])
        return [float(value) for value in out]
