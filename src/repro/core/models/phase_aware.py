"""Phase-aware queue model — an extension fixing the paper's known failure.

§V-B of the paper diagnoses its one large error (predicting FFTW's slowdown
next to AMG): "AMG executions go through phases that do not significantly
use the network ... which is something that the queue model has not
considered as it assumes a constant utilization of the network".

This model drops the constant-utilization assumption.  It splits the
co-runner's probe-latency *histogram* into two latency phases (a weighted
2-means clustering over bin centers), inverts each phase's mean latency to
its own utilization via Pollaczek–Khinchine, and predicts the target
application's degradation as the mass-weighted combination of the
per-phase predictions:

    prediction = w_low · p_A(ρ_low) + w_high · p_A(ρ_high)

For unimodal (steady) co-runners the two phases collapse and the model
reduces to the paper's queue model; for phase-alternating co-runners like
AMG it avoids attributing the busy-phase latency to the entire run.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from ...core.measurement import LatencyHistogram, ProbeSignature
from ...errors import ModelError
from ...queueing import ServiceEstimate, utilization_from_sojourn
from .queue_model import QueueModel

__all__ = ["PhaseAwareQueueModel", "split_phases"]


def split_phases(
    histogram: LatencyHistogram, max_iterations: int = 50
) -> List[Tuple[float, float]]:
    """Split a latency histogram into (weight, mean-latency) phases.

    A weighted 2-means over bin centers (overflow mass is assigned to the
    slow cluster at 1.5× the last edge).  Returns one phase when the
    distribution is effectively unimodal (a cluster would be empty or the
    separation is negligible).

    Returns:
        list of ``(mass_fraction, mean_latency_seconds)``, ascending in
        latency, whose mass fractions sum to 1.
    """
    centers = list(histogram.centers)
    weights = list(histogram.fractions)
    if histogram.overflow_fraction > 0:
        centers.append(float(histogram.edges[-1]) * 1.5)
        weights.append(histogram.overflow_fraction)
    centers_arr = np.asarray(centers)
    weights_arr = np.asarray(weights)
    mask = weights_arr > 0
    centers_arr = centers_arr[mask]
    weights_arr = weights_arr[mask]
    if centers_arr.size == 0:
        raise ModelError("cannot split an empty histogram")
    total_mean = float(np.average(centers_arr, weights=weights_arr))
    if centers_arr.size == 1:
        return [(1.0, total_mean)]

    # Initialize the two means at the weighted 10th/90th percentiles.
    order = np.argsort(centers_arr)
    cumulative = np.cumsum(weights_arr[order]) / weights_arr.sum()
    low = float(centers_arr[order][np.searchsorted(cumulative, 0.1)])
    high = float(centers_arr[order][min(np.searchsorted(cumulative, 0.9), len(order) - 1)])
    if high <= low:
        return [(1.0, total_mean)]

    for _ in range(max_iterations):
        boundary = (low + high) / 2.0
        low_mask = centers_arr <= boundary
        low_weight = float(weights_arr[low_mask].sum())
        high_weight = float(weights_arr[~low_mask].sum())
        if low_weight == 0.0 or high_weight == 0.0:
            return [(1.0, total_mean)]
        new_low = float(np.average(centers_arr[low_mask], weights=weights_arr[low_mask]))
        new_high = float(np.average(centers_arr[~low_mask], weights=weights_arr[~low_mask]))
        if math.isclose(new_low, low, rel_tol=1e-9) and math.isclose(
            new_high, high, rel_tol=1e-9
        ):
            break
        low, high = new_low, new_high

    total = low_weight + high_weight
    # Collapse to one phase when the clusters barely differ: either relative
    # to the overall mean, or within ~2 bins (histogram quantization, not
    # genuine bimodality).
    bin_width = float(histogram.edges[1] - histogram.edges[0])
    if high - low < max(0.1 * total_mean, 2.2 * bin_width):
        return [(1.0, total_mean)]
    return [(low_weight / total, low), (high_weight / total, high)]


class PhaseAwareQueueModel(QueueModel):
    """Queue model with per-phase utilization (extension, see module doc).

    Args:
        calibration: idle-switch service estimate used to invert each
            phase's mean latency to a utilization.
        interpolate: as in :class:`QueueModel`.
    """

    name = "PhaseAwareQueue"

    def __init__(self, calibration: ServiceEstimate, interpolate: bool = True) -> None:
        super().__init__(interpolate=interpolate)
        self.calibration = calibration

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        phases = split_phases(other_signature.histogram)
        # Bin centers quantize the phase means; rescale so their weighted
        # mean equals the signature's exact sample mean (for a unimodal
        # co-runner this makes the model coincide with the plain queue
        # model exactly).
        weighted = sum(weight * mean for weight, mean in phases)
        if weighted > 0:
            correction = other_signature.mean / weighted
            phases = [(weight, mean * correction) for weight, mean in phases]
        xs, ys = self._curve(app)
        prediction = 0.0
        for weight, phase_mean in phases:
            utilization = utilization_from_sojourn(
                phase_mean, self.calibration.rate, self.calibration.variance
            )
            if self.interpolate:
                value = float(np.interp(utilization, xs, ys))
            else:
                value = float(ys[self._nearest_column(utilization)])
            prediction += weight * value
        return prediction
