"""The prediction engine: fit all four models, predict any pairing.

This is the paper's headline capability: experiments on N components in
isolation (linear cost) produce predictions for all N² co-run combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.measurement import ProbeSignature
from ...errors import ModelError
from ..experiments.compression import CompressionObservation
from .base import SlowdownModel
from .lookup import AverageLT, AverageStDevLT, PDFLT
from .queue_model import QueueModel

__all__ = ["PairPrediction", "PredictionEngine", "default_models", "extended_models"]


def default_models() -> List[SlowdownModel]:
    """The paper's four models in presentation order."""
    return [AverageLT(), AverageStDevLT(), PDFLT(), QueueModel()]


def extended_models(calibration) -> List[SlowdownModel]:
    """The paper's four models plus the phase-aware extension.

    Args:
        calibration: idle-switch :class:`~repro.queueing.ServiceEstimate`
            (the phase-aware model inverts per-phase latencies itself).
    """
    from .phase_aware import PhaseAwareQueueModel

    return default_models() + [PhaseAwareQueueModel(calibration)]


@dataclass(frozen=True)
class PairPrediction:
    """Predicted % slowdown of ``app`` when co-running with ``other``."""

    app: str
    other: str
    model: str
    predicted: float


class PredictionEngine:
    """Fits models on the compression products and predicts pairings.

    Args:
        observations: the CompressionB catalog signatures.
        degradations: per-app, per-config measured % degradations.
        signatures: per-app impact signatures (each app measured alone).
        models: model instances (defaults to the paper's four).
    """

    def __init__(
        self,
        observations: Sequence[CompressionObservation],
        degradations: Dict[str, Dict[str, float]],
        signatures: Dict[str, ProbeSignature],
        models: Optional[Sequence[SlowdownModel]] = None,
    ) -> None:
        self.signatures = dict(signatures)
        self.models: Dict[str, SlowdownModel] = {}
        for model in models if models is not None else default_models():
            model.fit(observations, degradations)
            self.models[model.name] = model

    @property
    def model_names(self) -> List[str]:
        return list(self.models)

    def signature_of(self, app: str) -> ProbeSignature:
        try:
            return self.signatures[app]
        except KeyError as exc:
            raise ModelError(f"no impact signature recorded for {app!r}") from exc

    def predict(self, app: str, other: str, model: str) -> float:
        """Predicted % slowdown of ``app`` co-running with ``other``."""
        try:
            fitted = self.models[model]
        except KeyError as exc:
            raise ModelError(f"unknown model {model!r}") from exc
        return fitted.predict(app, self.signature_of(other))

    def predict_batch(
        self, requests: Sequence[Tuple[str, str, str]]
    ) -> List[PairPrediction]:
        """Score many ``(app, other, model)`` triples at once.

        Requests are grouped by model and answered by each model's
        vectorized :meth:`~repro.core.models.base.SlowdownModel.predict_batch`
        — the match score of a co-runner signature is computed once per
        distinct signature, then every requesting app's prediction is a
        gather from the degradation matrix.  Results come back in request
        order and are numerically identical to calling :meth:`predict` per
        triple.
        """
        requests = list(requests)
        results: List[Optional[PairPrediction]] = [None] * len(requests)
        by_model: Dict[str, List[int]] = {}
        for index, (_app, _other, model) in enumerate(requests):
            by_model.setdefault(model, []).append(index)
        for model_name, indices in by_model.items():
            try:
                fitted = self.models[model_name]
            except KeyError as exc:
                raise ModelError(f"unknown model {model_name!r}") from exc
            pairs = [
                (requests[index][0], self.signature_of(requests[index][1]))
                for index in indices
            ]
            for index, predicted in zip(indices, fitted.predict_batch(pairs)):
                app, other, _model = requests[index]
                results[index] = PairPrediction(app, other, model_name, predicted)
        return results  # type: ignore[return-value]

    def predict_pair(self, app: str, other: str) -> List[PairPrediction]:
        """All models' predictions for one ordered pairing."""
        return [
            PairPrediction(app, other, name, self.predict(app, other, name))
            for name in self.models
        ]

    def predict_all(self, apps: Optional[Sequence[str]] = None) -> List[PairPrediction]:
        """Predictions for every ordered pairing of ``apps`` (default: all)."""
        names = list(apps) if apps is not None else sorted(self.signatures)
        predictions = []
        for app in names:
            for other in names:
                predictions.extend(self.predict_pair(app, other))
        return predictions
