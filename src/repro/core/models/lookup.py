"""The three look-up-table models (paper §IV-A).

All three select the CompressionB configuration whose probe signature most
resembles the co-runner's signature, then return the measured degradation of
the target application under that configuration.  They differ only in the
resemblance metric:

* **AverageLT** — closest mean latency |µ_B − µ_Ci|;
* **AverageStDevLT** — largest overlap of the intervals [µ±σ];
* **PDFLT** — largest histogram mass overlap Σᵢ p_i q_i (the discretized
  ∫ f_B f_Ci of the paper).

Each model reduces to one function, ``_match_index``, mapping a co-runner
signature to a catalog column of the canonical :class:`FittedTable`; the
prediction is then a single element read of the apps×configs degradation
matrix.  Scores are computed as vector operations over the table's
precomputed state, ties resolve to the first (lowest-label) column, and
``predict_batch`` reuses the identical match computation per distinct
signature — so batch output is bit-identical to the scalar path and
independent of catalog iteration order.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ...core.measurement import ProbeSignature
from ...errors import ExperimentError
from .base import SlowdownModel

__all__ = ["AverageLT", "AverageStDevLT", "PDFLT"]


class _CatalogMatchModel(SlowdownModel):
    """Shared select-a-config-then-read-the-table machinery."""

    def _match_index(self, other_signature: ProbeSignature) -> int:
        """Catalog column this model matches ``other_signature`` to."""
        raise NotImplementedError

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        table = self.table
        return float(
            table.deg_matrix[table.app_row(app), self._match_index(other_signature)]
        )

    def predict_batch(
        self, pairs: Sequence[Tuple[str, ProbeSignature]]
    ) -> List[float]:
        table = self.table
        if not pairs:
            return []
        rows = np.empty(len(pairs), dtype=np.intp)
        cols = np.empty(len(pairs), dtype=np.intp)
        matched: dict[int, int] = {}
        for index, (app, signature) in enumerate(pairs):
            rows[index] = table.app_row(app)
            column = matched.get(id(signature))
            if column is None:
                column = self._match_index(signature)
                matched[id(signature)] = column
            cols[index] = column
        return [float(value) for value in table.deg_matrix[rows, cols]]


class AverageLT(_CatalogMatchModel):
    """Match on mean probe latency."""

    name = "AverageLT"

    def _match_index(self, other_signature: ProbeSignature) -> int:
        return self.table.closest_mean_index(other_signature)


class AverageStDevLT(_CatalogMatchModel):
    """Match on the overlap of the µ±σ intervals.

    If no configuration's interval intersects the target's (all overlaps
    zero), fall back to the closest-mean choice — the paper does not define
    this case, and the fallback keeps the model total.
    """

    name = "AverageStDevLT"

    def _match_index(self, other_signature: ProbeSignature) -> int:
        table = self.table
        low, high = other_signature.interval
        overlaps = np.minimum(table.interval_highs, high) - np.maximum(
            table.interval_lows, low
        )
        np.maximum(overlaps, 0.0, out=overlaps)
        best = int(np.argmax(overlaps))
        if overlaps[best] <= 0.0:
            return table.closest_mean_index(other_signature)
        return best


class PDFLT(_CatalogMatchModel):
    """Match on the full latency distribution.

    The affinity Σᵢ pᵢ qᵢ can be zero for every configuration when the
    target's histogram mass lies entirely beyond the shared bin range (an
    extremely loaded co-runner); the model then falls back to closest mean.
    """

    name = "PDFLT"

    def _match_index(self, other_signature: ProbeSignature) -> int:
        table = self.table
        histogram = other_signature.histogram
        if histogram.edges.shape != table.edges.shape or not np.allclose(
            histogram.edges, table.edges
        ):
            raise ExperimentError("histograms must share bin edges to be compared")
        affinities = table.fraction_matrix @ histogram.fractions
        best = int(np.argmax(affinities))
        if affinities[best] <= 0.0:
            return table.closest_mean_index(other_signature)
        return best
