"""The three look-up-table models (paper §IV-A).

All three select the CompressionB configuration whose probe signature most
resembles the co-runner's signature, then return the measured degradation of
the target application under that configuration.  They differ only in the
resemblance metric:

* **AverageLT** — closest mean latency |µ_B − µ_Ci|;
* **AverageStDevLT** — largest overlap of the intervals [µ±σ];
* **PDFLT** — largest histogram mass overlap Σᵢ p_i q_i (the discretized
  ∫ f_B f_Ci of the paper).
"""

from __future__ import annotations

from ...core.measurement import ProbeSignature
from .base import SlowdownModel

__all__ = ["AverageLT", "AverageStDevLT", "PDFLT"]


class AverageLT(SlowdownModel):
    """Match on mean probe latency."""

    name = "AverageLT"

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        best = min(
            self.table.observations,
            key=lambda obs: abs(obs.impact.signature.mean - other_signature.mean),
        )
        return self.table.degradation(app, best.label)


class AverageStDevLT(SlowdownModel):
    """Match on the overlap of the µ±σ intervals.

    If no configuration's interval intersects the target's (all overlaps
    zero), fall back to the closest-mean choice — the paper does not define
    this case, and the fallback keeps the model total.
    """

    name = "AverageStDevLT"

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        scored = [
            (obs.impact.signature.interval_overlap(other_signature), obs)
            for obs in self.table.observations
        ]
        best_overlap, best = max(scored, key=lambda pair: pair[0])
        if best_overlap <= 0.0:
            best = min(
                self.table.observations,
                key=lambda obs: abs(obs.impact.signature.mean - other_signature.mean),
            )
        return self.table.degradation(app, best.label)


class PDFLT(SlowdownModel):
    """Match on the full latency distribution.

    The affinity Σᵢ pᵢ qᵢ can be zero for every configuration when the
    target's histogram mass lies entirely beyond the shared bin range (an
    extremely loaded co-runner); the model then falls back to closest mean.
    """

    name = "PDFLT"

    def predict(self, app: str, other_signature: ProbeSignature) -> float:
        scored = [
            (obs.impact.signature.pdf_affinity(other_signature), obs)
            for obs in self.table.observations
        ]
        best_affinity, best = max(scored, key=lambda pair: pair[0])
        if best_affinity <= 0.0:
            best = min(
                self.table.observations,
                key=lambda obs: abs(obs.impact.signature.mean - other_signature.mean),
            )
        return self.table.degradation(app, best.label)
