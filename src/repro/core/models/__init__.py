"""The paper's four slowdown-prediction models and the prediction engine."""

from .base import FittedTable, SlowdownModel
from .lookup import AverageLT, AverageStDevLT, PDFLT
from .phase_aware import PhaseAwareQueueModel, split_phases
from .predictor import PairPrediction, PredictionEngine, default_models, extended_models
from .queue_model import QueueModel

__all__ = [
    "SlowdownModel",
    "FittedTable",
    "AverageLT",
    "AverageStDevLT",
    "PDFLT",
    "QueueModel",
    "PredictionEngine",
    "PairPrediction",
    "default_models",
    "extended_models",
]
