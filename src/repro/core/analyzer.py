"""ContentionAnalyzer — the one-object API for the paper's workflow.

For a downstream user the methodology is three verbs:

* ``fingerprint(app)`` — how much switch does this application use?
* ``degradation_curve(app)`` — how does it behave as the switch weakens?
* ``predict(app, other)`` — what happens if these two share a switch?

The analyzer wraps the cached :class:`ReproductionPipeline` and the fitted
models behind those verbs, registering custom workloads on the fly.

Example::

    from repro import cab_config
    from repro.core.analyzer import ContentionAnalyzer
    from repro.workloads import FFTW, MILC

    analyzer = ContentionAnalyzer.quick(cab_config())
    analyzer.register(FFTW())
    analyzer.register(MILC())
    print(analyzer.fingerprint("fftw").utilization)
    print(analyzer.predict("fftw", "milc"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import MachineConfig
from ..core.measurement import ProbeSignature
from ..errors import ExperimentError
from ..workloads import Workload
from .experiments import PipelineSettings, ReproductionPipeline
from .models import PredictionEngine

__all__ = ["ContentionAnalyzer"]


class ContentionAnalyzer:
    """High-level facade over the active-measurement methodology.

    Args:
        pipeline: a configured reproduction pipeline.  Applications can be
            pre-registered via the pipeline or added with :meth:`register`.
    """

    def __init__(self, pipeline: ReproductionPipeline) -> None:
        self.pipeline = pipeline
        self._engine: Optional[PredictionEngine] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def quick(
        cls,
        machine_config: Optional[MachineConfig] = None,
        cache_path=None,
        seed: int = 0,
    ) -> "ContentionAnalyzer":
        """An analyzer on the 10-config quick catalog (minutes, not tens)."""
        pipeline = ReproductionPipeline(
            settings=PipelineSettings(
                profile="quick",
                seed=seed,
                impact_duration=0.02,
                signature_duration=0.02,
            ),
            machine_config=machine_config,
            cache_path=cache_path,
            applications={},
        )
        return cls(pipeline)

    @classmethod
    def paper(
        cls,
        cache_path="results/cache",
        legacy_cache="results/paper_cache.json",
    ) -> "ContentionAnalyzer":
        """The full 40-config catalog with the paper's six applications."""
        return cls(
            ReproductionPipeline(
                settings=PipelineSettings(profile="paper"),
                cache_path=cache_path,
                legacy_cache=legacy_cache,
            )
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, workload: Workload) -> None:
        """Add an application to the analyzer's registry.

        Raises:
            ExperimentError: if a different workload already uses the name.
        """
        existing = self.pipeline.applications.get(workload.name)
        if existing is not None and existing is not workload:
            raise ExperimentError(
                f"an application named {workload.name!r} is already registered"
            )
        self.pipeline.applications[workload.name] = workload
        self._engine = None  # registry changed; refit lazily

    @property
    def applications(self) -> List[str]:
        return self.pipeline.app_names

    # ------------------------------------------------------------------
    # The three verbs
    # ------------------------------------------------------------------
    def fingerprint(self, app: str) -> ProbeSignature:
        """The application's switch signature (Impact experiment)."""
        return self.pipeline.app_impact(app).signature

    def degradation_curve(self, app: str) -> List[Tuple[float, float]]:
        """(utilization, % degradation) points over the catalog, sorted."""
        table = self.pipeline.degradation_table()[app]
        signatures = {
            obs.label: obs.utilization
            for obs in self.pipeline.compression_signatures()
        }
        return sorted((signatures[label], value) for label, value in table.items())

    def predict(self, app: str, other: str) -> Dict[str, float]:
        """All models' predicted % slowdown of ``app`` next to ``other``."""
        if self._engine is None:
            self._engine = self.pipeline.engine()
        return {
            prediction.model: prediction.predicted
            for prediction in self._engine.predict_pair(app, other)
        }

    def measure(self, app: str, other: str) -> float:
        """Ground truth: actually co-run the pair and return the slowdown."""
        return self.pipeline.pair_slowdown(app, other)

    def interference_matrix(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Predictions for every ordered pair of registered applications."""
        return {
            (app, other): self.predict(app, other)
            for app in self.applications
            for other in self.applications
        }
