"""The paper's primary contribution: active measurement + prediction.

Sub-packages:

* :mod:`repro.core.measurement` — latency collection, histograms, probe
  signatures;
* :mod:`repro.core.experiments` — calibration, Impact, Compression, co-run
  experiments, and the cached reproduction pipeline;
* :mod:`repro.core.models` — the four slowdown-prediction models.

Experiments and models are exposed lazily: they depend on
:mod:`repro.workloads`, which itself uses :mod:`repro.core.measurement`, so
eager imports here would create a cycle.
"""

from .measurement import LatencyCollector, LatencyHistogram, ProbeSignature

__all__ = [
    "ContentionAnalyzer",
    "LatencyCollector",
    "LatencyHistogram",
    "ProbeSignature",
    "calibrate",
    "ImpactExperiment",
    "CompressionExperiment",
    "CoRunExperiment",
    "PipelineSettings",
    "ReproductionPipeline",
    "AverageLT",
    "AverageStDevLT",
    "PDFLT",
    "QueueModel",
    "PredictionEngine",
    "default_models",
]

_EXPERIMENT_NAMES = {
    "calibrate",
    "ImpactExperiment",
    "CompressionExperiment",
    "CoRunExperiment",
    "PipelineSettings",
    "ReproductionPipeline",
}
_ANALYZER_NAMES = {"ContentionAnalyzer"}
_MODEL_NAMES = {
    "AverageLT",
    "AverageStDevLT",
    "PDFLT",
    "QueueModel",
    "PredictionEngine",
    "default_models",
}


def __getattr__(name: str):
    if name in _ANALYZER_NAMES:
        from . import analyzer

        return getattr(analyzer, name)
    if name in _EXPERIMENT_NAMES:
        from . import experiments

        return getattr(experiments, name)
    if name in _MODEL_NAMES:
        from . import models

        return getattr(models, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
