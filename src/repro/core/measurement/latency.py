"""Probe-latency sample collection.

ImpactB initiator ranks record one latency sample per ping-pong exchange
(half the round-trip, per the paper).  A :class:`LatencyCollector` is shared
by all probe ranks of one experiment and supports windowing so warm-up
samples can be excluded.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...errors import ExperimentError

__all__ = ["LatencyCollector"]


class LatencyCollector:
    """Accumulates (time, latency, rank) probe samples."""

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []
        self._ranks: List[int] = []

    def record(self, time: float, latency: float, rank: int) -> None:
        """Record one probe observation.

        Raises:
            ExperimentError: on non-positive latency (a timing bug upstream).
        """
        if latency <= 0:
            raise ExperimentError(f"non-positive probe latency {latency!r} at t={time}")
        self._times.append(time)
        self._values.append(latency)
        self._ranks.append(rank)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> np.ndarray:
        """All latency samples, in record order."""
        return np.asarray(self._values, dtype=float)

    def times(self) -> np.ndarray:
        """Sample timestamps, in record order."""
        return np.asarray(self._times, dtype=float)

    def ranks(self) -> np.ndarray:
        """Recording ranks, in record order."""
        return np.asarray(self._ranks, dtype=int)

    def values_after(self, start_time: float) -> np.ndarray:
        """Samples recorded at or after ``start_time`` (warm-up exclusion)."""
        times = self.times()
        return self.values()[times >= start_time]

    def clear(self) -> None:
        """Drop all samples."""
        self._times.clear()
        self._values.clear()
        self._ranks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LatencyCollector n={self.count}>"
