"""Measurement products: latency collection, histograms, probe signatures."""

from .histogram import LatencyHistogram, paper_bin_edges
from .latency import LatencyCollector
from .summary import ProbeSignature

__all__ = [
    "LatencyCollector",
    "LatencyHistogram",
    "paper_bin_edges",
    "ProbeSignature",
]
