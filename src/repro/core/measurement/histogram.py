"""Fixed-bin latency histograms (the paper's Fig. 3 representation).

All histograms in one experiment share the same bin edges so that the PDFLT
model can compare distributions bin-by-bin.  The paper plots packet transit
times from 1 µs to 10 µs; the default edges cover 0–12 µs with an overflow
bin for slower packets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import ExperimentError
from ...units import US

__all__ = ["LatencyHistogram", "paper_bin_edges"]


def paper_bin_edges(
    low: float = 0.0, high: float = 12.0 * US, bins: int = 24
) -> np.ndarray:
    """Default shared bin edges (an overflow bin is added automatically)."""
    if bins < 1 or high <= low:
        raise ExperimentError(f"invalid binning: [{low}, {high}] x {bins}")
    return np.linspace(low, high, bins + 1)


class LatencyHistogram:
    """A normalized histogram over fixed edges plus an overflow bin."""

    __slots__ = ("edges", "counts", "overflow", "total")

    def __init__(self, edges: np.ndarray, counts: np.ndarray, overflow: int) -> None:
        self.edges = np.asarray(edges, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        self.overflow = int(overflow)
        self.total = int(self.counts.sum() + self.overflow)

    @classmethod
    def from_values(
        cls, values: Sequence[float], edges: np.ndarray | None = None
    ) -> "LatencyHistogram":
        """Bin ``values``; anything beyond the last edge lands in overflow."""
        if edges is None:
            edges = paper_bin_edges()
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise ExperimentError("cannot build a histogram from zero samples")
        counts, _ = np.histogram(data, bins=edges)
        # np.histogram's last bin is closed on both sides, so a sample equal
        # to the final edge is already in counts; overflow must be strictly
        # beyond the edge or such samples would be counted twice, inflating
        # total and under-normalizing every fraction the PDFLT model uses.
        overflow = int((data > edges[-1]).sum())
        return cls(edges, counts, overflow)

    # ------------------------------------------------------------------
    @property
    def bin_count(self) -> int:
        return len(self.counts)

    @property
    def fractions(self) -> np.ndarray:
        """Per-bin probability mass (excluding overflow from the vector but
        included in the normalization)."""
        if self.total == 0:
            return np.zeros_like(self.counts)
        return self.counts / self.total

    @property
    def overflow_fraction(self) -> float:
        """Probability mass beyond the last edge (very slow packets)."""
        return self.overflow / self.total if self.total else 0.0

    @property
    def centers(self) -> np.ndarray:
        """Bin midpoints."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def mode_bin(self) -> int:
        """Index of the most populated bin."""
        return int(np.argmax(self.counts))

    def fraction_above(self, threshold: float) -> float:
        """Probability mass at or above ``threshold`` (bin-resolution)."""
        mask = self.edges[:-1] >= threshold
        return float(self.fractions[mask].sum()) + self.overflow_fraction

    def overlap(self, other: "LatencyHistogram") -> float:
        """The PDFLT affinity: Σᵢ pᵢ·qᵢ over shared bins (paper's ∫f_B·f_Ci).

        Raises:
            ExperimentError: if bin edges differ.
        """
        if self.edges.shape != other.edges.shape or not np.allclose(self.edges, other.edges):
            raise ExperimentError("histograms must share bin edges to be compared")
        return float(np.dot(self.fractions, other.fractions))

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "edges": self.edges.tolist(),
            "counts": self.counts.tolist(),
            "overflow": self.overflow,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        return cls(
            np.asarray(data["edges"]), np.asarray(data["counts"]), data["overflow"]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LatencyHistogram n={self.total} bins={self.bin_count}>"
