"""Probe-signature summaries: the measurement products the models consume.

A :class:`ProbeSignature` is everything the paper extracts from one Impact
experiment: the mean probe latency (the P–K *W*), its standard deviation,
the full latency histogram, and — once calibration is available — the
derived switch-utilization estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...errors import ExperimentError
from ...queueing import ServiceEstimate, utilization_from_sojourn
from .histogram import LatencyHistogram

__all__ = ["ProbeSignature"]


@dataclass(frozen=True)
class ProbeSignature:
    """Summary of probe latencies observed while some workload ran.

    Attributes:
        mean: average probe latency (the queue model's W), seconds.
        std: standard deviation of probe latencies, seconds.
        count: number of samples behind the summary.
        histogram: normalized latency histogram on shared bins.
        utilization: P–K utilization estimate in [0, 1) (NaN if built
            without calibration).
    """

    mean: float
    std: float
    count: int
    histogram: LatencyHistogram
    utilization: float = float("nan")

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        calibration: Optional[ServiceEstimate] = None,
        edges: Optional[np.ndarray] = None,
    ) -> "ProbeSignature":
        """Summarize raw probe latencies.

        Args:
            samples: probe latencies in seconds.
            calibration: idle-switch service estimate; enables the
                utilization field via P–K inversion.
            edges: histogram bin edges (defaults to the paper binning).

        Raises:
            ExperimentError: on fewer than 2 samples.
        """
        values = np.asarray(samples, dtype=float)
        if values.size < 2:
            raise ExperimentError(
                f"need at least 2 probe samples to summarize, got {values.size}"
            )
        mean = float(values.mean())
        std = float(values.std(ddof=1))
        utilization = float("nan")
        if calibration is not None:
            utilization = utilization_from_sojourn(
                mean, calibration.rate, calibration.variance
            )
        return cls(
            mean=mean,
            std=std,
            count=int(values.size),
            histogram=LatencyHistogram.from_values(values, edges),
            utilization=utilization,
        )

    # ------------------------------------------------------------------
    @property
    def interval(self) -> tuple[float, float]:
        """[µ−σ, µ+σ], the AverageStDevLT matching interval."""
        return (self.mean - self.std, self.mean + self.std)

    def interval_overlap(self, other: "ProbeSignature") -> float:
        """Length of the intersection of the two µ±σ intervals (≥ 0)."""
        low = max(self.interval[0], other.interval[0])
        high = min(self.interval[1], other.interval[1])
        return max(0.0, high - low)

    def pdf_affinity(self, other: "ProbeSignature") -> float:
        """The PDFLT matching score (histogram mass overlap)."""
        return self.histogram.overlap(other.histogram)

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "mean": self.mean,
            "std": self.std,
            "count": self.count,
            "utilization": self.utilization,
            "histogram": self.histogram.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeSignature":
        return cls(
            mean=data["mean"],
            std=data["std"],
            count=data["count"],
            histogram=LatencyHistogram.from_dict(data["histogram"]),
            utilization=data["utilization"],
        )
