"""Idle-switch calibration (paper §IV-B).

"µ is a hardware parameter that is measured by sending multiple individual
packets into an idle switch"; Var(S) comes from the same single-packet
experiments.  We run ImpactB on an otherwise idle machine and fit a
:class:`~repro.queueing.ServiceEstimate` to the observed latencies.

Note that, exactly as in the paper, the resulting "service time" is the
whole idle path traversal (NIC + wire + switch), not the switch's internal
service alone.  The P–K inversion built on it is therefore a *consistent
coordinate*, not a physical truth — the prediction pipeline only ever
compares utilization estimates produced by this same procedure, so the bias
cancels.  The ablation benchmark quantifies the residual bias against the
simulator's ground-truth counters.
"""

from __future__ import annotations

from ...cluster import Machine
from ...config import MachineConfig
from ...core.measurement import LatencyCollector
from ...errors import ExperimentError
from ...mpi import MPIWorld
from ...queueing import ServiceEstimate
from ...units import MS
from ...workloads import ImpactB

__all__ = ["calibrate"]


def calibrate(
    config: MachineConfig,
    duration: float = 0.05,
    probe_interval: float = 0.25 * MS,
    min_samples: int = 50,
) -> ServiceEstimate:
    """Measure the idle-switch service estimate (µ, Var(S)).

    Args:
        config: machine to calibrate.
        duration: simulated seconds of probing.
        probe_interval: mean gap between probe exchanges.
        min_samples: minimum acceptable sample count.

    Raises:
        ExperimentError: if too few samples were collected (duration too
            short for the probe interval).
    """
    machine = Machine(config)
    collector = LatencyCollector()
    probe = ImpactB(collector, interval=probe_interval)
    world = MPIWorld.create(machine, probe.preferred_placement(config), name="calibration")
    world.launch(probe)
    machine.sim.run(until=duration)
    if collector.count < min_samples:
        raise ExperimentError(
            f"calibration collected only {collector.count} samples "
            f"(need {min_samples}); increase duration or lower the interval"
        )
    return ServiceEstimate.from_samples(collector.values())
