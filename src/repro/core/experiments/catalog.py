"""The paper's experiment catalog: 40 CompressionB configs + 6 applications.

§IV-C: "Parameter P, the number of partner processes, takes values 1, 4, 7,
14 and 17.  Parameter B, the number of cycles the benchmark sleeps, has
values 2.5E4, 2.5E5, 2.5E6, 2.5E7.  Finally, parameter M, the number of
messages sent in each round of communication, is either 1 or 10.  As such,
we consider 40 different input configurations."
"""

from __future__ import annotations

from typing import Dict, List

from ...workloads import AMG, FFTW, Lulesh, MCB, MILC, VPFFT, CompressionConfig, Workload

__all__ = [
    "PAPER_PARTNERS",
    "PAPER_SLEEP_CYCLES",
    "PAPER_MESSAGES",
    "paper_compression_catalog",
    "quick_compression_catalog",
    "paper_applications",
    "APP_NAMES",
]

PAPER_PARTNERS = (1, 4, 7, 14, 17)
PAPER_SLEEP_CYCLES = (2.5e4, 2.5e5, 2.5e6, 2.5e7)
PAPER_MESSAGES = (1, 10)

#: Application display order used throughout the paper's tables/figures.
APP_NAMES = ("fftw", "lulesh", "mcb", "milc", "vpfft", "amg")


def paper_compression_catalog() -> List[CompressionConfig]:
    """All 40 (P, M, B) configurations from §IV-C."""
    return [
        CompressionConfig(partners=p, messages=m, sleep_cycles=b)
        for b in PAPER_SLEEP_CYCLES
        for m in PAPER_MESSAGES
        for p in PAPER_PARTNERS
    ]


def quick_compression_catalog() -> List[CompressionConfig]:
    """A 10-config subset spanning the utilization range, for fast runs."""
    picks = [
        (1, 1, 2.5e7),
        (17, 10, 2.5e7),
        (4, 1, 2.5e6),
        (17, 1, 2.5e6),
        (7, 10, 2.5e6),
        (1, 1, 2.5e5),
        (7, 1, 2.5e5),
        (17, 1, 2.5e5),
        (4, 10, 2.5e5),
        (4, 1, 2.5e4),
    ]
    return [CompressionConfig(p, m, b) for (p, m, b) in picks]


def paper_applications() -> Dict[str, Workload]:
    """The six §II applications at their calibrated defaults, keyed by name."""
    apps: List[Workload] = [FFTW(), Lulesh(), MCB(), MILC(), VPFFT(), AMG()]
    return {app.name: app for app in apps}
